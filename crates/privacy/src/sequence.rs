//! The observer model: message sequences as an on-path adversary
//! records them.
//!
//! A [`MessageSequence`] is the unit the FOCI '20 fingerprinting attack
//! consumes — an ordered list of (inter-message gap, direction, padded
//! on-wire size) triples for one encrypted DNS session. It is extracted
//! from a [`FlowTap`] (the exact per-message record a
//! `DotSession`/`DohSession` keeps when tapped), or coarsely from a
//! sampled [`FlowRecord`] when only NetFlow-grade evidence exists.

use doe_protocols::{FlowTap, TapDirection};
use doe_traffic::netflow::FlowRecord;

/// One observed message: how long after the previous one, which way,
/// how many bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqMessage {
    /// Gap since the previous message (µs); 0 for the first.
    pub gap_us: u64,
    /// Direction of travel.
    pub dir: TapDirection,
    /// Padded on-wire size in bytes.
    pub size: u32,
}

/// An ordered message sequence for one flow — the fingerprint unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageSequence {
    /// Messages in observation order.
    pub messages: Vec<SeqMessage>,
}

impl MessageSequence {
    /// An empty sequence.
    pub fn new() -> Self {
        MessageSequence::default()
    }

    /// Extract the sequence from a session tap.
    ///
    /// The tap's offsets are session-clock instants; the sequence stores
    /// the deltas. `think_us` holds the client's think time before each
    /// *query* (upstream message), in query order — the session clock
    /// only advances across network operations, so client-side pauses
    /// must be re-inserted here for the timing channel to be honest.
    /// Missing entries mean zero think time.
    pub fn extract(tap: &FlowTap, think_us: &[u64]) -> MessageSequence {
        let mut messages = Vec::with_capacity(tap.messages.len());
        let mut prev_offset = 0u64;
        let mut queries_seen = 0usize;
        for m in &tap.messages {
            let offset = m.offset.as_micros();
            let mut gap = offset.saturating_sub(prev_offset);
            if m.dir == TapDirection::Up {
                gap += think_us.get(queries_seen).copied().unwrap_or(0);
                queries_seen += 1;
            }
            messages.push(SeqMessage {
                gap_us: gap,
                dir: m.dir,
                size: m.wire_len,
            });
            prev_offset = offset;
        }
        MessageSequence { messages }
    }

    /// Coarse adapter from a sampled flow record: NetFlow evidence has
    /// no per-message sizes, so the record's byte estimate is spread
    /// evenly over its sampled packets, all attributed upstream. This is
    /// the degraded view a §5.1-style passive vantage would feed the
    /// same classifier.
    pub fn from_flow_record(record: &FlowRecord) -> MessageSequence {
        let n = record.sampled_packets.max(1) as u64;
        let mean = (record.bytes / n).min(u64::from(u32::MAX)) as u32;
        let messages = (0..n)
            .map(|_| SeqMessage {
                gap_us: 0,
                dir: TapDirection::Up,
                size: mean,
            })
            .collect();
        MessageSequence { messages }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Total bytes moved in both directions.
    pub fn wire_bytes(&self) -> u64 {
        self.messages.iter().map(|m| u64::from(m.size)).sum()
    }

    /// Total duration (sum of gaps) in µs.
    pub fn duration_us(&self) -> u64 {
        self.messages.iter().map(|m| m.gap_us).sum()
    }

    /// The classifier's alphabet: one symbol per message encoding
    /// direction (high bit) and the size bucketed by `bucket` bytes
    /// (rounded up, saturating at the 15-bit ceiling). Timing is
    /// deliberately excluded — the adversary we model is the
    /// size/direction attack, the strongest one padding claims to
    /// address.
    pub fn symbols(&self, bucket: u32) -> Vec<u16> {
        let bucket = bucket.max(1);
        self.messages
            .iter()
            .map(|m| {
                let b = m.size.div_ceil(bucket).min(0x7fff) as u16;
                match m.dir {
                    TapDirection::Up => 0x8000 | b,
                    TapDirection::Down => b,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn tap() -> FlowTap {
        let mut t = FlowTap::new();
        t.record(SimDuration::from_micros(100), TapDirection::Up, 130);
        t.record(SimDuration::from_micros(350), TapDirection::Down, 470);
        t.record(SimDuration::from_micros(400), TapDirection::Up, 130);
        t.record(SimDuration::from_micros(650), TapDirection::Down, 470);
        t
    }

    #[test]
    fn extract_computes_gaps_and_injects_think_time() {
        let seq = MessageSequence::extract(&tap(), &[0, 5_000]);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.messages[0].gap_us, 100);
        assert_eq!(seq.messages[1].gap_us, 250);
        // Second query: 50 µs network gap + 5 ms think time.
        assert_eq!(seq.messages[2].gap_us, 5_050);
        assert_eq!(seq.wire_bytes(), 1_200);
        assert_eq!(seq.duration_us(), 100 + 250 + 5_050 + 250);
    }

    #[test]
    fn symbols_encode_direction_and_bucketed_size() {
        let seq = MessageSequence::extract(&tap(), &[]);
        let syms = seq.symbols(16);
        // 130 → bucket 9 upstream; 470 → bucket 30 downstream.
        assert_eq!(syms, vec![0x8000 | 9, 30, 0x8000 | 9, 30]);
        // Identical sizes collapse to identical symbols.
        assert_eq!(syms[0], syms[2]);
    }

    #[test]
    fn flow_record_adapter_spreads_bytes() {
        let record = FlowRecord {
            src: "198.51.100.0".parse().unwrap(),
            dst: "1.1.1.1".parse().unwrap(),
            dst_port: 853,
            sampled_packets: 4,
            bytes: 1_000,
            tcp_flags: 0x18,
            date: tlssim::DateStamp::from_ymd(2019, 2, 1),
        };
        let seq = MessageSequence::from_flow_record(&record);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.messages[0].size, 250);
        assert!(seq.messages.iter().all(|m| m.dir == TapDirection::Up));
    }
}
