//! The closed-world workload: per-domain lookup plans replayed under
//! every padding policy against policy-dedicated resolvers.
//!
//! The experimental control is strict: the *same* deterministic lookup
//! plan (names, types, skips, think gaps — all keyed on `(domain,
//! sample)` only) is replayed once per policy, so any difference the
//! classifier or the overhead counters see is attributable to the
//! policy alone. Each policy gets its own resolver address whose
//! server-side responder applies the matching RFC 8467 response padding
//! through [`PaddedResponder`].

use dnswire::zone::Zone;
use dnswire::{builder, Name, PaddingPolicy, RData, RecordType};
use doe_protocols::responder::{AuthoritativeServer, DnsResponder, PaddedResponder};
use doe_protocols::{
    Bootstrap, DohBackend, DohClient, DohMethod, DohServerService, DotClient, DotServerService,
    FlowTap, QueryError,
};
use httpsim::UriTemplate;
use netsim::{mix_seed, HostMeta, Network};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CaHandle, DateStamp, KeyId, TlsClientConfig, TlsServerConfig, TrustStore};

/// The policies under study, in report order. Index 0 is the unpadded
/// baseline every overhead figure is measured against.
pub fn policies() -> [PaddingPolicy; 5] {
    [
        PaddingPolicy::None,
        PaddingPolicy::rfc8467(),
        PaddingPolicy::RandomBlock {
            query_block: 128,
            response_block: 468,
            max_extra: 3,
        },
        PaddingPolicy::AdaptivePadding {
            burst_gap_us: 4_000,
            cell: 128,
        },
        PaddingPolicy::ConstantRate {
            interval_us: 2_000,
            cell: 128,
        },
    ]
}

/// Simulated calendar date (certificate validity window).
pub fn study_date() -> DateStamp {
    DateStamp::from_ymd(2019, 2, 1)
}

/// The client address every flow originates from (flows run
/// sequentially per shard and close their sessions, so one address
/// suffices).
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 77);

/// One policy's dedicated resolver endpoint.
#[derive(Debug, Clone)]
pub struct PolicyLeg {
    /// The policy the resolver's responder applies server-side.
    pub policy: PaddingPolicy,
    /// Resolver address (DoT on 853, DoH on 443).
    pub resolver: Ipv4Addr,
    /// Certificate/SNI name the clients authenticate.
    pub host: String,
}

/// The installed privacy world: trust anchors plus one resolver leg per
/// policy, all serving the same wildcard zones.
pub struct PrivacyWorld {
    /// Trust anchors validating every leg's certificate.
    pub store: TrustStore,
    /// Per-policy resolver endpoints, in [`policies`] order.
    pub legs: Vec<PolicyLeg>,
}

/// Install the privacy world into `net`: the client host, one resolver
/// per policy (DoT + DoH services around a [`PaddedResponder`]), and
/// one wildcard zone per closed-world domain.
pub fn install(net: &mut Network, domains: u32) -> PrivacyWorld {
    let now = study_date();
    net.add_host(HostMeta::new(CLIENT_IP).country("DE").asn(3320));

    let mut zones = Vec::with_capacity(domains as usize);
    for d in 0..domains {
        let apex = Name::parse(&format!("site{d}.example")).expect("static domain apex");
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").expect("wildcard label"),
            60,
            RData::A(Ipv4Addr::new(203, 0, 113, (d % 250 + 1) as u8)),
        );
        zones.push(zone);
    }
    let auth: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(zones));

    let ca = CaHandle::new("Privacy Study Root", KeyId(90), now + -700, 3650);
    let mut store = TrustStore::new();
    store.add(ca.authority());

    let mut legs = Vec::new();
    for (p, policy) in policies().into_iter().enumerate() {
        let resolver = Ipv4Addr::new(198, 18, 80, p as u8 + 1);
        let host = format!("dns{p}.privacy.example");
        net.add_host(HostMeta::new(resolver).country("US").asn(64500).anycast());
        let key = KeyId(100 + p as u64);
        let leaf = ca.issue(&host, vec![host.clone()], key, 1, now + -30, now + 365);
        let responder: Arc<dyn DnsResponder> =
            Arc::new(PaddedResponder::new(Arc::clone(&auth), policy));
        net.bind_tcp(
            resolver,
            doe_protocols::DOT_PORT,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![leaf.clone()], key),
                Arc::clone(&responder),
            )),
        );
        net.bind_tcp(
            resolver,
            doe_protocols::DOH_PORT,
            Arc::new(DohServerService::new(
                TlsServerConfig::new(vec![leaf], key),
                vec!["/dns-query".to_string()],
                DohBackend::Local(responder),
            )),
        );
        legs.push(PolicyLeg {
            policy,
            resolver,
            host,
        });
    }
    PrivacyWorld { store, legs }
}

/// One lookup in a sample plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedLookup {
    /// Fully-qualified name to resolve.
    pub qname: String,
    /// Record type.
    pub qtype: RecordType,
    /// Client think time before issuing this lookup, µs.
    pub think_us: u64,
}

/// The deterministic lookup plan for `(domain, sample)`.
///
/// Everything here is keyed on the pair alone — never on the policy —
/// so all five policy legs replay identical client behaviour:
///
/// * the *lookup count* (3–8) and the *label lengths* are keyed on the
///   domain: they are the stable per-site signature the adversary
///   learns;
/// * a seeded per-sample *skip* (~1 in 10 lookups) and AAAA/A type mix
///   model visit-to-visit variation, so train and test traces of one
///   domain are similar but not identical;
/// * think gaps of 2–30 ms separate the lookups (the bursts the
///   adaptive shaper fills).
pub fn sample_plan(domain: u32, sample: u32) -> Vec<PlannedLookup> {
    let lookups = 3 + (domain % 6) as usize;
    let sample_key = mix_seed(u64::from(domain) << 20, u64::from(sample));
    let mut plan = Vec::with_capacity(lookups);
    for i in 0..lookups {
        let k = mix_seed(sample_key, i as u64);
        // The first lookup (the "page load") always happens; later ones
        // are subresources a visit occasionally skips.
        if i > 0 && k.is_multiple_of(10) {
            continue;
        }
        let label_len = 1 + ((u64::from(domain) * 7 + i as u64 * 13) % 20) as usize;
        let ch = (b'a' + ((domain as u8).wrapping_add(i as u8)) % 26) as char;
        let label: String = std::iter::repeat_n(ch, label_len).collect();
        let qtype = if (domain as usize + i) % 4 == 3 {
            RecordType::Aaaa
        } else {
            RecordType::A
        };
        plan.push(PlannedLookup {
            qname: format!("{label}.site{domain}.example"),
            qtype,
            think_us: 2_000 + (k >> 8) % 28_000,
        });
    }
    plan
}

/// Replay one plan over a fresh DoT session against `leg`, returning
/// the observer's tap and the think gaps to re-insert.
pub fn run_dot_flow(
    net: &mut Network,
    store: &TrustStore,
    leg: &PolicyLeg,
    plan: &[PlannedLookup],
) -> Result<(FlowTap, Vec<u64>), QueryError> {
    let mut dot = DotClient::new(TlsClientConfig::strict(store.clone(), study_date()));
    dot.policy = leg.policy;
    let mut session = dot.session(net, CLIENT_IP, leg.resolver, Some(&leg.host))?;
    session.enable_tap();
    let mut thinks = Vec::with_capacity(plan.len());
    for (i, lookup) in plan.iter().enumerate() {
        let q = builder::query(i as u16 + 1, &lookup.qname, lookup.qtype)?;
        session.query(net, &q)?;
        thinks.push(lookup.think_us);
    }
    let tap = session.take_tap().unwrap_or_default();
    session.close(net);
    Ok((tap, thinks))
}

/// Replay one plan over a fresh DoH (POST) session against `leg`.
pub fn run_doh_flow(
    net: &mut Network,
    store: &TrustStore,
    leg: &PolicyLeg,
    plan: &[PlannedLookup],
) -> Result<(FlowTap, Vec<u64>), QueryError> {
    let template = UriTemplate::parse(&format!("https://{}/dns-query{{?dns}}", leg.host))
        .expect("static DoH template");
    let mut doh = DohClient::new(
        TlsClientConfig::strict(store.clone(), study_date()),
        template,
        DohMethod::Post,
        Bootstrap::Static(leg.resolver),
    );
    doh.policy = leg.policy;
    let mut session = doh.session(net, CLIENT_IP)?;
    session.enable_tap();
    let mut thinks = Vec::with_capacity(plan.len());
    for (i, lookup) in plan.iter().enumerate() {
        let q = builder::query(i as u16 + 1, &lookup.qname, lookup.qtype)?;
        session.query(net, &q)?;
        thinks.push(lookup.think_us);
    }
    let tap = session.take_tap().unwrap_or_default();
    session.close(net);
    Ok((tap, thinks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NetworkConfig;

    #[test]
    fn plans_are_policy_free_and_deterministic() {
        for d in 0..10u32 {
            for s in 0..4u32 {
                let a = sample_plan(d, s);
                let b = sample_plan(d, s);
                assert_eq!(a, b);
                assert!(!a.is_empty());
                assert!(a.len() <= 8);
                for l in &a {
                    assert!(l.think_us >= 2_000 && l.think_us < 30_000);
                    assert!(l.qname.ends_with(&format!(".site{d}.example")));
                }
            }
        }
        // Different samples of one domain vary (skips / think gaps)…
        assert_ne!(sample_plan(3, 0), sample_plan(3, 1));
        // …while the first lookup's name is the domain's invariant.
        assert_eq!(sample_plan(3, 0)[0].qname, sample_plan(3, 1)[0].qname);
    }

    #[test]
    fn dot_and_doh_flows_produce_taps() {
        let mut net = Network::new(NetworkConfig::default(), 901);
        let world = install(&mut net, 4);
        let plan = sample_plan(2, 0);
        let (tap, thinks) = run_dot_flow(&mut net, &world.store, &world.legs[1], &plan).unwrap();
        // One up + one down record per lookup.
        assert_eq!(tap.messages.len(), plan.len() * 2);
        assert_eq!(thinks.len(), plan.len());
        // RFC 8467 leg: every query is a 128-block (plus 2-byte frame).
        for m in tap.messages.iter().step_by(2) {
            assert_eq!(m.dir, doe_protocols::TapDirection::Up);
            assert_eq!(m.wire_len % 128, 2);
        }
        let (dtap, _) = run_doh_flow(&mut net, &world.store, &world.legs[1], &plan).unwrap();
        assert_eq!(dtap.messages.len(), plan.len() * 2);
    }

    #[test]
    fn unpadded_leg_leaks_name_lengths() {
        let mut net = Network::new(NetworkConfig::default(), 902);
        let world = install(&mut net, 4);
        let (tap_a, _) =
            run_dot_flow(&mut net, &world.store, &world.legs[0], &sample_plan(0, 0)).unwrap();
        let (tap_b, _) =
            run_dot_flow(&mut net, &world.store, &world.legs[0], &sample_plan(1, 0)).unwrap();
        // Different domains produce different unpadded size profiles.
        let sizes_a: Vec<u32> = tap_a.messages.iter().map(|m| m.wire_len).collect();
        let sizes_b: Vec<u32> = tap_b.messages.iter().map(|m| m.wire_len).collect();
        assert_ne!(sizes_a, sizes_b);
    }
}
