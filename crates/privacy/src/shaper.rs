//! Traffic shaping: the countermeasures *beyond* per-message padding.
//!
//! RFC 8467 padding hides individual message sizes but leaves the
//! message count and timing intact — which is exactly what the sequence
//! classifier exploits. The two shapers here attack that residue, both
//! implemented as deterministic event machines over
//! [`netsim::sched::Scheduler`] so every dummy cell and rate tick is an
//! ordered virtual-clock event:
//!
//! * [`ConstantRateShaper`] — a fixed-interval cell clock per flow:
//!   every tick moves exactly one cell in each direction, real bytes
//!   first-in-first-out, dummy cells when idle, and the total tick count
//!   is quantized so flow length leaks only in coarse steps. Strongest
//!   cover, highest bandwidth *and* latency cost.
//! * [`AdaptivePaddingShaper`] — the WTF-PAD/"Padding Ain't Enough"
//!   compromise: real messages pass undelayed, and seeded gap-filling
//!   dummies break up the tell-tale inter-burst silences. No latency
//!   cost, moderate bandwidth cost, weaker cover.
//!
//! [`shape_sequence`] is the uniform entry point: policies without a
//! shaping component ([`PaddingPolicy::None`] / `Block` / `RandomBlock`)
//! pass sequences through untouched.

use crate::sequence::{MessageSequence, SeqMessage};
use dnswire::PaddingPolicy;
use doe_protocols::TapDirection;
use netsim::sched::{Fired, SchedEvent, Scheduler};
use netsim::{SimDuration, SimInstant};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ticks (and therefore cells per direction) are rounded up to a
/// multiple of this, so the constant-rate shaper leaks flow length only
/// in steps of `TICK_QUANTUM` lookups' worth of cells.
const TICK_QUANTUM: u64 = 4;

/// Trailing dummies the adaptive shaper appends once the last real
/// message has passed, blurring where the flow actually ended.
const TRAILING_DUMMIES: u32 = 2;

/// What a shaper produced for one flow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShapedOutcome {
    /// The on-wire sequence the observer sees after shaping.
    pub seq: MessageSequence,
    /// Dummy cells injected (bandwidth overhead source).
    pub dummy_cells: u64,
    /// Total queueing delay added to real messages, µs (constant-rate
    /// only; adaptive padding never delays real traffic).
    pub latency_added_us: u64,
}

/// Absolute arrival instants of a sequence's messages (µs from flow
/// start), from the stored gaps.
fn arrival_times_us(input: &MessageSequence) -> Vec<u64> {
    let mut t = 0u64;
    input
        .messages
        .iter()
        .map(|m| {
            t += m.gap_us;
            t
        })
        .collect()
}

/// Rebuild a gap-encoded sequence from time-ordered absolute events.
fn to_sequence(events: &[(u64, TapDirection, u32)]) -> MessageSequence {
    let mut prev = 0u64;
    let messages = events
        .iter()
        .map(|&(at, dir, size)| {
            let gap_us = at.saturating_sub(prev);
            prev = at;
            SeqMessage { gap_us, dir, size }
        })
        .collect();
    MessageSequence { messages }
}

fn instant(us: u64) -> SimInstant {
    SimInstant::EPOCH + SimDuration::from_micros(us)
}

/// One queued real message: arrival instant and cells still to move.
#[derive(Debug, Clone, Copy)]
struct QueuedMessage {
    arrival_us: u64,
    cells_left: u32,
}

/// The constant-rate event machine for one flow.
///
/// Setup schedules a `Deliver { token: i }` per input message at its
/// arrival instant and a `Timer` at the first tick; every tick emits one
/// cell per direction (real front-of-queue bytes, else a dummy) and
/// re-arms itself until all input is flushed and the tick count reaches
/// a [`TICK_QUANTUM`] boundary.
pub struct ConstantRateShaper {
    interval_us: u64,
    cell_wire: u32,
    cell_payload: u32,
    inputs: Vec<(u64, TapDirection, u32)>,
    delivered: usize,
    queue_up: std::collections::VecDeque<QueuedMessage>,
    queue_down: std::collections::VecDeque<QueuedMessage>,
    ticks: u64,
    out: Vec<(u64, TapDirection, u32)>,
    dummy_cells: u64,
    latency_added_us: u64,
}

impl ConstantRateShaper {
    fn new(interval_us: u64, cell_payload: u32, input: &MessageSequence) -> Self {
        let arrivals = arrival_times_us(input);
        let inputs = input
            .messages
            .iter()
            .zip(&arrivals)
            .map(|(m, &at)| (at, m.dir, m.size))
            .collect();
        ConstantRateShaper {
            interval_us,
            // Cells travel framed like real DoT messages, so a dummy is
            // not distinguishable from a one-cell real message by size.
            cell_wire: cell_payload + 2,
            cell_payload,
            inputs,
            delivered: 0,
            queue_up: std::collections::VecDeque::new(),
            queue_down: std::collections::VecDeque::new(),
            ticks: 0,
            out: Vec::new(),
            dummy_cells: 0,
            latency_added_us: 0,
        }
    }

    fn seed_events(&self, sched: &mut Scheduler) {
        for (i, &(at, _, _)) in self.inputs.iter().enumerate() {
            sched.schedule(instant(at), 0, SchedEvent::Deliver { token: i as u32 });
        }
        sched.schedule(instant(self.interval_us), 0, SchedEvent::Timer { token: 0 });
    }

    fn drained(&self) -> bool {
        self.delivered == self.inputs.len()
            && self.queue_up.is_empty()
            && self.queue_down.is_empty()
    }

    /// Emit one cell in `dir` at `now`: real front-of-queue bytes if any
    /// are waiting, a dummy otherwise.
    fn emit_cell(&mut self, now_us: u64, dir: TapDirection) {
        let queue = match dir {
            TapDirection::Up => &mut self.queue_up,
            TapDirection::Down => &mut self.queue_down,
        };
        match queue.front_mut() {
            Some(msg) => {
                msg.cells_left -= 1;
                if msg.cells_left == 0 {
                    let arrival = msg.arrival_us;
                    queue.pop_front();
                    self.latency_added_us += now_us.saturating_sub(arrival);
                }
            }
            None => self.dummy_cells += 1,
        }
        self.out.push((now_us, dir, self.cell_wire));
    }

    /// One scheduler step. The bare-`Scheduler` form of
    /// [`netsim::sched::EventMachine`]: the shaper runs per flow, after
    /// the fact, over tapped sequences — it never touches a `Network`.
    pub fn on_event(&mut self, sched: &mut Scheduler, fired: Fired) {
        match fired.event {
            SchedEvent::Deliver { token } => {
                let (at, dir, size) = self.inputs[token as usize];
                let cells_left = size.div_ceil(self.cell_payload).max(1);
                let queued = QueuedMessage {
                    arrival_us: at,
                    cells_left,
                };
                match dir {
                    TapDirection::Up => self.queue_up.push_back(queued),
                    TapDirection::Down => self.queue_down.push_back(queued),
                }
                self.delivered += 1;
            }
            SchedEvent::Timer { .. } => {
                let now_us = fired.at.since(SimInstant::EPOCH).as_micros();
                self.emit_cell(now_us, TapDirection::Up);
                self.emit_cell(now_us, TapDirection::Down);
                self.ticks += 1;
                let done = self.drained() && self.ticks.is_multiple_of(TICK_QUANTUM);
                if !done {
                    let next = now_us + self.interval_us;
                    sched.schedule(instant(next), 0, SchedEvent::Timer { token: 0 });
                }
            }
            _ => {}
        }
    }

    fn finish(self) -> ShapedOutcome {
        ShapedOutcome {
            seq: to_sequence(&self.out),
            dummy_cells: self.dummy_cells,
            latency_added_us: self.latency_added_us,
        }
    }
}

/// The adaptive-padding event machine for one flow.
///
/// Real messages pass at their original instants. After every real
/// message a gap-filling dummy timer is armed from the flow's seeded
/// RNG; if the timer outlives the next real message it is lazily
/// cancelled via its generation token (the [`SchedEvent::IdleClose`]
/// pattern), otherwise a dummy cell fires and re-arms. After the last
/// real message, [`TRAILING_DUMMIES`] more dummies blur the flow tail.
pub struct AdaptivePaddingShaper {
    burst_gap_us: u64,
    cell_wire: u32,
    inputs: Vec<(u64, TapDirection, u32)>,
    delivered: usize,
    generation: u32,
    trailing_left: u32,
    rng: SmallRng,
    out: Vec<(u64, TapDirection, u32)>,
    dummy_cells: u64,
}

impl AdaptivePaddingShaper {
    fn new(burst_gap_us: u64, cell_payload: u32, input: &MessageSequence, seed: u64) -> Self {
        let arrivals = arrival_times_us(input);
        let inputs = input
            .messages
            .iter()
            .zip(&arrivals)
            .map(|(m, &at)| (at, m.dir, m.size))
            .collect();
        AdaptivePaddingShaper {
            burst_gap_us,
            cell_wire: cell_payload + 2,
            inputs,
            delivered: 0,
            generation: 0,
            trailing_left: TRAILING_DUMMIES,
            rng: SmallRng::seed_from_u64(seed),
            out: Vec::new(),
            dummy_cells: 0,
        }
    }

    fn seed_events(&self, sched: &mut Scheduler) {
        for (i, &(at, _, _)) in self.inputs.iter().enumerate() {
            sched.schedule(instant(at), 0, SchedEvent::Deliver { token: i as u32 });
        }
    }

    /// Sample the next dummy gap: uniform in `[burst_gap, 3×burst_gap)`,
    /// floored at 1 µs so a degenerate config cannot arm a same-instant
    /// re-firing loop.
    fn sample_gap(&mut self) -> u64 {
        (self.burst_gap_us + self.rng.gen_range(0..self.burst_gap_us.max(1) * 2)).max(1)
    }

    fn arm_dummy(&mut self, sched: &mut Scheduler, now_us: u64) {
        self.generation += 1;
        let gap = self.sample_gap();
        sched.schedule(
            instant(now_us + gap),
            0,
            SchedEvent::IdleClose {
                generation: self.generation,
            },
        );
    }

    /// One scheduler step (bare-`Scheduler` event machine, like
    /// [`ConstantRateShaper::on_event`]).
    pub fn on_event(&mut self, sched: &mut Scheduler, fired: Fired) {
        let now_us = fired.at.since(SimInstant::EPOCH).as_micros();
        match fired.event {
            SchedEvent::Deliver { token } => {
                let (at, dir, size) = self.inputs[token as usize];
                self.out.push((at, dir, size));
                self.delivered += 1;
                // A real message supersedes any armed dummy (lazy cancel
                // by generation bump) and re-arms the gap filler.
                self.arm_dummy(sched, now_us);
            }
            SchedEvent::IdleClose { generation } => {
                if generation != self.generation {
                    return; // stale: a real message got there first
                }
                let dir = if self.rng.gen::<bool>() {
                    TapDirection::Up
                } else {
                    TapDirection::Down
                };
                self.out.push((now_us, dir, self.cell_wire));
                self.dummy_cells += 1;
                if self.delivered == self.inputs.len() {
                    // Tail cover: only a bounded number of dummies past
                    // the last real message.
                    if self.trailing_left == 0 {
                        return;
                    }
                    self.trailing_left -= 1;
                }
                self.arm_dummy(sched, now_us);
            }
            _ => {}
        }
    }

    fn finish(self) -> ShapedOutcome {
        ShapedOutcome {
            seq: to_sequence(&self.out),
            dummy_cells: self.dummy_cells,
            latency_added_us: 0,
        }
    }
}

/// Run `input` through the shaping component of `policy`, if it has
/// one. `seed` drives the adaptive shaper's dummy schedule; it must be
/// derived per flow (e.g. via [`netsim::mix_seed`]) so the dummy
/// pattern is deterministic for the flow regardless of shard layout.
pub fn shape_sequence(policy: PaddingPolicy, input: &MessageSequence, seed: u64) -> ShapedOutcome {
    match policy {
        PaddingPolicy::None | PaddingPolicy::Block { .. } | PaddingPolicy::RandomBlock { .. } => {
            ShapedOutcome {
                seq: input.clone(),
                dummy_cells: 0,
                latency_added_us: 0,
            }
        }
        PaddingPolicy::ConstantRate { interval_us, cell } => {
            if input.is_empty() {
                return ShapedOutcome::default();
            }
            let mut sched = Scheduler::new();
            let mut shaper = ConstantRateShaper::new(u64::from(interval_us), cell as u32, input);
            shaper.seed_events(&mut sched);
            while let Some(fired) = sched.pop() {
                shaper.on_event(&mut sched, fired);
            }
            shaper.finish()
        }
        PaddingPolicy::AdaptivePadding { burst_gap_us, cell } => {
            if input.is_empty() {
                return ShapedOutcome::default();
            }
            let mut sched = Scheduler::new();
            let mut shaper =
                AdaptivePaddingShaper::new(u64::from(burst_gap_us), cell as u32, input, seed);
            shaper.seed_events(&mut sched);
            while let Some(fired) = sched.pop() {
                shaper.on_event(&mut sched, fired);
            }
            shaper.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> MessageSequence {
        MessageSequence {
            messages: vec![
                SeqMessage {
                    gap_us: 1_000,
                    dir: TapDirection::Up,
                    size: 130,
                },
                SeqMessage {
                    gap_us: 300,
                    dir: TapDirection::Down,
                    size: 470,
                },
                SeqMessage {
                    gap_us: 9_000,
                    dir: TapDirection::Up,
                    size: 130,
                },
                SeqMessage {
                    gap_us: 300,
                    dir: TapDirection::Down,
                    size: 470,
                },
            ],
        }
    }

    #[test]
    fn block_policies_pass_through() {
        let input = sample_input();
        for policy in [
            PaddingPolicy::None,
            PaddingPolicy::rfc8467(),
            PaddingPolicy::RandomBlock {
                query_block: 128,
                response_block: 468,
                max_extra: 3,
            },
        ] {
            let out = shape_sequence(policy, &input, 42);
            assert_eq!(out.seq, input);
            assert_eq!(out.dummy_cells, 0);
            assert_eq!(out.latency_added_us, 0);
        }
    }

    #[test]
    fn constant_rate_emits_uniform_quantized_cells() {
        let input = sample_input();
        let policy = PaddingPolicy::ConstantRate {
            interval_us: 2_000,
            cell: 128,
        };
        let out = shape_sequence(policy, &input, 7);
        // Every emitted message is exactly one framed cell.
        assert!(out.seq.messages.iter().all(|m| m.size == 130));
        // One cell each way per tick → equal counts, and the tick count
        // is a multiple of the quantum.
        let ups = out
            .seq
            .messages
            .iter()
            .filter(|m| m.dir == TapDirection::Up)
            .count() as u64;
        let downs = out.seq.messages.len() as u64 - ups;
        assert_eq!(ups, downs);
        assert_eq!(ups % TICK_QUANTUM, 0);
        // 470-byte responses need 4 cells each; queueing delays them.
        assert!(out.latency_added_us > 0);
        assert!(out.dummy_cells > 0);
        // All real cells were flushed: real cell count is total minus
        // dummies.
        let real_cells = ups + downs - out.dummy_cells;
        // Framed sizes 130/470 need ⌈130/128⌉=2 and ⌈470/128⌉=4 cells:
        // 2 + 4 + 2 + 4 of real traffic.
        assert_eq!(real_cells, 12);
    }

    #[test]
    fn constant_rate_is_deterministic() {
        let input = sample_input();
        let policy = PaddingPolicy::ConstantRate {
            interval_us: 2_000,
            cell: 128,
        };
        assert_eq!(
            shape_sequence(policy, &input, 1),
            shape_sequence(policy, &input, 2)
        );
    }

    #[test]
    fn adaptive_padding_never_delays_real_messages() {
        let input = sample_input();
        let policy = PaddingPolicy::AdaptivePadding {
            burst_gap_us: 1_500,
            cell: 128,
        };
        let out = shape_sequence(policy, &input, 11);
        assert_eq!(out.latency_added_us, 0);
        // The 9 ms silence between lookups exceeds the burst gap, so at
        // least one gap-filling dummy landed; the tail adds more.
        assert!(out.dummy_cells > 0);
        // Real bytes survive exactly: shaped total minus the dummies'
        // framed cells equals the input's wire bytes.
        assert_eq!(
            out.seq.wire_bytes() - out.dummy_cells * 130,
            input.wire_bytes()
        );
        // Same seed → same dummies; different seed → (almost surely)
        // different schedule.
        let again = shape_sequence(policy, &input, 11);
        assert_eq!(out, again);
    }
}
