//! The sharded padding-leakage experiment.
//!
//! Replays the closed-world workload once per policy, extracts and
//! shapes each flow's message sequence, then evaluates the k-NN
//! adversary per policy and measures bandwidth/latency overhead against
//! the unpadded baseline.
//!
//! Determinism: a flow is the unit of work. Each flow seeds its own RNG
//! from `mix_seed(salt, flow_index)`, swaps it into its shard's network
//! around every session operation, and uses fresh clients, so a flow's
//! observation depends on its index alone — never on which shard ran it
//! or what ran before it. The merge is a sort by `(policy, domain,
//! sample)`, so the report is bit-identical for any shard count.

use crate::classifier::{evaluate_closed_world, LabeledTrace};
use crate::sequence::MessageSequence;
use crate::shaper::shape_sequence;
use crate::workload::{self, PrivacyWorld};
use netsim::telemetry::Labels;
use netsim::{mix_seed, Network};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Knobs for one privacy-study run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyConfig {
    /// Closed-world size: number of candidate domains.
    pub domains: u32,
    /// Observed visits (flows) per domain per policy.
    pub samples_per_domain: u32,
    /// Of those, how many train the adversary; the rest are tested.
    pub train_per_domain: u32,
    /// Size-bucket width for the classifier alphabet, bytes.
    pub size_bucket: u32,
    /// Neighbours in the k-NN vote.
    pub k: usize,
}

impl PrivacyConfig {
    /// CI-scale configuration.
    pub fn quick() -> Self {
        PrivacyConfig {
            domains: 20,
            samples_per_domain: 8,
            train_per_domain: 6,
            size_bucket: 16,
            k: 3,
        }
    }

    /// Paper-scale configuration.
    pub fn paper() -> Self {
        PrivacyConfig {
            domains: 40,
            samples_per_domain: 12,
            train_per_domain: 8,
            size_bucket: 16,
            k: 3,
        }
    }
}

/// One flow's processed observation, as merged across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlowResult {
    policy: u8,
    domain: u32,
    sample: u32,
    symbols: Vec<u16>,
    wire_bytes: u64,
    dummy_cells: u64,
    latency_added_us: u64,
    messages: u64,
}

/// Per-policy outcome of the experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyReport {
    /// Policy label (see `PaddingPolicy::label`).
    pub policy: &'static str,
    /// Closed-world classifier accuracy, ‰ of tested flows.
    pub accuracy_permille: u32,
    /// Correctly attributed test flows.
    pub correct: u64,
    /// Tested flows.
    pub tested: u64,
    /// Total on-wire bytes across the policy's flows (after shaping).
    pub wire_bytes: u64,
    /// Bytes relative to the unpadded baseline, ‰ (1000 = parity).
    pub bandwidth_overhead_permille: u32,
    /// Dummy cells injected by the policy's shaper.
    pub dummy_cells: u64,
    /// Mean added queueing latency per flow, µs (constant-rate only).
    pub latency_added_us_mean: u64,
    /// Total messages the observer saw (real + dummy).
    pub messages: u64,
}

/// The merged experiment report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyReport {
    /// Closed-world size.
    pub domains: u32,
    /// Flows per domain per policy.
    pub samples_per_domain: u32,
    /// Total flows simulated (all policies).
    pub flows: u64,
    /// Random-guess baseline, ‰.
    pub random_guess_permille: u32,
    /// Per-policy results, in [`workload::policies`] order.
    pub policies: Vec<PolicyReport>,
}

/// Whether sample `s` of a domain rides DoH instead of DoT (a small,
/// deterministic minority — the paper's client mix is DoT-heavy).
fn is_doh_sample(sample: u32) -> bool {
    sample % 6 == 5
}

/// Run one flow on its shard's worker network.
fn run_flow(
    worker: &mut Network,
    world: &PrivacyWorld,
    cfg: &PrivacyConfig,
    salt: u64,
    flow: u64,
) -> FlowResult {
    let per_policy = u64::from(cfg.domains) * u64::from(cfg.samples_per_domain);
    let policy_idx = (flow / per_policy) as usize;
    let domain = ((flow % per_policy) / u64::from(cfg.samples_per_domain)) as u32;
    let sample = (flow % u64::from(cfg.samples_per_domain)) as u32;
    let leg = &world.legs[policy_idx];
    let plan = workload::sample_plan(domain, sample);

    let mut rng = SmallRng::seed_from_u64(mix_seed(salt, flow));
    worker.swap_rng(&mut rng);
    let observed = if is_doh_sample(sample) {
        workload::run_doh_flow(worker, &world.store, leg, &plan)
    } else {
        workload::run_dot_flow(worker, &world.store, leg, &plan)
    };
    worker.swap_rng(&mut rng);
    // The world is self-built and closed: a transport error here is an
    // experiment bug, not a measurement outcome.
    let (tap, thinks) = observed.expect("privacy flow failed against self-built resolver");

    let seq = MessageSequence::extract(&tap, &thinks);
    let shaped = shape_sequence(leg.policy, &seq, mix_seed(salt ^ 0x5348_4150, flow));
    FlowResult {
        policy: policy_idx as u8,
        domain,
        sample,
        symbols: shaped.seq.symbols(cfg.size_bucket),
        wire_bytes: shaped.seq.wire_bytes(),
        dummy_cells: shaped.dummy_cells,
        latency_added_us: shaped.latency_added_us,
        messages: shaped.seq.len() as u64,
    }
}

/// Run the experiment over `shards` worker shards forked from `net`,
/// which must already carry the installed world
/// ([`workload::install`]); `net` receives the merged shard state and
/// the per-policy telemetry counters.
pub fn privacy_study_sharded(
    net: &mut Network,
    world: &PrivacyWorld,
    cfg: &PrivacyConfig,
    shards: usize,
) -> PrivacyReport {
    let shards = shards.max(1);
    let n_policies = world.legs.len();
    let per_policy = u64::from(cfg.domains) * u64::from(cfg.samples_per_domain);
    let flows_total = n_policies as u64 * per_policy;
    let salt = mix_seed(net.base_seed(), 0x7072_6976_6163_7921); // "privacy!"

    let run_shard = |worker: &mut Network, shard: usize| -> Vec<FlowResult> {
        let mut out = Vec::new();
        let mut flow = shard as u64;
        while flow < flows_total {
            out.push(run_flow(worker, world, cfg, salt, flow));
            flow += shards as u64;
        }
        out
    };

    let mut outputs: Vec<(Network, Vec<FlowResult>)> = if shards == 1 {
        let mut worker = net.fork_shard(0);
        let results = run_shard(&mut worker, 0);
        vec![(worker, results)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = net.fork_shard(s as u64);
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let results = run_shard(&mut worker, s);
                        (worker, results)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("privacy shard panicked"))
                .collect()
        })
        .expect("privacy scope panicked")
    };

    let mut results: Vec<FlowResult> = Vec::with_capacity(flows_total as usize);
    for (worker, mut shard_results) in outputs.drain(..) {
        net.absorb_shard(worker);
        results.append(&mut shard_results);
    }
    // The canonical order: flow identity, independent of shard layout.
    results.sort_by_key(|a| (a.policy, a.domain, a.sample));

    let report = aggregate(cfg, &results);

    let m = net.metrics_mut();
    for pr in &report.policies {
        let labels = Labels::one("policy", pr.policy);
        m.count("stage.privacy.flows", labels.clone(), per_policy);
        m.count("stage.privacy.wire_bytes", labels.clone(), pr.wire_bytes);
        m.count("stage.privacy.dummy_cells", labels.clone(), pr.dummy_cells);
        m.count("stage.privacy.messages", labels.clone(), pr.messages);
        m.count("stage.privacy.attributed", labels, pr.correct);
    }
    report
}

/// Classify and aggregate the sorted flow results.
fn aggregate(cfg: &PrivacyConfig, results: &[FlowResult]) -> PrivacyReport {
    let labels: Vec<&'static str> = workload::policies().iter().map(|p| p.label()).collect();
    let per_policy_flows = u64::from(cfg.domains) * u64::from(cfg.samples_per_domain);
    let mut policies = Vec::with_capacity(labels.len());
    let mut baseline_bytes = 0u64;
    for (p, label) in labels.iter().enumerate() {
        let slice: Vec<&FlowResult> = results.iter().filter(|r| r.policy == p as u8).collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for r in &slice {
            let trace = LabeledTrace {
                domain: r.domain,
                symbols: r.symbols.clone(),
            };
            if r.sample < cfg.train_per_domain {
                train.push(trace);
            } else {
                test.push(trace);
            }
        }
        let (correct, tested) = evaluate_closed_world(&train, &test, cfg.k);
        let wire_bytes: u64 = slice.iter().map(|r| r.wire_bytes).sum();
        let dummy_cells: u64 = slice.iter().map(|r| r.dummy_cells).sum();
        let latency_total: u64 = slice.iter().map(|r| r.latency_added_us).sum();
        let messages: u64 = slice.iter().map(|r| r.messages).sum();
        if p == 0 {
            baseline_bytes = wire_bytes;
        }
        policies.push(PolicyReport {
            policy: label,
            accuracy_permille: (correct * 1000).checked_div(tested).unwrap_or(0) as u32,
            correct,
            tested,
            wire_bytes,
            bandwidth_overhead_permille: (wire_bytes * 1000)
                .checked_div(baseline_bytes)
                .unwrap_or(0) as u32,
            dummy_cells,
            latency_added_us_mean: latency_total.checked_div(per_policy_flows).unwrap_or(0),
            messages,
        });
    }
    PrivacyReport {
        domains: cfg.domains,
        samples_per_domain: cfg.samples_per_domain,
        flows: per_policy_flows * labels.len() as u64,
        random_guess_permille: 1000u32.checked_div(cfg.domains).unwrap_or(0),
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NetworkConfig;

    fn tiny() -> PrivacyConfig {
        PrivacyConfig {
            domains: 8,
            samples_per_domain: 5,
            train_per_domain: 3,
            size_bucket: 16,
            k: 3,
        }
    }

    fn run(shards: usize) -> PrivacyReport {
        let mut net = Network::new(NetworkConfig::default(), 4242);
        let world = workload::install(&mut net, tiny().domains);
        privacy_study_sharded(&mut net, &world, &tiny(), shards)
    }

    #[test]
    fn report_is_shard_invariant() {
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn acceptance_ordering_holds() {
        let report = run(1);
        let by: std::collections::BTreeMap<&str, &PolicyReport> =
            report.policies.iter().map(|p| (p.policy, p)).collect();
        let none = by["none"];
        let block = by["block"];
        let adaptive = by["adaptive-padding"];
        let constant = by["constant-rate"];
        // The classifier beats random guessing handily on unpadded
        // traffic…
        assert!(
            none.accuracy_permille > report.random_guess_permille * 4,
            "unpadded accuracy {} vs random {}",
            none.accuracy_permille,
            report.random_guess_permille
        );
        // …RFC 8467 padding reduces but does not eliminate the leak…
        assert!(
            block.accuracy_permille < none.accuracy_permille,
            "block {} !< none {}",
            block.accuracy_permille,
            none.accuracy_permille
        );
        assert!(block.accuracy_permille > report.random_guess_permille);
        // …and shaping reduces it further, at measured bandwidth cost.
        assert!(constant.accuracy_permille <= block.accuracy_permille);
        assert!(constant.bandwidth_overhead_permille > block.bandwidth_overhead_permille);
        assert!(adaptive.bandwidth_overhead_permille > 1000);
        assert!(constant.dummy_cells > 0);
        assert!(adaptive.dummy_cells > 0);
        // Only the constant-rate shaper delays real traffic.
        assert!(constant.latency_added_us_mean > 0);
        assert_eq!(adaptive.latency_added_us_mean, 0);
        // Padding costs bytes: every countermeasure is above parity.
        assert!(block.bandwidth_overhead_permille > 1000);
    }

    #[test]
    fn telemetry_counts_flows_per_policy() {
        let mut net = Network::new(NetworkConfig::default(), 77);
        let cfg = tiny();
        let world = workload::install(&mut net, cfg.domains);
        privacy_study_sharded(&mut net, &world, &cfg, 2);
        let per_policy = u64::from(cfg.domains) * u64::from(cfg.samples_per_domain);
        for policy in [
            "none",
            "block",
            "random-block",
            "adaptive-padding",
            "constant-rate",
        ] {
            assert_eq!(
                net.metrics()
                    .counter_value("stage.privacy.flows", &Labels::one("policy", policy)),
                per_policy
            );
        }
    }
}
