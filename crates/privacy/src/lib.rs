//! # doe-privacy — padding policies, traffic shaping and a
//! sequence-fingerprinting adversary
//!
//! The paper's §2.2 motivates DNS encryption with traffic-analysis
//! resistance, and its §6 recommendation is "pad your queries" (RFC
//! 8467). This crate asks the follow-up question the FOCI '20 literature
//! ("Padding Ain't Enough") answered in the negative: *does padding
//! actually stop an on-path observer from fingerprinting which site a
//! client resolved?*
//!
//! The experiment is staged end to end in simulation:
//!
//! * [`sequence`] — the observer model: a [`MessageSequence`] of
//!   (gap, direction, padded size) triples extracted from a
//!   [`FlowTap`](doe_protocols::FlowTap) on a DoT/DoH session. Plaintext
//!   never reaches the adversary; ciphertext lengths and timing do.
//! * [`shaper`] — countermeasures beyond per-message padding: a
//!   constant-rate shaper and an adaptive-padding (gap-filling dummy)
//!   shaper, both deterministic event machines over
//!   [`netsim::sched::Scheduler`].
//! * [`classifier`] — the adversary: a k-nearest-neighbour classifier
//!   over Damerau–Levenshtein distance between size/direction symbol
//!   strings, evaluated closed-world over per-domain query sequences.
//! * [`workload`] / [`study`] — the sharded experiment: the same
//!   per-domain lookup plans replayed under every
//!   [`PaddingPolicy`](dnswire::PaddingPolicy), then classified, with
//!   bandwidth and latency overheads measured against the unpadded
//!   baseline.
//!
//! Everything is seeded and shard-invariant: `results/privacy.json` is
//! byte-identical for any `--shards` split.

pub mod classifier;
pub mod sequence;
pub mod shaper;
pub mod study;
pub mod workload;

pub use classifier::{evaluate_closed_world, knn_classify, sequence_distance, LabeledTrace};
pub use sequence::{MessageSequence, SeqMessage};
pub use shaper::{shape_sequence, ShapedOutcome};
pub use study::{privacy_study_sharded, PolicyReport, PrivacyConfig, PrivacyReport};
