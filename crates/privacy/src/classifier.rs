//! The adversary: a k-nearest-neighbour sequence classifier.
//!
//! Distance is the Damerau–Levenshtein (optimal string alignment)
//! distance over the direction/size symbol strings of
//! [`MessageSequence::symbols`](crate::MessageSequence::symbols) — the
//! classifier family the FOCI '20 DoH-fingerprinting work found most
//! effective on short DNS flows. Everything here is integer arithmetic
//! with total, explicit tie-breaks, so a seeded evaluation is
//! bit-reproducible.

/// A training trace: the symbol string of one observed flow plus the
/// ground-truth domain index it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledTrace {
    /// Closed-world domain index.
    pub domain: u32,
    /// Symbol string (see `MessageSequence::symbols`).
    pub symbols: Vec<u16>,
}

/// Damerau–Levenshtein distance (optimal string alignment variant:
/// insert, delete, substitute, transpose-adjacent, all cost 1) between
/// two symbol strings.
pub fn sequence_distance(a: &[u16], b: &[u16]) -> u32 {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m as u32;
    }
    if m == 0 {
        return n as u32;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut prev2 = vec![0u32; m + 1];
    let mut prev = (0..=m as u32).collect::<Vec<_>>();
    let mut cur = vec![0u32; m + 1];
    for i in 1..=n {
        cur[0] = i as u32;
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut d = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + sub);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(prev2[j - 2] + 1);
            }
            cur[j] = d;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Classify one sample against a training set with k-NN majority vote.
///
/// Determinism contract: neighbours are ranked by
/// `(distance, domain, training index)` — a total order — and vote ties
/// are broken by (smaller summed distance, smaller domain index). The
/// result depends only on the inputs, never on sort stability or
/// iteration order.
pub fn knn_classify(train: &[LabeledTrace], sample: &[u16], k: usize) -> Option<u32> {
    if train.is_empty() || k == 0 {
        return None;
    }
    let mut ranked: Vec<(u32, u32, usize)> = train
        .iter()
        .enumerate()
        .map(|(idx, t)| (sequence_distance(&t.symbols, sample), t.domain, idx))
        .collect();
    ranked.sort_unstable();
    ranked.truncate(k);
    // Tally votes over the k nearest: (count desc, summed distance asc,
    // domain asc). Domains are small dense indices, so a sorted Vec
    // keyed by domain keeps this hash-free.
    let mut tally: Vec<(u32, u32, u64)> = Vec::with_capacity(k); // (domain, votes, dist_sum)
    for &(dist, domain, _) in &ranked {
        match tally.iter_mut().find(|t| t.0 == domain) {
            Some(t) => {
                t.1 += 1;
                t.2 += u64::from(dist);
            }
            None => tally.push((domain, 1, u64::from(dist))),
        }
    }
    tally
        .into_iter()
        .min_by_key(|&(domain, votes, dist_sum)| (std::cmp::Reverse(votes), dist_sum, domain))
        .map(|(domain, _, _)| domain)
}

/// Closed-world evaluation: classify every test trace, return
/// `(correct, total)`.
pub fn evaluate_closed_world(
    train: &[LabeledTrace],
    test: &[LabeledTrace],
    k: usize,
) -> (u64, u64) {
    let mut correct = 0u64;
    for t in test {
        if knn_classify(train, &t.symbols, k) == Some(t.domain) {
            correct += 1;
        }
    }
    (correct, test.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(sequence_distance(&[], &[]), 0);
        assert_eq!(sequence_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(sequence_distance(&[1, 2, 3], &[]), 3);
        assert_eq!(sequence_distance(&[1, 2, 3], &[1, 3, 3]), 1); // substitution
        assert_eq!(sequence_distance(&[1, 2, 3], &[1, 3, 2]), 1); // transposition
        assert_eq!(sequence_distance(&[1, 2], &[1, 2, 9, 9]), 2); // insertions
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [5u16, 9, 9, 2, 7];
        let b = [5u16, 9, 2, 7, 7, 1];
        assert_eq!(sequence_distance(&a, &b), sequence_distance(&b, &a));
    }

    #[test]
    fn knn_recovers_clean_clusters() {
        let mut train = Vec::new();
        for rep in 0..3u16 {
            train.push(LabeledTrace {
                domain: 0,
                symbols: vec![10, 20, 10, 20, rep],
            });
            train.push(LabeledTrace {
                domain: 1,
                symbols: vec![90, 80, 90, 80, 90, 80, rep],
            });
        }
        assert_eq!(knn_classify(&train, &[10, 20, 10, 20, 99], 3), Some(0));
        assert_eq!(knn_classify(&train, &[90, 80, 90, 80, 90, 80], 3), Some(1));
    }

    #[test]
    fn ties_break_to_smallest_domain() {
        let train = vec![
            LabeledTrace {
                domain: 7,
                symbols: vec![1, 1],
            },
            LabeledTrace {
                domain: 3,
                symbols: vec![1, 1],
            },
        ];
        // Both neighbours are at distance 0 with one vote each; the
        // smaller domain index must win, deterministically.
        assert_eq!(knn_classify(&train, &[1, 1], 2), Some(3));
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(knn_classify(&[], &[1], 3), None);
        let train = vec![LabeledTrace {
            domain: 0,
            symbols: vec![1],
        }];
        assert_eq!(knn_classify(&train, &[1], 0), None);
    }
}
