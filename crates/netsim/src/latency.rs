//! The latency model: inter-region base RTTs, per-country access quality,
//! anycast short-circuiting and lognormal jitter.
//!
//! The paper's performance study (§4.3, Figure 9, Table 7) is entirely
//! about *relative* latency — Do53 vs DoT vs DoH over identical paths — so
//! what matters here is that (a) paths have realistic magnitudes, (b) the
//! same path yields correlated samples across protocols, and (c) per-country
//! differences (e.g. Indonesia's noisy last mile) are expressible.

use crate::geo::{CountryCode, Region};
use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Base one-way-pair RTTs between regions, in milliseconds.
///
/// Symmetric matrix indexed by [`Region::index`]. Values are coarse public
/// figures for inter-continental paths.
const REGION_RTT_MS: [[f64; 6]; 6] = [
    //            NA     SA     EU     AF     AS     OC
    /* NA */
    [18.0, 120.0, 90.0, 180.0, 185.0, 160.0],
    /* SA */ [120.0, 25.0, 190.0, 250.0, 280.0, 250.0],
    /* EU */ [90.0, 190.0, 16.0, 120.0, 180.0, 260.0],
    /* AF */ [180.0, 250.0, 120.0, 40.0, 200.0, 300.0],
    /* AS */ [185.0, 280.0, 180.0, 200.0, 45.0, 120.0],
    /* OC */ [160.0, 250.0, 260.0, 300.0, 120.0, 20.0],
];

/// Per-path latency characteristics attached to host pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Median last-mile access delay added per endpoint, ms.
    pub access_ms: f64,
    /// Multiplicative jitter sigma (lognormal scale; 0 = deterministic).
    pub jitter_sigma: f64,
    /// Probability that a single packet exchange is lost/retransmitted,
    /// charging one extra RTT.
    pub loss: f64,
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile {
            access_ms: 4.0,
            jitter_sigma: 0.08,
            loss: 0.002,
        }
    }
}

/// Endpoint description consumed by the model.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// Latency region of the endpoint.
    pub region: Region,
    /// Country, for per-country overrides.
    pub country: CountryCode,
    /// Anycast services are reached at the nearest point of presence
    /// regardless of where the "home" host sits.
    pub anycast: bool,
}

/// The deterministic-given-seed latency model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Default per-path profile.
    pub default_profile: LatencyProfile,
    /// Country-specific overrides (looked up for *both* endpoints; the
    /// worse access/jitter wins, modelling the bottleneck last mile).
    pub country_profiles: HashMap<CountryCode, LatencyProfile>,
    /// RTT to the nearest anycast PoP, per region, ms.
    pub anycast_pop_ms: [f64; 6],
    /// Extra per-round-trip delay applied when the *client's* country
    /// slow-paths a destination port (DPI queueing / traffic engineering
    /// of DNS ports — what makes some countries' port-53 or port-853
    /// paths slower than their port-443 paths, Figure 9 of the paper).
    pub port_penalty_ms: HashMap<(CountryCode, u16), f64>,
    /// Bandwidth used to charge transmission time, bytes per millisecond.
    pub bytes_per_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            default_profile: LatencyProfile::default(),
            country_profiles: HashMap::new(),
            // Anycast PoPs are dense in NA/EU, sparser elsewhere.
            anycast_pop_ms: [8.0, 35.0, 8.0, 45.0, 30.0, 25.0],
            port_penalty_ms: HashMap::new(),
            // ~10 Mbit/s residential downlink.
            bytes_per_ms: 1250.0,
        }
    }
}

impl LatencyModel {
    /// Register a country override.
    pub fn set_country_profile(&mut self, country: CountryCode, profile: LatencyProfile) {
        self.country_profiles.insert(country, profile);
    }

    /// Register a per-port penalty for clients in `country`.
    pub fn set_port_penalty(&mut self, country: CountryCode, port: u16, extra_ms: f64) {
        self.port_penalty_ms.insert((country, port), extra_ms);
    }

    /// The penalty (ms) a client in `country` pays per round trip to
    /// `port`, if any.
    pub fn port_penalty(&self, country: CountryCode, port: u16) -> f64 {
        self.port_penalty_ms
            .get(&(country, port))
            .copied()
            .unwrap_or(0.0)
    }

    fn profile_for(&self, country: CountryCode) -> LatencyProfile {
        self.country_profiles
            .get(&country)
            .copied()
            .unwrap_or(self.default_profile)
    }

    /// The deterministic base RTT between two endpoints, ms, before jitter.
    pub fn base_rtt_ms(&self, src: Endpoint, dst: Endpoint) -> f64 {
        let transit = if dst.anycast {
            self.anycast_pop_ms[src.region.index()]
        } else if src.anycast {
            self.anycast_pop_ms[dst.region.index()]
        } else {
            REGION_RTT_MS[src.region.index()][dst.region.index()]
        };
        let ps = self.profile_for(src.country);
        let pd = self.profile_for(dst.country);
        transit + ps.access_ms + pd.access_ms
    }

    /// Sample one round-trip time for a path.
    ///
    /// Jitter is multiplicative lognormal so tails are one-sided (paths get
    /// slower, not faster-than-light); the bottleneck endpoint's sigma
    /// applies.
    pub fn sample_rtt<R: Rng + ?Sized>(
        &self,
        src: Endpoint,
        dst: Endpoint,
        rng: &mut R,
    ) -> SimDuration {
        self.sample_rtt_port(src, dst, None, rng)
    }

    /// Like [`LatencyModel::sample_rtt`], adding the source country's
    /// penalty for the destination port.
    pub fn sample_rtt_port<R: Rng + ?Sized>(
        &self,
        src: Endpoint,
        dst: Endpoint,
        port: Option<u16>,
        rng: &mut R,
    ) -> SimDuration {
        let base =
            self.base_rtt_ms(src, dst) + port.map_or(0.0, |p| self.port_penalty(src.country, p));
        let sigma = self
            .profile_for(src.country)
            .jitter_sigma
            .max(self.profile_for(dst.country).jitter_sigma);
        let rtt = base * lognormal_factor(sigma, rng);
        SimDuration::from_millis_f64(rtt)
    }

    /// Per-path loss probability (bottleneck endpoint's figure).
    pub fn loss_probability(&self, src: Endpoint, dst: Endpoint) -> f64 {
        self.profile_for(src.country)
            .loss
            .max(self.profile_for(dst.country).loss)
    }

    /// Time to push `bytes` through the path, excluding propagation.
    pub fn transmission(&self, bytes: usize) -> SimDuration {
        SimDuration::from_millis_f64(bytes as f64 / self.bytes_per_ms)
    }
}

/// Sample `exp(sigma * Z)` with `Z ~ N(0,1)` via Box–Muller, normalised so
/// the *median* factor is 1.
fn lognormal_factor<R: Rng + ?Sized>(sigma: f64, rng: &mut R) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ep(cc: &str, anycast: bool) -> Endpoint {
        let country = CountryCode::new(cc);
        Endpoint {
            region: crate::geo::region_of(country),
            country,
            anycast,
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for (i, row) in REGION_RTT_MS.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, REGION_RTT_MS[j][i], "({i},{j})");
            }
        }
    }

    #[test]
    fn intercontinental_slower_than_local() {
        let m = LatencyModel::default();
        let local = m.base_rtt_ms(ep("DE", false), ep("FR", false));
        let far = m.base_rtt_ms(ep("DE", false), ep("AU", false));
        assert!(far > 2.0 * local, "far {far} vs local {local}");
    }

    #[test]
    fn anycast_short_circuits_distance() {
        let m = LatencyModel::default();
        let au_to_us_unicast = m.base_rtt_ms(ep("AU", false), ep("US", false));
        let au_to_anycast = m.base_rtt_ms(ep("AU", false), ep("US", true));
        assert!(au_to_anycast < au_to_us_unicast / 3.0);
    }

    #[test]
    fn country_profile_raises_access_delay() {
        let mut m = LatencyModel::default();
        let before = m.base_rtt_ms(ep("ID", false), ep("US", true));
        m.set_country_profile(
            CountryCode::new("ID"),
            LatencyProfile {
                access_ms: 30.0,
                jitter_sigma: 0.4,
                loss: 0.02,
            },
        );
        let after = m.base_rtt_ms(ep("ID", false), ep("US", true));
        assert!(after > before + 20.0);
        assert!(m.loss_probability(ep("ID", false), ep("US", true)) >= 0.02);
    }

    #[test]
    fn jitter_is_median_neutral_and_positive() {
        let m = LatencyModel::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let src = ep("US", false);
        let dst = ep("US", true);
        let base = m.base_rtt_ms(src, dst);
        let mut samples: Vec<f64> = (0..2001)
            .map(|_| m.sample_rtt(src, dst, &mut rng).as_millis_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - base).abs() / base < 0.05,
            "median {median} vs base {base}"
        );
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn determinism_under_same_seed() {
        let m = LatencyModel::default();
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..16)
                .map(|_| m.sample_rtt(ep("BR", false), ep("US", true), &mut rng))
                .collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..16)
                .map(|_| m.sample_rtt(ep("BR", false), ep("US", true), &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn transmission_scales_with_bytes() {
        let m = LatencyModel::default();
        assert_eq!(m.transmission(0), SimDuration::ZERO);
        assert!(m.transmission(12_500) >= SimDuration::from_millis(9));
    }
}
