//! The deterministic discrete-event scheduler: a per-shard virtual-clock
//! event heap that lets one worker interleave millions of client state
//! machines without threads, wall-clock time or hash ordering.
//!
//! Ordering contract (DESIGN.md §7): events fire strictly in
//! `(SimInstant, seq)` order, where `seq` is a per-shard monotone counter
//! assigned at schedule time. Two events at the same instant therefore
//! fire in the order they were scheduled — a *total* order, independent
//! of heap internals, platform, or shard layout. Nothing here reads a
//! wall clock or iterates a hash map, so a seeded run is bit-reproducible.
//!
//! Client legs use the heap through [`EventMachine`]: each simulated
//! client is a small state machine that, on every fired event, performs
//! one bounded step (send a query, accept a delivery, expire an idle
//! connection, retransmit) and schedules its successor events. The
//! [`run_machines`] driver pops events until the heap drains.

use crate::net::Network;
use crate::time::SimInstant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The event taxonomy. Everything the client legs wait for is one of
/// these four; payloads are small copyable tokens the owning machine
/// interprets (lazy cancellation: a stale token is ignored, never
/// removed from the heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedEvent {
    /// A machine-owned timer fired (think time, phase pacing, guards).
    Timer {
        /// Machine-interpreted discriminator for multiple timers.
        token: u32,
    },
    /// A previously-issued request's response arrives at the client.
    Deliver {
        /// Machine-interpreted request discriminator.
        token: u32,
    },
    /// A pooled connection's idle period elapsed and it should close.
    IdleClose {
        /// Reuse generation the close was armed for; the machine drops
        /// the event if the connection has been used since (lazy cancel).
        generation: u32,
    },
    /// A lost flight's retransmission timer fired.
    Retransmit {
        /// 1-based attempt number about to be made.
        attempt: u32,
    },
}

impl SchedEvent {
    /// Number of event kinds (array-sized accounting).
    pub const KIND_COUNT: usize = 4;

    /// Kind names, indexed by [`SchedEvent::kind_index`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] =
        ["timer", "deliver", "idle_close", "retransmit"];

    /// Dense index of this event's kind.
    pub fn kind_index(self) -> usize {
        match self {
            SchedEvent::Timer { .. } => 0,
            SchedEvent::Deliver { .. } => 1,
            SchedEvent::IdleClose { .. } => 2,
            SchedEvent::Retransmit { .. } => 3,
        }
    }

    /// Human-readable kind name (telemetry label).
    pub fn kind_name(self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }
}

/// A fired event, as handed to [`EventMachine::on_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired {
    /// The instant the event fired (the shard clock has been advanced
    /// to this value).
    pub at: SimInstant,
    /// The schedule-time sequence number (the tie-break key).
    pub seq: u64,
    /// Dense per-shard index of the machine the event belongs to.
    pub machine: u64,
    /// The event itself.
    pub event: SchedEvent,
}

/// Heap entry. `Ord` is *reversed* on `(at, seq)` so the std max-heap
/// behaves as a min-heap; `machine`/`event` never participate in the
/// ordering (seq alone breaks every tie).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: SimInstant,
    seq: u64,
    machine: u64,
    event: SchedEvent,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Scheduler accounting, per shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events scheduled, by [`SchedEvent::kind_index`].
    pub scheduled: [u64; SchedEvent::KIND_COUNT],
    /// Events fired, by kind.
    pub fired: [u64; SchedEvent::KIND_COUNT],
    /// Peak heap depth on this shard. Layout-dependent (a shard holding
    /// more machines holds more pending events) — reported per shard,
    /// never merged into the shard-invariant registry.
    pub peak_depth: usize,
    /// Peak number of simultaneously-pending events for any single
    /// machine. Each machine's schedule pattern depends only on its own
    /// seeded stream, so the max over machines is shard-count invariant
    /// and safe to publish as the `sched.queue.depth` gauge.
    pub machine_peak: u32,
}

/// The per-shard event heap. Pure data structure: it orders events and
/// counts them; the virtual clock itself stays in `ShardCtx` (the
/// [`Network`] advances it to each popped event's instant).
#[derive(Debug, Default)]
pub struct Scheduler {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    scheduled: [u64; SchedEvent::KIND_COUNT],
    fired: [u64; SchedEvent::KIND_COUNT],
    peak_depth: usize,
    /// Pending-event count per dense machine index (includes lazily
    /// cancelled events until they pop — deterministic either way).
    outstanding: Vec<u32>,
    machine_peak: u32,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Schedule `event` for `machine` at instant `at`; returns the
    /// assigned sequence number. Events at equal instants fire in
    /// schedule order.
    pub fn schedule(&mut self, at: SimInstant, machine: u64, event: SchedEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled[event.kind_index()] += 1;
        self.heap.push(Entry {
            at,
            seq,
            machine,
            event,
        });
        if self.heap.len() > self.peak_depth {
            self.peak_depth = self.heap.len();
        }
        let mi = machine as usize;
        if mi >= self.outstanding.len() {
            self.outstanding.resize(mi + 1, 0);
        }
        self.outstanding[mi] += 1;
        if self.outstanding[mi] > self.machine_peak {
            self.machine_peak = self.outstanding[mi];
        }
        seq
    }

    /// Pop the next event in `(at, seq)` order.
    pub fn pop(&mut self) -> Option<Fired> {
        let e = self.heap.pop()?;
        self.fired[e.event.kind_index()] += 1;
        if let Some(n) = self.outstanding.get_mut(e.machine as usize) {
            *n = n.saturating_sub(1);
        }
        Some(Fired {
            at: e.at,
            seq: e.seq,
            machine: e.machine,
            event: e.event,
        })
    }

    /// Instant of the next pending event, if any.
    pub fn peek_at(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Accounting snapshot.
    pub fn load_stats(&self) -> SchedStats {
        SchedStats {
            scheduled: self.scheduled,
            fired: self.fired,
            peak_depth: self.peak_depth,
            machine_peak: self.machine_peak,
        }
    }
}

/// A client state machine driven by scheduled events. Implementations
/// perform one bounded step per event and schedule their successors via
/// [`Network::schedule_after`]; per-client determinism comes from a
/// machine-owned RNG swapped in around network operations
/// ([`Network::swap_rng`]).
pub trait EventMachine {
    /// Handle one fired event addressed to this machine.
    fn on_event(&mut self, net: &mut Network, fired: Fired);
}

/// Drive `machines` until the shard's event heap drains. `fired.machine`
/// indexes into the slice; events addressed past its end are dropped
/// (machines must only schedule for indices they own). On completion the
/// shard-invariant `sched.queue.depth` gauge is recorded.
pub fn run_machines<M: EventMachine>(net: &mut Network, machines: &mut [M]) {
    while let Some(fired) = net.next_event() {
        if let Some(m) = machines.get_mut(fired.machine as usize) {
            m.on_event(net, fired);
        }
    }
    net.record_sched_gauge();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn at(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(at(30), 0, SchedEvent::Timer { token: 0 });
        s.schedule(at(10), 1, SchedEvent::Timer { token: 1 });
        s.schedule(at(20), 2, SchedEvent::Timer { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|f| f.machine).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_instants_fire_in_schedule_order() {
        let mut s = Scheduler::new();
        for m in 0..64u64 {
            s.schedule(at(5), m, SchedEvent::Deliver { token: m as u32 });
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|f| f.machine).collect();
        assert_eq!(order, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn seq_numbers_are_monotone_and_returned() {
        let mut s = Scheduler::new();
        let a = s.schedule(at(1), 0, SchedEvent::Timer { token: 0 });
        let b = s.schedule(at(1), 0, SchedEvent::Retransmit { attempt: 1 });
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.pop().unwrap().seq, 0);
        assert_eq!(s.pop().unwrap().seq, 1);
    }

    #[test]
    fn stats_count_by_kind_and_track_peaks() {
        let mut s = Scheduler::new();
        s.schedule(at(1), 0, SchedEvent::Timer { token: 0 });
        s.schedule(at(2), 0, SchedEvent::Deliver { token: 0 });
        s.schedule(at(3), 1, SchedEvent::IdleClose { generation: 0 });
        assert_eq!(s.load_stats().scheduled, [1, 1, 1, 0]);
        assert_eq!(s.load_stats().peak_depth, 3);
        assert_eq!(s.load_stats().machine_peak, 2, "machine 0 had two pending");
        s.pop();
        s.pop();
        s.pop();
        assert_eq!(s.load_stats().fired, [1, 1, 1, 0]);
        assert!(s.is_empty());
        assert_eq!(s.peek_at(), None);
    }

    #[test]
    fn kind_names_match_indices() {
        let events = [
            SchedEvent::Timer { token: 0 },
            SchedEvent::Deliver { token: 0 },
            SchedEvent::IdleClose { generation: 0 },
            SchedEvent::Retransmit { attempt: 1 },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind_index(), i);
            assert_eq!(e.kind_name(), SchedEvent::KIND_NAMES[i]);
        }
    }

    proptest! {
        /// Same schedule sequence ⇒ same pop sequence, and the pop
        /// sequence is sorted by (at, seq) with seq breaking every tie.
        #[test]
        fn pop_order_is_total_and_reproducible(
            times in proptest::collection::vec(0u64..50, 1..200),
        ) {
            let run = || {
                let mut s = Scheduler::new();
                for (i, &t) in times.iter().enumerate() {
                    s.schedule(at(t), i as u64, SchedEvent::Timer { token: i as u32 });
                }
                std::iter::from_fn(move || s.pop()).collect::<Vec<Fired>>()
            };
            let a = run();
            let b = run();
            prop_assert_eq!(&a, &b, "identical schedules must pop identically");
            for w in a.windows(2) {
                prop_assert!(
                    (w[0].at, w[0].seq) < (w[1].at, w[1].seq),
                    "pop order must be strictly increasing in (at, seq)"
                );
            }
        }

        /// Interleaved schedule/pop streams driven by a seeded script are
        /// reproducible and never fire an event before a later-scheduled
        /// one at an earlier instant.
        #[test]
        fn interleaved_ops_are_deterministic(
            script in proptest::collection::vec((0u64..100, any::<bool>()), 1..200),
        ) {
            let run = || {
                let mut s = Scheduler::new();
                let mut fired = Vec::new();
                for (i, &(t, do_pop)) in script.iter().enumerate() {
                    s.schedule(at(t), i as u64, SchedEvent::Deliver { token: i as u32 });
                    if do_pop {
                        if let Some(f) = s.pop() {
                            fired.push(f);
                        }
                    }
                }
                while let Some(f) = s.pop() {
                    fired.push(f);
                }
                fired
            };
            let a = run();
            prop_assert_eq!(a.len(), script.len(), "every scheduled event fires once");
            prop_assert_eq!(a, run());
        }
    }
}
