//! Optional event tracing — the simulator's tcpdump.
//!
//! Disabled by default (measurement campaigns make millions of exchanges);
//! tests and the example binaries enable it to explain what a path did.

use crate::net::ProbeOutcome;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// What happened on a path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// TCP connection established.
    TcpConnect,
    /// TCP connection attempt refused or reset.
    TcpReset {
        /// Name of the policy rule responsible, if any.
        rule: Option<String>,
    },
    /// Connection attempt timed out (blackhole or dead address).
    Timeout {
        /// Name of the policy rule responsible, if any.
        rule: Option<String>,
    },
    /// A request/response exchange completed.
    Exchange {
        /// Bytes sent by the client.
        tx: usize,
        /// Bytes returned by the server.
        rx: usize,
    },
    /// A UDP datagram was answered.
    UdpExchange {
        /// Bytes sent.
        tx: usize,
        /// Bytes returned.
        rx: usize,
    },
    /// A UDP datagram got no answer.
    UdpDrop {
        /// Name of the policy rule responsible, if any.
        rule: Option<String>,
    },
    /// The path was diverted to another host by a policy rule.
    Diverted {
        /// Where the connection actually terminated.
        actual: Ipv4Addr,
        /// Name of the responsible rule.
        rule: String,
    },
    /// A ZMap-style SYN probe completed.
    SynProbe {
        /// What came back.
        outcome: ProbeOutcome,
    },
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetEvent {
    /// Client address.
    pub src: Ipv4Addr,
    /// Dialled destination address.
    pub dst: Ipv4Addr,
    /// Dialled destination port.
    pub port: u16,
    /// Virtual time the event cost.
    pub elapsed: SimDuration,
    /// The event.
    pub kind: EventKind,
}

/// A bounded in-memory event log.
///
/// Internally a ring buffer: once `cap` is reached every new record
/// evicts the oldest entry in O(1). (An earlier `Vec::remove(0)`
/// implementation made each post-cap record O(cap) — fatal once
/// event-driven runs push millions of trace-enabled exchanges.)
#[derive(Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: VecDeque<NetEvent>,
    cap: usize,
}

impl EventLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            events: VecDeque::new(),
            cap: 0,
        }
    }

    /// An enabled log keeping at most `cap` events (oldest dropped).
    pub fn with_capacity(cap: usize) -> Self {
        EventLog {
            enabled: true,
            events: VecDeque::new(),
            cap,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled). Amortised O(1), including
    /// the at-capacity eviction.
    pub fn record(&mut self, event: NetEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.cap && self.cap > 0 {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> std::collections::vec_deque::Iter<'_, NetEvent> {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Append another log's events (oldest first), respecting this log's
    /// capacity. Used to fold per-shard logs back together after a join.
    pub fn absorb(&mut self, other: EventLog) {
        for event in other.events {
            self.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(port: u16) -> NetEvent {
        NetEvent {
            src: "10.0.0.1".parse().unwrap(),
            dst: "1.1.1.1".parse().unwrap(),
            port,
            elapsed: SimDuration::from_millis(1),
            kind: EventKind::TcpConnect,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.record(ev(853));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = EventLog::with_capacity(2);
        log.record(ev(1));
        log.record(ev(2));
        log.record(ev(3));
        let ports: Vec<u16> = log.events().map(|e| e.port).collect();
        assert_eq!(ports, vec![2, 3]);
    }

    #[test]
    fn clear_empties() {
        let mut log = EventLog::with_capacity(8);
        log.record(ev(1));
        log.clear();
        assert!(log.is_empty());
    }

    /// Ring-buffer regression: sustained churn far past the cap keeps the
    /// oldest-first contract (a contiguous window ending at the newest
    /// record) and never grows beyond the cap. With the old
    /// `Vec::remove(0)` this loop was quadratic; it now completes in
    /// linear time even under `--release`-less test runs.
    #[test]
    fn sustained_churn_keeps_window_and_cap() {
        const CAP: usize = 1_000;
        const TOTAL: u16 = 50_000;
        let mut log = EventLog::with_capacity(CAP);
        for port in 0..TOTAL {
            log.record(ev(port));
        }
        assert_eq!(log.len(), CAP);
        let ports: Vec<u16> = log.events().map(|e| e.port).collect();
        let expected: Vec<u16> = (TOTAL - CAP as u16..TOTAL).collect();
        assert_eq!(
            ports, expected,
            "log must hold the newest CAP events, oldest first"
        );
        // The iterator is double-ended: the tail view used by `repro
        // --trace` sees the newest records.
        let newest: Vec<u16> = log.events().rev().take(2).map(|e| e.port).collect();
        assert_eq!(newest, vec![TOTAL - 1, TOTAL - 2]);
    }
}
