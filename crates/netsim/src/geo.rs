//! Geography: country codes, autonomous systems, netblocks and the
//! prefix-based geo database used to attribute addresses.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An ISO-3166 alpha-2 country code (e.g. `US`, `CN`, `IE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Build from a two-character ASCII code; normalises to uppercase.
    ///
    /// # Panics
    /// Panics if `code` is not exactly two ASCII characters — country codes
    /// in this codebase are compile-time constants, so this is a programmer
    /// error, not input validation.
    pub fn new(code: &str) -> Self {
        let bytes = code.as_bytes();
        assert!(bytes.len() == 2, "country code must be 2 chars: {code:?}");
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        // `new` uppercases ASCII, so the bytes are always valid UTF-8;
        // fall back to a sentinel rather than aborting mid-measurement.
        std::str::from_utf8(&self.0).unwrap_or("??")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 2 || !s.is_ascii() {
            return Err(format!("bad country code {s:?}"));
        }
        Ok(CountryCode::new(s))
    }
}

/// An autonomous system number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse world regions used by the latency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South & Central America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Africa & Middle East.
    Africa,
    /// Asia.
    Asia,
    /// Oceania.
    Oceania,
}

impl Region {
    /// All regions, for iteration.
    pub const ALL: [Region; 6] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Africa,
        Region::Asia,
        Region::Oceania,
    ];

    /// Stable index into latency matrices.
    pub fn index(self) -> usize {
        match self {
            Region::NorthAmerica => 0,
            Region::SouthAmerica => 1,
            Region::Europe => 2,
            Region::Africa => 3,
            Region::Asia => 4,
            Region::Oceania => 5,
        }
    }
}

/// An IPv4 prefix (`addr/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Netblock {
    base: u32,
    len: u8,
}

impl Netblock {
    /// Build a prefix; host bits of `addr` are masked off.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let raw = u32::from(addr);
        let base = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Netblock { base, len }
    }

    /// The /24 containing `addr` — the aggregation unit of the paper's
    /// NetFlow ethics policy (§5.1) and Figure 12.
    pub fn slash24(addr: Ipv4Addr) -> Self {
        Netblock::new(addr, 24)
    }

    /// Prefix length.
    #[allow(clippy::len_without_is_empty)] // a prefix always covers ≥1 address
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Network (first) address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside the prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        u32::from(addr) & (u32::MAX << (32 - self.len)) == self.base
    }

    /// The `i`-th address inside the block (wraps modulo block size).
    pub fn addr(&self, i: u64) -> Ipv4Addr {
        Ipv4Addr::from(self.base.wrapping_add((i % self.size()) as u32))
    }
}

impl fmt::Display for Netblock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Attribution for a netblock: who routes it and where it sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Routing AS.
    pub asn: Asn,
    /// Country of the block.
    pub country: CountryCode,
    /// Latency region.
    pub region: Region,
}

/// Longest-prefix-match geo/AS database.
///
/// Worldgen registers prefixes; host metadata defaults are filled from here
/// so individual hosts don't all need explicit attribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GeoDb {
    // Keyed by (prefix length, base) inside per-length maps for LPM.
    tables: BTreeMap<u8, BTreeMap<u32, BlockInfo>>,
}

impl GeoDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a prefix. Later registrations of the same prefix overwrite.
    pub fn insert(&mut self, block: Netblock, info: BlockInfo) {
        self.tables
            .entry(block.len)
            .or_default()
            .insert(block.base, info);
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<BlockInfo> {
        let raw = u32::from(addr);
        for (&len, table) in self.tables.iter().rev() {
            let base = if len == 0 {
                0
            } else {
                raw & (u32::MAX << (32 - len))
            };
            if let Some(info) = table.get(&base) {
                return Some(*info);
            }
        }
        None
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.tables.values().map(BTreeMap::len).sum()
    }

    /// True if no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Map a country code to its latency [`Region`].
///
/// Only the countries that appear in the study's datasets are listed;
/// unknown codes default to Europe (the modal region of the global
/// ProxyRack population).
pub fn region_of(country: CountryCode) -> Region {
    match country.as_str() {
        "US" | "CA" | "MX" => Region::NorthAmerica,
        "BR" | "AR" | "CL" | "CO" | "PE" | "VE" | "EC" => Region::SouthAmerica,
        "IE" | "GB" | "DE" | "FR" | "NL" | "RU" | "IT" | "ES" | "PL" | "SE" | "NO" | "FI"
        | "UA" | "RO" | "CZ" | "AT" | "CH" | "BE" | "PT" | "GR" | "HU" | "BG" | "DK" | "RS"
        | "TR" => Region::Europe,
        "ZA" | "NG" | "EG" | "KE" | "MA" | "IL" | "SA" | "AE" | "IR" | "IQ" => Region::Africa,
        "CN" | "JP" | "KR" | "IN" | "ID" | "VN" | "TH" | "MY" | "SG" | "PH" | "HK" | "TW"
        | "PK" | "BD" | "LA" | "KH" | "MM" | "NP" | "LK" | "KZ" => Region::Asia,
        "AU" | "NZ" | "FJ" => Region::Oceania,
        _ => Region::Europe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_normalises() {
        let cc = CountryCode::new("us");
        assert_eq!(cc.as_str(), "US");
        assert_eq!(cc, CountryCode::new("US"));
        assert_eq!("cn".parse::<CountryCode>().unwrap().as_str(), "CN");
        assert!("USA".parse::<CountryCode>().is_err());
    }

    #[test]
    fn netblock_masks_host_bits() {
        let b = Netblock::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(b.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(b.size(), 65536);
        assert!(b.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!b.contains(Ipv4Addr::new(10, 2, 0, 0)));
        assert_eq!(b.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn slash24_aggregation() {
        let b = Netblock::slash24(Ipv4Addr::new(203, 0, 113, 77));
        assert_eq!(b.network(), Ipv4Addr::new(203, 0, 113, 0));
        assert_eq!(b.size(), 256);
    }

    #[test]
    fn netblock_indexing_wraps() {
        let b = Netblock::new(Ipv4Addr::new(192, 0, 2, 0), 30);
        assert_eq!(b.addr(0), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(b.addr(3), Ipv4Addr::new(192, 0, 2, 3));
        assert_eq!(b.addr(4), Ipv4Addr::new(192, 0, 2, 0));
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let all = Netblock::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn geodb_longest_prefix_wins() {
        let mut db = GeoDb::new();
        let coarse = BlockInfo {
            asn: Asn(100),
            country: CountryCode::new("US"),
            region: Region::NorthAmerica,
        };
        let fine = BlockInfo {
            asn: Asn(200),
            country: CountryCode::new("BR"),
            region: Region::SouthAmerica,
        };
        db.insert(Netblock::new(Ipv4Addr::new(10, 0, 0, 0), 8), coarse);
        db.insert(Netblock::new(Ipv4Addr::new(10, 5, 0, 0), 16), fine);
        assert_eq!(db.lookup(Ipv4Addr::new(10, 5, 1, 1)).unwrap().asn, Asn(200));
        assert_eq!(db.lookup(Ipv4Addr::new(10, 6, 1, 1)).unwrap().asn, Asn(100));
        assert!(db.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn regions_cover_study_countries() {
        assert_eq!(region_of(CountryCode::new("ID")), Region::Asia);
        assert_eq!(region_of(CountryCode::new("IN")), Region::Asia);
        assert_eq!(region_of(CountryCode::new("BR")), Region::SouthAmerica);
        assert_eq!(region_of(CountryCode::new("IE")), Region::Europe);
        assert_eq!(region_of(CountryCode::new("AU")), Region::Oceania);
        // Unknown codes get the modal region, not a panic.
        assert_eq!(region_of(CountryCode::new("ZZ")), Region::Europe);
    }
}
