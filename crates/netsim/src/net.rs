//! The [`Network`]: host registry, path evaluation, TCP/UDP exchange with
//! virtual-time accounting.
//!
//! Internally a network is split in two, zmap-style:
//!
//! * [`DataPlane`] — the read-mostly half: host registry, service bindings,
//!   geo/AS attribution and the policy set. Shared across shard workers
//!   behind an `Arc`; mutation goes through copy-on-write
//!   ([`Arc::make_mut`]), so topology edits stay cheap for the common
//!   single-owner case and safe when forks exist.
//! * `ShardCtx` — the per-worker half: seeded RNG stream, virtual clock,
//!   event log, handler-depth guard and probe counters. Forked fresh per
//!   shard via [`Network::fork_shard`] and folded back with
//!   [`Network::absorb_shard`].
//!
//! Every public method still takes `&mut Network`, so single-shard callers
//! see exactly the old API; parallel sweeps fork one `Network` value per
//! worker and merge after join.

use crate::geo::{Asn, CountryCode, GeoDb, Region};
use crate::host::{HostMeta, PeerInfo};
use crate::latency::{Endpoint, LatencyModel};
use crate::policy::{PathDecision, PolicySet};
use crate::sched::{Fired, SchedEvent, SchedStats, Scheduler};
use crate::service::{DatagramService, Service, ServiceCtx, StreamHandler, MAX_HANDLER_DEPTH};
use crate::time::{SimDuration, SimInstant, SimTime};
use crate::trace::{EventKind, EventLog, NetEvent};
use doe_telemetry::{CounterId, HistogramId, Labels, Registry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Derive an independent RNG seed from a base seed and a salt (shard id,
/// permutation index, ...). SplitMix64 finalizer over the mixed words, so
/// adjacent salts yield statistically unrelated streams.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tunables for a simulated internet.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// How long clients wait before declaring a blackholed path dead.
    /// The paper's reachability test used 30 seconds.
    pub default_timeout: SimDuration,
    /// How long a ZMap-style SYN probe waits before marking "filtered".
    pub probe_timeout: SimDuration,
    /// The latency model.
    pub latency: LatencyModel,
    /// Event-log capacity; 0 disables tracing.
    pub trace_capacity: usize,
    /// Whether shards collect telemetry (`net.*` counters/histograms).
    /// Disabling makes every metric operation a no-op and derived
    /// [`ShardStats`] read zero; only benchmarks should turn this off.
    pub metrics: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            default_timeout: SimDuration::from_secs(30),
            probe_timeout: SimDuration::from_secs(1),
            latency: LatencyModel::default(),
            trace_capacity: 0,
            metrics: true,
        }
    }
}

/// Why a TCP connect failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectErrorKind {
    /// No SYN-ACK ever came back (blackhole, censorship drop, dead IP).
    Timeout,
    /// Active RST: filtering appliance or GFW-style reset.
    Reset,
    /// The host exists but nothing listens on the port.
    Refused,
    /// Handler recursion exceeded the internal depth limit (forwarding loop).
    DepthExceeded,
}

/// A failed TCP connect, with the virtual time it wasted and the policy
/// rule responsible (if one matched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectError {
    /// Failure class.
    pub kind: ConnectErrorKind,
    /// Time the attempt consumed.
    pub elapsed: SimDuration,
    /// Responsible policy rule, when attribution is known.
    pub rule: Option<String>,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connect failed: {:?} after {}", self.kind, self.elapsed)?;
        if let Some(rule) = &self.rule {
            write!(f, " (rule: {rule})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ConnectError {}

/// A successful UDP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpReply {
    /// Response payload.
    pub bytes: Vec<u8>,
    /// Time from send to receipt.
    pub elapsed: SimDuration,
}

/// A failed UDP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpError {
    /// No reply within the timeout (drop, loss, blackhole, or the service
    /// chose not to answer).
    Timeout {
        /// Time wasted waiting.
        elapsed: SimDuration,
        /// Responsible policy rule, when attribution is known.
        rule: Option<String>,
    },
    /// ICMP port-unreachable came back after one round trip.
    Unreachable {
        /// Time until the ICMP arrived.
        elapsed: SimDuration,
    },
    /// Handler recursion exceeded the limit.
    DepthExceeded,
}

impl UdpError {
    /// Virtual time the failed exchange consumed.
    pub fn elapsed(&self) -> SimDuration {
        match self {
            UdpError::Timeout { elapsed, .. } | UdpError::Unreachable { elapsed } => *elapsed,
            UdpError::DepthExceeded => SimDuration::ZERO,
        }
    }
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Timeout { elapsed, rule } => {
                write!(f, "udp timeout after {elapsed}")?;
                if let Some(rule) = rule {
                    write!(f, " (rule: {rule})")?;
                }
                Ok(())
            }
            UdpError::Unreachable { elapsed } => write!(f, "udp unreachable after {elapsed}"),
            UdpError::DepthExceeded => write!(f, "handler depth exceeded"),
        }
    }
}

impl std::error::Error for UdpError {}

/// Result of a SYN probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// SYN-ACK received.
    Open,
    /// RST received.
    Closed,
    /// Nothing came back.
    Filtered,
}

/// Per-shard probe accounting, folded across workers after a sharded sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// SYN probes sent.
    pub probes: u64,
    /// Probes answered with SYN-ACK.
    pub open: u64,
    /// Probes answered with RST.
    pub closed: u64,
    /// Probes that got nothing back.
    pub filtered: u64,
}

impl ShardStats {
    /// Fold another shard's counters into this one.
    pub fn absorb(&mut self, other: &ShardStats) {
        self.probes += other.probes;
        self.open += other.open;
        self.closed += other.closed;
        self.filtered += other.filtered;
    }
}

#[derive(Clone)]
struct HostEntry {
    meta: HostMeta,
    tcp: HashMap<u16, Arc<dyn Service>>,
    udp: HashMap<u16, Arc<dyn DatagramService>>,
}

/// A contiguous band of synthetic hosts sharing one TCP service binding
/// and one attribution.
///
/// Worldgen's junk port-853 population at paper scale is 2–3 million
/// hosts (§3.1); registering a [`HostEntry`] per host would cost a
/// `HashMap` node, a `HostMeta` and a service table each. A band stores
/// the whole range in a few words: membership is a binary search over
/// band intervals, taken only after the per-host map misses — an
/// individually registered host always shadows a band covering the same
/// address.
#[derive(Clone)]
pub struct HostBand {
    /// First address of the band.
    pub start: Ipv4Addr,
    /// Number of consecutive addresses covered.
    pub count: u32,
    /// Country attributed to every member.
    pub country: CountryCode,
    /// AS attributed to every member.
    pub asn: Asn,
    /// The single TCP port every member listens on; SYNs to any other
    /// port are answered with RST (closed), like a real host would.
    pub port: u16,
    /// Service answering on that port, shared across the band.
    pub service: Arc<dyn Service>,
}

impl HostBand {
    /// Last address covered, as an integer.
    fn end_u32(&self) -> u32 {
        u32::from(self.start) + (self.count - 1)
    }
}

/// The read-mostly half of the simulator: hosts, service bindings, geo/AS
/// attribution and path policies. `Send + Sync`; shard workers share one
/// instance behind an `Arc`.
#[derive(Clone)]
pub struct DataPlane {
    cfg: NetworkConfig,
    hosts: HashMap<Ipv4Addr, HostEntry>,
    /// Host bands sorted by start address; disjoint by construction.
    bands: Vec<HostBand>,
    geodb: GeoDb,
    policies: PolicySet,
}

impl DataPlane {
    /// The band covering `ip`, if any (hosts shadow bands — callers check
    /// `hosts` first).
    fn band_of(&self, ip: Ipv4Addr) -> Option<&HostBand> {
        if self.bands.is_empty() {
            return None;
        }
        let v = u32::from(ip);
        let k = self.bands.partition_point(|b| u32::from(b.start) <= v);
        let band = &self.bands[k.checked_sub(1)?];
        (v - u32::from(band.start) < band.count).then_some(band)
    }

    /// Country/AS/region attribution for any address: a registered host's
    /// metadata wins, then a covering host band, then the geo database,
    /// then a neutral default.
    pub fn attribution(&self, ip: Ipv4Addr) -> (CountryCode, Asn, Region) {
        if let Some(h) = self.hosts.get(&ip) {
            return (h.meta.country, h.meta.asn, h.meta.region);
        }
        if let Some(b) = self.band_of(ip) {
            return (b.country, b.asn, crate::geo::region_of(b.country));
        }
        if let Some(info) = self.geodb.lookup(ip) {
            return (info.country, info.asn, info.region);
        }
        let cc = CountryCode::new("US");
        (cc, Asn(0), crate::geo::region_of(cc))
    }

    fn endpoint_of(&self, ip: Ipv4Addr) -> Endpoint {
        if let Some(h) = self.hosts.get(&ip) {
            return h.meta.endpoint();
        }
        let (country, _asn, region) = self.attribution(ip);
        Endpoint {
            region,
            country,
            anycast: false,
        }
    }

    /// Evaluate path policies for a flow, with the simulator invariant that
    /// a diversion device's own traffic is never diverted back to itself
    /// (the device *is* the middlebox; it sits behind the diversion point).
    fn decide_path(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
        is_tcp: bool,
    ) -> (PathDecision, Option<String>) {
        let (country, asn, _region) = self.attribution(src);
        let (decision, rule) = self.policies.evaluate(src, country, asn, dst, port, is_tcp);
        match decision {
            PathDecision::DivertTo(actual) if actual == src => (PathDecision::Allow, None),
            other => (other, rule.map(str::to_string)),
        }
    }
}

/// Pre-registered handles for the hot-path `net.*` metrics: one vector
/// index per series, resolved once per shard so updates are plain
/// integer bumps (no lookup, no allocation, no atomics).
struct NetMetricIds {
    probe_sent: CounterId,
    probe_open: CounterId,
    probe_closed: CounterId,
    probe_filtered: CounterId,
    path_refused: CounterId,
    path_udp_unreachable: CounterId,
    path_retransmit: CounterId,
    path_depth_exceeded: CounterId,
    bytes_tx: CounterId,
    bytes_rx: CounterId,
    tcp_connect_us: HistogramId,
    tcp_exchange_us: HistogramId,
    udp_exchange_us: HistogramId,
    /// Fired-event counters by kind, indexed by
    /// [`SchedEvent::kind_index`]. Every machine fires the same events
    /// regardless of which shard hosts it, so the sums are shard-count
    /// invariant.
    sched_fired: [CounterId; SchedEvent::KIND_COUNT],
}

impl NetMetricIds {
    fn register(reg: &mut Registry) -> NetMetricIds {
        NetMetricIds {
            probe_sent: reg.counter("net.probe.sent", Labels::empty()),
            probe_open: reg.counter("net.probe.open", Labels::empty()),
            probe_closed: reg.counter("net.probe.closed", Labels::empty()),
            probe_filtered: reg.counter("net.probe.filtered", Labels::empty()),
            path_refused: reg.counter("net.path.refused", Labels::empty()),
            path_udp_unreachable: reg.counter("net.path.udp_unreachable", Labels::empty()),
            path_retransmit: reg.counter("net.path.retransmit", Labels::empty()),
            path_depth_exceeded: reg.counter("net.path.depth_exceeded", Labels::empty()),
            bytes_tx: reg.counter("net.bytes.tx", Labels::empty()),
            bytes_rx: reg.counter("net.bytes.rx", Labels::empty()),
            tcp_connect_us: reg.histogram("net.tcp.connect_us", Labels::empty()),
            tcp_exchange_us: reg.histogram("net.tcp.exchange_us", Labels::empty()),
            udp_exchange_us: reg.histogram("net.udp.exchange_us", Labels::empty()),
            sched_fired: SchedEvent::KIND_NAMES
                .map(|kind| reg.counter("sched.event.fired", Labels::one("kind", kind))),
        }
    }
}

fn rule_labels(rule: Option<&str>) -> Labels {
    Labels::one("rule", rule.unwrap_or("none"))
}

/// Per-worker session state: RNG stream, virtual clock, trace log,
/// handler-depth guard and the telemetry registry.
struct ShardCtx {
    id: u64,
    rng: SmallRng,
    now: SimTime,
    log: EventLog,
    handler_depth: u8,
    /// Virtual time charged to top-level operations on this shard (plus
    /// absorbed workers). Unlike `now`, this advances with every
    /// completed exchange, so stage runners can time spans without
    /// perturbing the clock measurement code observes.
    charged: SimDuration,
    metrics: Registry,
    /// Permanently-disabled registry handed out by [`ShardCtx::meter`]
    /// for nested (handler-internal) operations.
    void: Registry,
    /// This worker's discrete-event heap (see [`crate::sched`]).
    sched: Scheduler,
    ids: NetMetricIds,
    /// Per-shard counters folded in by [`Network::absorb_shard`], in
    /// absorption order — the data behind `repro --trace`'s breakdown.
    breakdown: Vec<(u64, ShardStats)>,
}

impl ShardCtx {
    fn fresh(id: u64, rng_seed: u64, now: SimTime, log: EventLog, metrics_on: bool) -> ShardCtx {
        let mut metrics = if metrics_on {
            Registry::enabled()
        } else {
            Registry::disabled()
        };
        let ids = NetMetricIds::register(&mut metrics);
        ShardCtx {
            id,
            rng: SmallRng::seed_from_u64(rng_seed),
            now,
            log,
            handler_depth: 0,
            charged: SimDuration::ZERO,
            metrics,
            void: Registry::disabled(),
            sched: Scheduler::new(),
            ids,
            breakdown: Vec::new(),
        }
    }

    /// The registry the current operation records into: the real one at
    /// top level, a disabled one inside service handlers. Handler-internal
    /// traffic (resolver cache fills, upstream fetches) depends on shard
    /// layout through shared caches and per-worker clocks, so recording it
    /// would break the snapshot's shard-count invariance — like
    /// [`Network::charge`], nested work is attributed to the outer
    /// exchange.
    fn meter(&mut self) -> &mut Registry {
        if self.handler_depth == 0 {
            &mut self.metrics
        } else {
            &mut self.void
        }
    }
}

/// The simulated internet. See the crate docs for the model.
pub struct Network {
    plane: Arc<DataPlane>,
    seed: u64,
    shard: ShardCtx,
}

// The whole point of the split: a Network value can move to a worker thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Network>();
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DataPlane>();
};

impl Network {
    /// Build a network from config and a seed. Identical seeds give
    /// identical behaviour.
    pub fn new(cfg: NetworkConfig, seed: u64) -> Self {
        let log = if cfg.trace_capacity > 0 {
            EventLog::with_capacity(cfg.trace_capacity)
        } else {
            EventLog::disabled()
        };
        let metrics_on = cfg.metrics;
        Network {
            plane: Arc::new(DataPlane {
                cfg,
                hosts: HashMap::new(),
                bands: Vec::new(),
                geodb: GeoDb::new(),
                policies: PolicySet::new(),
            }),
            seed,
            shard: ShardCtx::fresh(0, seed, SimTime::EPOCH, log, metrics_on),
        }
    }

    /// Fork a worker view for shard `id`: the data plane is shared, the
    /// session state is fresh with an RNG stream derived from the base seed
    /// and the shard id ([`mix_seed`]). The fork starts at the parent's
    /// virtual time with an empty trace log of the same capacity.
    pub fn fork_shard(&self, id: u64) -> Network {
        let log = if self.plane.cfg.trace_capacity > 0 {
            EventLog::with_capacity(self.plane.cfg.trace_capacity)
        } else {
            EventLog::disabled()
        };
        Network {
            plane: Arc::clone(&self.plane),
            seed: self.seed,
            shard: ShardCtx::fresh(
                id,
                mix_seed(self.seed, id),
                self.shard.now,
                log,
                self.plane.cfg.metrics,
            ),
        }
    }

    /// Fold a joined worker back into this network: its telemetry
    /// registry (counter/bucket addition, gauge max — associative and
    /// commutative, so the merged registry is shard-count invariant),
    /// charged time, trace events (in the worker's order) and clock
    /// high-water mark. Absorb workers in ascending shard order for
    /// deterministic logs.
    pub fn absorb_shard(&mut self, worker: Network) {
        let worker_stats = worker.shard_stats();
        if worker.shard.now > self.shard.now {
            self.shard.now = worker.shard.now;
        }
        self.shard.charged += worker.shard.charged;
        self.shard.metrics.merge(&worker.shard.metrics);
        self.shard.breakdown.extend(worker.shard.breakdown);
        self.shard.breakdown.push((worker.shard.id, worker_stats));
        self.shard.log.absorb(worker.shard.log);
    }

    /// Per-shard counters recorded at each [`Network::absorb_shard`], in
    /// absorption order: `(shard id, that worker's counters)`.
    pub fn shard_breakdown(&self) -> &[(u64, ShardStats)] {
        &self.shard.breakdown
    }

    /// The shared data plane (topology, attribution, policies).
    pub fn plane(&self) -> &DataPlane {
        &self.plane
    }

    /// Copy-on-write handle for topology mutation: cheap while this network
    /// is the sole owner, clones the plane if shard forks are alive.
    fn plane_mut(&mut self) -> &mut DataPlane {
        Arc::make_mut(&mut self.plane)
    }

    /// This worker's shard id (0 for the root network).
    pub fn shard_id(&self) -> u64 {
        self.shard.id
    }

    /// The seed this network (and all its forks) derive randomness from.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// Probe counters accumulated by this shard (plus any absorbed ones),
    /// derived from the telemetry registry's `net.probe.*` counters — the
    /// registry is the single source of truth. Reads zero when
    /// [`NetworkConfig::metrics`] is off.
    pub fn shard_stats(&self) -> ShardStats {
        let empty = Labels::empty();
        ShardStats {
            probes: self.shard.metrics.counter_value("net.probe.sent", &empty),
            open: self.shard.metrics.counter_value("net.probe.open", &empty),
            closed: self.shard.metrics.counter_value("net.probe.closed", &empty),
            filtered: self
                .shard
                .metrics
                .counter_value("net.probe.filtered", &empty),
        }
    }

    /// This shard's telemetry registry (merged with absorbed workers).
    pub fn metrics(&self) -> &Registry {
        &self.shard.metrics
    }

    /// Mutable telemetry registry — stage runners register their
    /// `stage.*` series here.
    pub fn metrics_mut(&mut self) -> &mut Registry {
        &mut self.shard.metrics
    }

    /// Total virtual time charged to completed top-level operations on
    /// this shard (plus absorbed workers). Monotone within a shard, and
    /// the sum across shards is shard-count invariant — the reading
    /// [`doe_telemetry::Span`] timers are fed with.
    pub fn charged(&self) -> SimDuration {
        self.shard.charged
    }

    /// The event trace (enable via [`NetworkConfig::trace_capacity`]).
    pub fn log(&self) -> &EventLog {
        &self.shard.log
    }

    /// Mutable event trace (tests clear it between phases).
    pub fn log_mut(&mut self) -> &mut EventLog {
        &mut self.shard.log
    }

    /// Replace the RNG stream. Sharded sweeps reseed per work item from
    /// [`mix_seed`]`(base_seed, global_index)` so results are identical for
    /// every shard count.
    pub fn reseed(&mut self, seed: u64) {
        self.shard.rng = SmallRng::seed_from_u64(seed);
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetworkConfig {
        &self.plane.cfg
    }

    /// Mutable latency model (worldgen tunes country profiles).
    pub fn latency_mut(&mut self) -> &mut LatencyModel {
        &mut self.plane_mut().cfg.latency
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shard.now
    }

    /// Advance the virtual clock (e.g. between scan epochs).
    pub fn advance(&mut self, d: SimDuration) {
        self.shard.now += d;
    }

    /// Schedule a typed event for `machine` (a dense per-shard index)
    /// `delay` after the current virtual time. Returns the sequence
    /// number that breaks ties at equal instants.
    pub fn schedule_after(&mut self, delay: SimDuration, machine: u64, event: SchedEvent) -> u64 {
        let at = self.shard.now + delay;
        self.shard.sched.schedule(at, machine, event)
    }

    /// Schedule a typed event at an absolute instant, clamped to the
    /// current virtual time (events never fire in the past).
    pub fn schedule_at(&mut self, at: SimInstant, machine: u64, event: SchedEvent) -> u64 {
        let at = at.max(self.shard.now);
        self.shard.sched.schedule(at, machine, event)
    }

    /// Pop the next scheduled event in `(instant, seq)` order, advancing
    /// the virtual clock to its instant and counting it in the
    /// `sched.event.fired` telemetry series. `None` when the heap is
    /// drained.
    pub fn next_event(&mut self) -> Option<Fired> {
        let fired = self.shard.sched.pop()?;
        if fired.at > self.shard.now {
            self.shard.now = fired.at;
        }
        let id = self.shard.ids.sched_fired[fired.event.kind_index()];
        self.shard.meter().add(id, 1);
        Some(fired)
    }

    /// Number of events pending on this shard's heap.
    pub fn pending_events(&self) -> usize {
        self.shard.sched.len()
    }

    /// This shard's scheduler accounting (peak depth is per-shard and
    /// layout-dependent; `machine_peak` is shard-invariant).
    pub fn sched_stats(&self) -> SchedStats {
        self.shard.sched.load_stats()
    }

    /// Record the shard-invariant `sched.queue.depth` gauge: the peak
    /// number of simultaneously-pending events of any single machine
    /// (gauges merge by max, so the merged value is the fleet-wide peak
    /// for every shard count). [`crate::sched::run_machines`] calls this
    /// when the heap drains.
    pub fn record_sched_gauge(&mut self) {
        let peak = self.shard.sched.load_stats().machine_peak;
        if peak > 0 {
            self.shard
                .meter()
                .gauge_max("sched.queue.depth", Labels::empty(), peak as u64);
        }
    }

    /// Swap the shard RNG with a machine-owned stream. Event machines
    /// wrap every network operation in a swap pair so each client draws
    /// from its own `mix_seed(salt, client_index)` stream no matter how
    /// machines interleave on the heap — the bit-identity contract from
    /// the per-client loops, preserved under event-driven execution.
    pub fn swap_rng(&mut self, rng: &mut SmallRng) {
        std::mem::swap(&mut self.shard.rng, rng);
    }

    /// The geo database.
    pub fn geodb(&self) -> &GeoDb {
        &self.plane.geodb
    }

    /// Mutable geo database.
    pub fn geodb_mut(&mut self) -> &mut GeoDb {
        &mut self.plane_mut().geodb
    }

    /// The installed path policies.
    pub fn policies(&self) -> &PolicySet {
        &self.plane.policies
    }

    /// Mutable path policies.
    pub fn policies_mut(&mut self) -> &mut PolicySet {
        &mut self.plane_mut().policies
    }

    /// This shard's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.shard.rng
    }

    /// Register a host. Replaces any prior host at the same address.
    pub fn add_host(&mut self, meta: HostMeta) {
        self.plane_mut().hosts.insert(
            meta.ip,
            HostEntry {
                meta,
                tcp: HashMap::new(),
                udp: HashMap::new(),
            },
        );
    }

    /// Remove a host entirely (e.g. a resolver decommissioned between scan
    /// epochs). Returns true if it existed.
    pub fn remove_host(&mut self, ip: Ipv4Addr) -> bool {
        self.plane_mut().hosts.remove(&ip).is_some()
    }

    /// Register a [`HostBand`]: `count` consecutive addresses from
    /// `start`, all listening on one TCP port with one shared service.
    /// Individually added hosts shadow band members; bands must be
    /// disjoint from each other.
    ///
    /// # Panics
    /// Panics on an empty band, a band wrapping the end of the address
    /// space, or one overlapping an existing band.
    pub fn add_host_band(&mut self, band: HostBand) {
        assert!(band.count > 0, "empty host band");
        let start = u32::from(band.start);
        let end = start
            .checked_add(band.count - 1)
            .expect("host band wraps the address space");
        let plane = self.plane_mut();
        for existing in &plane.bands {
            let (es, ee) = (u32::from(existing.start), existing.end_u32());
            assert!(
                end < es || start > ee,
                "host band {start:#x}+{} overlaps band at {es:#x}",
                band.count
            );
        }
        plane.bands.push(band);
        plane.bands.sort_by_key(|b| u32::from(b.start));
    }

    /// Registered host bands, sorted by start address.
    pub fn bands(&self) -> &[HostBand] {
        &self.plane.bands
    }

    /// Total addresses covered by host bands.
    pub fn band_host_count(&self) -> u64 {
        self.plane.bands.iter().map(|b| b.count as u64).sum()
    }

    /// Whether a host is registered at `ip`.
    pub fn has_host(&self, ip: Ipv4Addr) -> bool {
        self.plane.hosts.contains_key(&ip)
    }

    /// Metadata of a registered host.
    pub fn host_meta(&self, ip: Ipv4Addr) -> Option<&HostMeta> {
        self.plane.hosts.get(&ip).map(|h| &h.meta)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.plane.hosts.len()
    }

    /// All registered host addresses (unordered).
    pub fn host_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.plane.hosts.keys().copied()
    }

    /// TCP ports a host listens on (empty if unknown host).
    pub fn open_tcp_ports(&self, ip: Ipv4Addr) -> Vec<u16> {
        let mut ports: Vec<u16> = self
            .plane
            .hosts
            .get(&ip)
            .map(|h| h.tcp.keys().copied().collect())
            .unwrap_or_default();
        ports.sort_unstable();
        ports
    }

    /// Bind a TCP service to `(ip, port)`. The host must exist.
    ///
    /// # Panics
    /// Panics if the host was never added — binding to a ghost is a
    /// worldgen bug.
    pub fn bind_tcp(&mut self, ip: Ipv4Addr, port: u16, svc: Arc<dyn Service>) {
        self.plane_mut()
            .hosts
            .get_mut(&ip)
            .unwrap_or_else(|| panic!("bind_tcp: no host {ip}"))
            .tcp
            .insert(port, svc);
    }

    /// Unbind a TCP service; returns true if something was bound.
    pub fn unbind_tcp(&mut self, ip: Ipv4Addr, port: u16) -> bool {
        self.plane_mut()
            .hosts
            .get_mut(&ip)
            .map(|h| h.tcp.remove(&port).is_some())
            .unwrap_or(false)
    }

    /// Bind a UDP service to `(ip, port)`. The host must exist.
    ///
    /// # Panics
    /// Panics if the host was never added.
    pub fn bind_udp(&mut self, ip: Ipv4Addr, port: u16, svc: Arc<dyn DatagramService>) {
        self.plane_mut()
            .hosts
            .get_mut(&ip)
            .unwrap_or_else(|| panic!("bind_udp: no host {ip}"))
            .udp
            .insert(port, svc);
    }

    /// Country/AS/region attribution for any address: a registered host's
    /// metadata wins, then the geo database, then a neutral default.
    pub fn attribution(&self, ip: Ipv4Addr) -> (CountryCode, Asn, Region) {
        self.plane.attribution(ip)
    }

    fn sample_rtt(&mut self, src: Ipv4Addr, dst: Ipv4Addr, port: u16) -> SimDuration {
        let s = self.plane.endpoint_of(src);
        let d = self.plane.endpoint_of(dst);
        self.plane
            .cfg
            .latency
            .sample_rtt_port(s, d, Some(port), &mut self.shard.rng)
    }

    fn loss_roll(&mut self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let s = self.plane.endpoint_of(src);
        let d = self.plane.endpoint_of(dst);
        let p = self.plane.cfg.latency.loss_probability(s, d);
        self.shard.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Accumulate virtual time into the charged-time counter, but only
    /// for top-level operations: time spent inside a service handler
    /// already flows into the outer exchange via `ServiceCtx::extra`, so
    /// charging nested calls would double-count it.
    fn charge(&mut self, d: SimDuration) {
        if self.shard.handler_depth == 0 {
            self.shard.charged += d;
        }
    }

    /// Open a TCP connection with the default timeout.
    pub fn connect(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
    ) -> Result<Conn, ConnectError> {
        let timeout = self.plane.cfg.default_timeout;
        self.connect_with_timeout(src, dst, port, timeout)
    }

    /// Open a TCP connection, waiting at most `timeout` for establishment.
    ///
    /// On success the returned [`Conn`] has already been charged one round
    /// trip (SYN / SYN-ACK; the final ACK piggybacks on the first data
    /// flight).
    pub fn connect_with_timeout(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
        timeout: SimDuration,
    ) -> Result<Conn, ConnectError> {
        if self.shard.handler_depth >= MAX_HANDLER_DEPTH {
            let id = self.shard.ids.path_depth_exceeded;
            self.shard.meter().inc(id);
            return Err(ConnectError {
                kind: ConnectErrorKind::DepthExceeded,
                elapsed: SimDuration::ZERO,
                rule: None,
            });
        }
        let (decision, rule) = self.plane.decide_path(src, dst, port, true);
        let (effective, diverted_rule) = match decision {
            PathDecision::Allow => (dst, None),
            PathDecision::Blackhole => {
                self.shard
                    .meter()
                    .count("net.path.timeout", rule_labels(rule.as_deref()), 1);
                self.charge(timeout);
                self.shard.log.record(NetEvent {
                    src,
                    dst,
                    port,
                    elapsed: timeout,
                    kind: EventKind::Timeout { rule: rule.clone() },
                });
                return Err(ConnectError {
                    kind: ConnectErrorKind::Timeout,
                    elapsed: timeout,
                    rule,
                });
            }
            PathDecision::Reset => {
                let rtt = self.sample_rtt(src, dst, port);
                self.shard
                    .meter()
                    .count("net.path.reset", rule_labels(rule.as_deref()), 1);
                self.charge(rtt);
                self.shard.log.record(NetEvent {
                    src,
                    dst,
                    port,
                    elapsed: rtt,
                    kind: EventKind::TcpReset { rule: rule.clone() },
                });
                return Err(ConnectError {
                    kind: ConnectErrorKind::Reset,
                    elapsed: rtt,
                    rule,
                });
            }
            PathDecision::DivertTo(actual) => {
                self.shard.log.record(NetEvent {
                    src,
                    dst,
                    port,
                    elapsed: SimDuration::ZERO,
                    kind: EventKind::Diverted {
                        actual,
                        rule: rule.clone().unwrap_or_default(),
                    },
                });
                (actual, rule)
            }
        };

        let svc = match self.plane.hosts.get(&effective) {
            None => match self
                .plane
                .band_of(effective)
                .map(|b| (b.port, Arc::clone(&b.service)))
            {
                // A band member accepts on its one bound port…
                Some((band_port, svc)) if band_port == port => svc,
                // …answers any other port with RST…
                Some(_) => {
                    let rtt = self.sample_rtt(src, effective, port);
                    let id = self.shard.ids.path_refused;
                    self.shard.meter().inc(id);
                    self.charge(rtt);
                    self.shard.log.record(NetEvent {
                        src,
                        dst,
                        port,
                        elapsed: rtt,
                        kind: EventKind::TcpReset { rule: None },
                    });
                    return Err(ConnectError {
                        kind: ConnectErrorKind::Refused,
                        elapsed: rtt,
                        rule: diverted_rule,
                    });
                }
                // …and a genuinely unrouted address swallows the SYNs.
                None => {
                    self.shard
                        .meter()
                        .count("net.path.timeout", rule_labels(None), 1);
                    self.charge(timeout);
                    self.shard.log.record(NetEvent {
                        src,
                        dst,
                        port,
                        elapsed: timeout,
                        kind: EventKind::Timeout { rule: None },
                    });
                    return Err(ConnectError {
                        kind: ConnectErrorKind::Timeout,
                        elapsed: timeout,
                        rule: diverted_rule,
                    });
                }
            },
            Some(entry) => match entry.tcp.get(&port) {
                None => {
                    let rtt = self.sample_rtt(src, effective, port);
                    let id = self.shard.ids.path_refused;
                    self.shard.meter().inc(id);
                    self.charge(rtt);
                    self.shard.log.record(NetEvent {
                        src,
                        dst,
                        port,
                        elapsed: rtt,
                        kind: EventKind::TcpReset { rule: None },
                    });
                    return Err(ConnectError {
                        kind: ConnectErrorKind::Refused,
                        elapsed: rtt,
                        rule: diverted_rule,
                    });
                }
                Some(svc) => Arc::clone(svc),
            },
        };

        let peer = PeerInfo {
            src,
            original_dst: dst,
            original_port: port,
            diverted: effective != dst,
        };
        let handler = svc.open_stream(peer);
        let mut rtt = self.sample_rtt(src, effective, port);
        if self.loss_roll(src, effective) {
            // Lost SYN: one retransmission.
            rtt += self.sample_rtt(src, effective, port);
            let id = self.shard.ids.path_retransmit;
            self.shard.meter().inc(id);
        }
        let id = self.shard.ids.tcp_connect_us;
        self.shard.meter().observe(id, rtt.as_micros());
        self.charge(rtt);
        self.shard.log.record(NetEvent {
            src,
            dst,
            port,
            elapsed: rtt,
            kind: EventKind::TcpConnect,
        });
        Ok(Conn {
            src,
            effective_dst: effective,
            original_dst: dst,
            port,
            diverted_rule,
            handler,
            elapsed: rtt,
            tx_bytes: 0,
            rx_bytes: 0,
            round_trips: 1,
        })
    }

    /// One UDP request/response exchange.
    pub fn udp_query(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
        data: &[u8],
        timeout: Option<SimDuration>,
    ) -> Result<UdpReply, UdpError> {
        if self.shard.handler_depth >= MAX_HANDLER_DEPTH {
            let id = self.shard.ids.path_depth_exceeded;
            self.shard.meter().inc(id);
            return Err(UdpError::DepthExceeded);
        }
        let timeout = timeout.unwrap_or(self.plane.cfg.default_timeout);
        let (decision, rule) = self.plane.decide_path(src, dst, port, false);
        let effective = match decision {
            PathDecision::Allow => dst,
            PathDecision::Blackhole | PathDecision::Reset => {
                // UDP has no RST; both read as silence.
                self.shard
                    .meter()
                    .count("net.path.udp_drop", rule_labels(rule.as_deref()), 1);
                self.charge(timeout);
                self.shard.log.record(NetEvent {
                    src,
                    dst,
                    port,
                    elapsed: timeout,
                    kind: EventKind::UdpDrop { rule: rule.clone() },
                });
                return Err(UdpError::Timeout {
                    elapsed: timeout,
                    rule,
                });
            }
            PathDecision::DivertTo(actual) => actual,
        };

        if self.loss_roll(src, effective) {
            self.shard
                .meter()
                .count("net.path.udp_drop", rule_labels(Some("loss")), 1);
            self.charge(timeout);
            self.shard.log.record(NetEvent {
                src,
                dst,
                port,
                elapsed: timeout,
                kind: EventKind::UdpDrop { rule: None },
            });
            return Err(UdpError::Timeout {
                elapsed: timeout,
                rule: None,
            });
        }

        let svc = match self.plane.hosts.get(&effective) {
            None => {
                self.shard
                    .meter()
                    .count("net.path.udp_drop", rule_labels(rule.as_deref()), 1);
                self.charge(timeout);
                return Err(UdpError::Timeout {
                    elapsed: timeout,
                    rule,
                });
            }
            Some(entry) => match entry.udp.get(&port) {
                None => {
                    let rtt = self.sample_rtt(src, effective, port);
                    let id = self.shard.ids.path_udp_unreachable;
                    self.shard.meter().inc(id);
                    self.charge(rtt);
                    return Err(UdpError::Unreachable { elapsed: rtt });
                }
                Some(svc) => Arc::clone(svc),
            },
        };

        let peer = PeerInfo {
            src,
            original_dst: dst,
            original_port: port,
            diverted: effective != dst,
        };
        let rtt = self.sample_rtt(src, effective, port);
        self.shard.handler_depth += 1;
        let mut ctx = ServiceCtx::new(self, effective, 0);
        let reply = svc.on_datagram(&mut ctx, peer, data);
        let extra = ctx.extra();
        self.shard.handler_depth -= 1;
        match reply {
            Some(bytes) => {
                let total = rtt
                    + self
                        .plane
                        .cfg
                        .latency
                        .transmission(data.len() + bytes.len())
                    + extra;
                let ids = (
                    self.shard.ids.udp_exchange_us,
                    self.shard.ids.bytes_tx,
                    self.shard.ids.bytes_rx,
                );
                self.shard.meter().observe(ids.0, total.as_micros());
                self.shard.meter().add(ids.1, data.len() as u64);
                self.shard.meter().add(ids.2, bytes.len() as u64);
                self.charge(total);
                self.shard.log.record(NetEvent {
                    src,
                    dst,
                    port,
                    elapsed: total,
                    kind: EventKind::UdpExchange {
                        tx: data.len(),
                        rx: bytes.len(),
                    },
                });
                Ok(UdpReply {
                    bytes,
                    elapsed: total,
                })
            }
            None => {
                self.shard
                    .meter()
                    .count("net.path.udp_drop", rule_labels(Some("no_answer")), 1);
                self.charge(timeout);
                Err(UdpError::Timeout {
                    elapsed: timeout,
                    rule: None,
                })
            }
        }
    }

    /// ZMap-style SYN probe: open / closed / filtered plus time cost.
    ///
    /// Every probe bumps this shard's [`ShardStats`] and (when tracing is
    /// on) records a [`EventKind::SynProbe`] event.
    pub fn syn_probe(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        port: u16,
    ) -> (ProbeOutcome, SimDuration) {
        let (decision, _rule) = self.plane.decide_path(src, dst, port, true);
        let (outcome, elapsed) = (|| {
            let effective = match decision {
                PathDecision::Allow => dst,
                PathDecision::Blackhole => {
                    return (ProbeOutcome::Filtered, self.plane.cfg.probe_timeout)
                }
                PathDecision::Reset => {
                    let rtt = self.sample_rtt(src, dst, port);
                    return (ProbeOutcome::Closed, rtt);
                }
                PathDecision::DivertTo(actual) => actual,
            };
            match self.plane.hosts.get(&effective) {
                None => match self.plane.band_of(effective).map(|b| b.port) {
                    None => (ProbeOutcome::Filtered, self.plane.cfg.probe_timeout),
                    Some(band_port) => {
                        let open = band_port == port;
                        let rtt = self.sample_rtt(src, effective, port);
                        if open {
                            (ProbeOutcome::Open, rtt)
                        } else {
                            (ProbeOutcome::Closed, rtt)
                        }
                    }
                },
                Some(entry) => {
                    let open = entry.tcp.contains_key(&port);
                    let rtt = self.sample_rtt(src, effective, port);
                    if open {
                        (ProbeOutcome::Open, rtt)
                    } else {
                        (ProbeOutcome::Closed, rtt)
                    }
                }
            }
        })();
        let sent_id = self.shard.ids.probe_sent;
        self.shard.meter().inc(sent_id);
        let outcome_id = match outcome {
            ProbeOutcome::Open => self.shard.ids.probe_open,
            ProbeOutcome::Closed => self.shard.ids.probe_closed,
            ProbeOutcome::Filtered => self.shard.ids.probe_filtered,
        };
        self.shard.meter().inc(outcome_id);
        self.charge(elapsed);
        self.shard.log.record(NetEvent {
            src,
            dst,
            port,
            elapsed,
            kind: EventKind::SynProbe { outcome },
        });
        (outcome, elapsed)
    }

    /// Internal: run one request/response flight on an established
    /// connection. Used by [`Conn::request`].
    fn exchange(
        &mut self,
        conn_src: Ipv4Addr,
        conn_dst: Ipv4Addr,
        port: u16,
        handler: &mut Box<dyn StreamHandler>,
        data: &[u8],
    ) -> (Vec<u8>, SimDuration) {
        let mut rtt = self.sample_rtt(conn_src, conn_dst, port);
        if self.loss_roll(conn_src, conn_dst) {
            // One retransmission round.
            rtt += self.sample_rtt(conn_src, conn_dst, port);
            let id = self.shard.ids.path_retransmit;
            self.shard.meter().inc(id);
        }
        self.shard.handler_depth += 1;
        let mut ctx = ServiceCtx::new(self, conn_dst, 0);
        let resp = handler.on_bytes(&mut ctx, data);
        let extra = ctx.extra();
        self.shard.handler_depth -= 1;
        let total = rtt + self.plane.cfg.latency.transmission(data.len() + resp.len()) + extra;
        let ids = (
            self.shard.ids.tcp_exchange_us,
            self.shard.ids.bytes_tx,
            self.shard.ids.bytes_rx,
        );
        self.shard.meter().observe(ids.0, total.as_micros());
        self.shard.meter().add(ids.1, data.len() as u64);
        self.shard.meter().add(ids.2, resp.len() as u64);
        self.charge(total);
        (resp, total)
    }

    fn depth_exceeded(&self) -> bool {
        self.shard.handler_depth >= MAX_HANDLER_DEPTH
    }
}

/// An established TCP connection, owned by the client side.
///
/// The connection accumulates virtual time in `elapsed`; callers measuring
/// per-query latency use [`Conn::take_elapsed`] to read-and-reset between
/// queries (this is how connection-reuse latency is measured, §4.3).
pub struct Conn {
    src: Ipv4Addr,
    effective_dst: Ipv4Addr,
    original_dst: Ipv4Addr,
    port: u16,
    diverted_rule: Option<String>,
    handler: Box<dyn StreamHandler>,
    elapsed: SimDuration,
    tx_bytes: usize,
    rx_bytes: usize,
    round_trips: u32,
}

impl fmt::Debug for Conn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Conn")
            .field("src", &self.src)
            .field("dst", &self.original_dst)
            .field("port", &self.port)
            .field("effective_dst", &self.effective_dst)
            .field("elapsed", &self.elapsed)
            .field("round_trips", &self.round_trips)
            .finish_non_exhaustive()
    }
}

impl Conn {
    /// Client address.
    pub fn src(&self) -> Ipv4Addr {
        self.src
    }

    /// The destination the client dialled.
    pub fn original_dst(&self) -> Ipv4Addr {
        self.original_dst
    }

    /// Where the connection actually terminated (differs under diversion).
    ///
    /// Measurement code must not peek at this to decide outcomes — the real
    /// client can't — but tests and forensics use it for ground truth.
    pub fn effective_dst(&self) -> Ipv4Addr {
        self.effective_dst
    }

    /// Destination port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Whether a policy rule diverted this connection, and which.
    pub fn diverted_rule(&self) -> Option<&str> {
        self.diverted_rule.as_deref()
    }

    /// Total virtual time charged so far.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Read and reset the elapsed clock.
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.elapsed)
    }

    /// Charge additional client-side time to this connection's clock —
    /// used by higher layers for CPU-bound work (TLS key exchange, record
    /// sealing) that the wire model doesn't know about.
    pub fn charge(&mut self, d: SimDuration) {
        self.elapsed += d;
    }

    /// Bytes sent by the client.
    pub fn tx_bytes(&self) -> usize {
        self.tx_bytes
    }

    /// Bytes received by the client.
    pub fn rx_bytes(&self) -> usize {
        self.rx_bytes
    }

    /// Round trips charged (including the handshake).
    pub fn round_trips(&self) -> u32 {
        self.round_trips
    }

    /// Send one flight of bytes, returning the server's response flight.
    ///
    /// Each call charges one round trip plus transmission time plus any
    /// upstream time the server's handler spent.
    pub fn request(&mut self, net: &mut Network, data: &[u8]) -> Result<Vec<u8>, ConnectError> {
        if net.depth_exceeded() {
            return Err(ConnectError {
                kind: ConnectErrorKind::DepthExceeded,
                elapsed: SimDuration::ZERO,
                rule: None,
            });
        }
        let (resp, dt) = net.exchange(
            self.src,
            self.effective_dst,
            self.port,
            &mut self.handler,
            data,
        );
        self.elapsed += dt;
        self.tx_bytes += data.len();
        self.rx_bytes += resp.len();
        self.round_trips += 1;
        net.shard.log.record(NetEvent {
            src: self.src,
            dst: self.original_dst,
            port: self.port,
            elapsed: dt,
            kind: EventKind::Exchange {
                tx: data.len(),
                rx: resp.len(),
            },
        });
        Ok(resp)
    }

    /// Close the connection (notifies the handler).
    pub fn close(self, net: &mut Network) {
        let mut handler = self.handler;
        let mut ctx = ServiceCtx::new(net, self.effective_dst, 0);
        handler.on_close(&mut ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DstMatch, PolicyRule, PortMatch, SrcMatch};
    use crate::service::{FnDatagramService, FnStreamService};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn echo_net(seed: u64) -> (Network, Ipv4Addr, Ipv4Addr) {
        let mut net = Network::new(
            NetworkConfig {
                trace_capacity: 64,
                ..NetworkConfig::default()
            },
            seed,
        );
        let server = ip("192.0.2.1");
        let client = ip("198.51.100.1");
        net.add_host(HostMeta::new(server).country("US").asn(64500).label("echo"));
        net.add_host(HostMeta::new(client).country("DE").asn(64501));
        net.bind_tcp(
            server,
            7,
            Arc::new(FnStreamService::new(
                |_ctx, _peer, data: &[u8]| data.to_vec(),
                "echo",
            )),
        );
        net.bind_udp(
            server,
            7,
            Arc::new(FnDatagramService::new(|_ctx, _peer, data| {
                Some(data.to_vec())
            })),
        );
        (net, client, server)
    }

    #[test]
    fn tcp_echo_round_trip_charges_time() {
        let (mut net, client, server) = echo_net(1);
        let mut conn = net.connect(client, server, 7).unwrap();
        let after_handshake = conn.elapsed();
        assert!(after_handshake > SimDuration::ZERO, "handshake costs a RTT");
        let resp = conn.request(&mut net, b"hello").unwrap();
        assert_eq!(resp, b"hello");
        assert!(conn.elapsed() > after_handshake);
        assert_eq!(conn.round_trips(), 2);
        assert_eq!(conn.tx_bytes(), 5);
        conn.close(&mut net);
    }

    #[test]
    fn closed_port_refused_after_one_rtt() {
        let (mut net, client, server) = echo_net(2);
        let err = net.connect(client, server, 9999).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Refused);
        assert!(err.elapsed < SimDuration::from_secs(1));
    }

    #[test]
    fn unrouted_address_times_out() {
        let (mut net, client, _server) = echo_net(3);
        let err = net.connect(client, ip("203.0.113.99"), 7).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Timeout);
        assert_eq!(err.elapsed, net.config().default_timeout);
    }

    #[test]
    fn blackhole_policy_times_out_with_rule() {
        let (mut net, client, server) = echo_net(4);
        net.policies_mut()
            .push(PolicyRule::new("censor", PathDecision::Blackhole).to_dst(DstMatch::Ip(server)));
        let err = net.connect(client, server, 7).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Timeout);
        assert_eq!(err.rule.as_deref(), Some("censor"));
    }

    #[test]
    fn reset_policy_fails_fast() {
        let (mut net, client, server) = echo_net(5);
        net.policies_mut().push(
            PolicyRule::new("filter-53", PathDecision::Reset)
                .on_port(PortMatch::One(7))
                .from_src(SrcMatch::Country(CountryCode::new("DE"))),
        );
        let err = net.connect(client, server, 7).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Reset);
        assert!(err.elapsed < SimDuration::from_secs(1));
    }

    #[test]
    fn divert_policy_reaches_other_host() {
        let (mut net, client, server) = echo_net(6);
        let squatter = ip("10.255.0.1");
        net.add_host(HostMeta::new(squatter).label("modem"));
        net.bind_tcp(
            squatter,
            7,
            Arc::new(FnStreamService::new(
                |_ctx, peer: PeerInfo, _data: &[u8]| {
                    assert!(peer.diverted);
                    b"modem says hi".to_vec()
                },
                "squat",
            )),
        );
        net.policies_mut().push(
            PolicyRule::new("squat", PathDecision::DivertTo(squatter)).to_dst(DstMatch::Ip(server)),
        );
        let mut conn = net.connect(client, server, 7).unwrap();
        assert_eq!(conn.original_dst(), server);
        assert_eq!(conn.effective_dst(), squatter);
        assert_eq!(conn.diverted_rule(), Some("squat"));
        let resp = conn.request(&mut net, b"x").unwrap();
        assert_eq!(resp, b"modem says hi");
    }

    #[test]
    fn udp_echo_and_unreachable() {
        let (mut net, client, server) = echo_net(7);
        let reply = net.udp_query(client, server, 7, b"ping", None).unwrap();
        assert_eq!(reply.bytes, b"ping");
        assert!(reply.elapsed > SimDuration::ZERO);
        let err = net
            .udp_query(client, server, 9999, b"ping", None)
            .unwrap_err();
        assert!(matches!(err, UdpError::Unreachable { .. }));
    }

    #[test]
    fn syn_probe_classifies() {
        let (mut net, client, server) = echo_net(8);
        let (open, _) = net.syn_probe(client, server, 7);
        assert_eq!(open, ProbeOutcome::Open);
        let (closed, _) = net.syn_probe(client, server, 80);
        assert_eq!(closed, ProbeOutcome::Closed);
        let (filtered, dt) = net.syn_probe(client, ip("203.0.113.50"), 7);
        assert_eq!(filtered, ProbeOutcome::Filtered);
        assert_eq!(dt, net.config().probe_timeout);
    }

    #[test]
    fn syn_probe_counts_and_traces() {
        let (mut net, client, server) = echo_net(16);
        net.syn_probe(client, server, 7);
        net.syn_probe(client, server, 80);
        net.syn_probe(client, ip("203.0.113.50"), 7);
        let stats = net.shard_stats();
        assert_eq!(
            stats,
            ShardStats {
                probes: 3,
                open: 1,
                closed: 1,
                filtered: 1,
            }
        );
        let probes = net
            .log()
            .events()
            .filter(|e| matches!(e.kind, EventKind::SynProbe { .. }))
            .count();
        assert_eq!(probes, 3);
    }

    #[test]
    fn take_elapsed_resets_clock() {
        let (mut net, client, server) = echo_net(9);
        let mut conn = net.connect(client, server, 7).unwrap();
        let handshake = conn.take_elapsed();
        assert!(handshake > SimDuration::ZERO);
        assert_eq!(conn.elapsed(), SimDuration::ZERO);
        conn.request(&mut net, b"q").unwrap();
        let query_time = conn.take_elapsed();
        assert!(query_time > SimDuration::ZERO);
        assert!(query_time < handshake * 10);
    }

    #[test]
    fn determinism_same_seed_same_latencies() {
        let run = |seed| {
            let (mut net, client, server) = echo_net(seed);
            let mut conn = net.connect(client, server, 7).unwrap();
            conn.request(&mut net, b"abc").unwrap();
            conn.elapsed()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ");
    }

    #[test]
    fn handler_can_call_upstream_and_time_propagates() {
        let (mut net, client, server) = echo_net(10);
        // A proxy host that forwards requests to the echo server over UDP.
        let proxy = ip("192.0.2.200");
        net.add_host(HostMeta::new(proxy).country("NL").asn(64502).label("proxy"));
        let upstream = server;
        net.bind_tcp(
            proxy,
            80,
            Arc::new(FnStreamService::new(
                move |ctx: &mut ServiceCtx<'_>, _peer, data: &[u8]| {
                    let local = ctx.local_addr();
                    match ctx.network().udp_query(local, upstream, 7, data, None) {
                        Ok(reply) => {
                            ctx.charge(reply.elapsed);
                            reply.bytes
                        }
                        Err(e) => {
                            ctx.charge(e.elapsed());
                            b"upstream failed".to_vec()
                        }
                    }
                },
                "proxy",
            )),
        );
        // Direct query to server vs. via proxy: the proxied path must cost
        // strictly more (it embeds the proxy→server RTT).
        let direct = net.udp_query(client, server, 7, b"payload", None).unwrap();
        let mut conn = net.connect(client, proxy, 80).unwrap();
        conn.take_elapsed(); // discard handshake
        let resp = conn.request(&mut net, b"payload").unwrap();
        assert_eq!(resp, b"payload");
        let proxied = conn.take_elapsed();
        assert!(
            proxied > direct.elapsed / 2,
            "proxied {proxied} vs direct {}",
            direct.elapsed
        );
    }

    #[test]
    fn trace_records_events() {
        let (mut net, client, server) = echo_net(13);
        let mut conn = net.connect(client, server, 7).unwrap();
        conn.request(&mut net, b"x").unwrap();
        let kinds: Vec<_> = net.log().events().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], EventKind::TcpConnect));
        assert!(matches!(kinds[1], EventKind::Exchange { tx: 1, .. }));
    }

    #[test]
    fn attribution_prefers_host_then_geodb() {
        let (mut net, _client, server) = echo_net(14);
        let (cc, asn, _) = net.attribution(server);
        assert_eq!(cc.as_str(), "US");
        assert_eq!(asn, Asn(64500));
        // Unregistered address attributed via geodb.
        net.geodb_mut().insert(
            crate::geo::Netblock::new(ip("41.0.0.0"), 8),
            crate::geo::BlockInfo {
                asn: Asn(37000),
                country: CountryCode::new("ZA"),
                region: Region::Africa,
            },
        );
        let (cc, asn, region) = net.attribution(ip("41.7.7.7"));
        assert_eq!(cc.as_str(), "ZA");
        assert_eq!(asn, Asn(37000));
        assert_eq!(region, Region::Africa);
    }

    #[test]
    fn remove_host_kills_service() {
        let (mut net, client, server) = echo_net(15);
        assert!(net.remove_host(server));
        let err = net.connect(client, server, 7).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Timeout);
    }

    #[test]
    fn fork_shares_plane_and_splits_rng() {
        let (net, client, server) = echo_net(20);
        let mut a = net.fork_shard(1);
        let mut b = net.fork_shard(2);
        assert_eq!(a.shard_id(), 1);
        assert_eq!(b.shard_id(), 2);
        // Shared topology: both forks see the echo service.
        let ra = a.udp_query(client, server, 7, b"ping", None).unwrap();
        let rb = b.udp_query(client, server, 7, b"ping", None).unwrap();
        assert_eq!(ra.bytes, b"ping");
        assert_eq!(rb.bytes, b"ping");
        // Independent RNG streams: shard ids give different jitter draws.
        assert_ne!(ra.elapsed, rb.elapsed, "shard streams should diverge");
        // Same shard id forked twice is bit-identical.
        let again = net
            .fork_shard(1)
            .udp_query(client, server, 7, b"ping", None)
            .unwrap();
        assert_eq!(
            again.elapsed,
            a.fork_shard(1)
                .udp_query(client, server, 7, b"ping", None)
                .unwrap()
                .elapsed
        );
    }

    #[test]
    fn fork_is_copy_on_write() {
        let (mut net, client, server) = echo_net(21);
        let mut fork = net.fork_shard(1);
        // Parent mutates topology after forking: the worker's view is frozen.
        net.remove_host(server);
        assert!(!net.has_host(server));
        assert!(fork.has_host(server));
        let reply = fork.udp_query(client, server, 7, b"ping", None).unwrap();
        assert_eq!(reply.bytes, b"ping");
    }

    #[test]
    fn absorb_merges_stats_and_log() {
        let (net, client, server) = echo_net(22);
        let mut parent = net.fork_shard(0);
        let mut w1 = parent.fork_shard(1);
        let mut w2 = parent.fork_shard(2);
        w1.syn_probe(client, server, 7);
        w2.syn_probe(client, server, 80);
        w2.syn_probe(client, ip("203.0.113.9"), 7);
        parent.absorb_shard(w1);
        parent.absorb_shard(w2);
        let stats = parent.shard_stats();
        assert_eq!(stats.probes, 3);
        assert_eq!(stats.open, 1);
        assert_eq!(stats.closed, 1);
        assert_eq!(stats.filtered, 1);
        assert_eq!(parent.log().len(), 3);
    }

    #[test]
    fn reseed_replays_stream() {
        let (mut net, client, server) = echo_net(23);
        net.reseed(mix_seed(net.base_seed(), 7));
        let (_, a) = net.syn_probe(client, server, 7);
        net.reseed(mix_seed(net.base_seed(), 7));
        let (_, b) = net.syn_probe(client, server, 7);
        assert_eq!(a, b);
    }

    fn band_net(seed: u64) -> (Network, Ipv4Addr) {
        let (mut net, client, _server) = echo_net(seed);
        net.add_host_band(HostBand {
            start: ip("23.0.0.0"),
            count: 1 << 18,
            country: CountryCode::new("CN"),
            asn: Asn(64610),
            port: 853,
            service: Arc::new(FnStreamService::new(
                |_ctx, _peer, _data: &[u8]| b"SSH-2.0-dropbear_2017.75\r\n".to_vec(),
                "junk-banner",
            )),
        });
        (net, client)
    }

    #[test]
    fn band_members_share_attribution() {
        let (net, _client) = band_net(30);
        for addr in ["23.0.0.0", "23.1.2.3", "23.3.255.255"] {
            let (country, asn, _region) = net.plane().attribution(ip(addr));
            assert_eq!(country, CountryCode::new("CN"), "{addr}");
            assert_eq!(asn, Asn(64610), "{addr}");
        }
        // One past the band: falls through to the default attribution.
        let (country, asn, _region) = net.plane().attribution(ip("23.4.0.0"));
        assert_eq!(country, CountryCode::new("US"));
        assert_eq!(asn, Asn(0));
        assert_eq!(net.band_host_count(), 1 << 18);
    }

    #[test]
    fn band_syn_probe_open_closed_filtered() {
        let (mut net, client) = band_net(31);
        let member = ip("23.2.0.77");
        let (outcome, _) = net.syn_probe(client, member, 853);
        assert_eq!(outcome, ProbeOutcome::Open);
        let (outcome, _) = net.syn_probe(client, member, 443);
        assert_eq!(outcome, ProbeOutcome::Closed);
        let (outcome, _) = net.syn_probe(client, ip("23.4.0.0"), 853);
        assert_eq!(outcome, ProbeOutcome::Filtered);
    }

    #[test]
    fn band_connect_reaches_shared_service() {
        let (mut net, client) = band_net(32);
        let mut conn = net.connect(client, ip("23.0.1.2"), 853).unwrap();
        let resp = conn.request(&mut net, b"anything").unwrap();
        assert_eq!(resp, b"SSH-2.0-dropbear_2017.75\r\n");
        conn.close(&mut net);

        let err = net.connect(client, ip("23.0.1.2"), 443).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Refused);
        assert!(err.elapsed < net.config().default_timeout);

        let err = net.connect(client, ip("23.4.0.0"), 853).unwrap_err();
        assert_eq!(err.kind, ConnectErrorKind::Timeout);
    }

    #[test]
    fn registered_host_shadows_band_member() {
        let (mut net, client) = band_net(33);
        let shadowed = ip("23.1.0.9");
        net.add_host(HostMeta::new(shadowed).country("JP").asn(64999));
        net.bind_tcp(
            shadowed,
            4444,
            Arc::new(FnStreamService::new(
                |_ctx, _peer, data: &[u8]| data.to_vec(),
                "echo",
            )),
        );
        let (country, asn, _region) = net.plane().attribution(shadowed);
        assert_eq!(country, CountryCode::new("JP"));
        assert_eq!(asn, Asn(64999));
        // The host's own port table wins: 853 is closed here even though
        // the surrounding band answers it.
        let (outcome, _) = net.syn_probe(client, shadowed, 853);
        assert_eq!(outcome, ProbeOutcome::Closed);
        let (outcome, _) = net.syn_probe(client, shadowed, 4444);
        assert_eq!(outcome, ProbeOutcome::Open);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_bands_panic() {
        let (mut net, _client) = band_net(34);
        net.add_host_band(HostBand {
            start: ip("23.3.255.255"),
            count: 2,
            country: CountryCode::new("DE"),
            asn: Asn(64611),
            port: 853,
            service: Arc::new(FnStreamService::new(
                |_ctx, _peer, _data: &[u8]| Vec::new(),
                "junk-silent",
            )),
        });
    }
}
