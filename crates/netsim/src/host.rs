//! Hosts: addressable endpoints with geo metadata and bound services.

use crate::geo::{region_of, Asn, CountryCode, Region};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Static description of a host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostMeta {
    /// The host's address.
    pub ip: Ipv4Addr,
    /// Country of the host.
    pub country: CountryCode,
    /// Latency region (derived from country unless overridden).
    pub region: Region,
    /// Autonomous system announcing the host's prefix.
    pub asn: Asn,
    /// Whether the address is anycast (reached at the nearest PoP).
    pub anycast: bool,
    /// Free-form label for reporting ("Cloudflare resolver", "MikroTik
    /// router", ...).
    pub label: String,
    /// Reverse-DNS name, if any (the paper checks PTR records of DoT
    /// clients, §5.2).
    pub rdns: Option<String>,
}

impl HostMeta {
    /// A host in the US with an unspecified AS; chain builder methods to
    /// refine.
    pub fn new(ip: Ipv4Addr) -> Self {
        let country = CountryCode::new("US");
        HostMeta {
            ip,
            country,
            region: region_of(country),
            asn: Asn(0),
            anycast: false,
            label: String::new(),
            rdns: None,
        }
    }

    /// Set the country (also updates the region).
    pub fn country(mut self, code: &str) -> Self {
        self.country = CountryCode::new(code);
        self.region = region_of(self.country);
        self
    }

    /// Set the AS number.
    pub fn asn(mut self, asn: u32) -> Self {
        self.asn = Asn(asn);
        self
    }

    /// Mark the address as anycast.
    pub fn anycast(mut self) -> Self {
        self.anycast = true;
        self
    }

    /// Attach a reporting label.
    pub fn label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Attach a reverse-DNS name.
    pub fn rdns(mut self, name: &str) -> Self {
        self.rdns = Some(name.to_string());
        self
    }

    /// Endpoint view for the latency model.
    pub(crate) fn endpoint(&self) -> crate::latency::Endpoint {
        crate::latency::Endpoint {
            region: self.region,
            country: self.country,
            anycast: self.anycast,
        }
    }
}

/// What a service learns about an incoming connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    /// The connecting client's address.
    pub src: Ipv4Addr,
    /// The destination the client *dialled* (before any diversion).
    pub original_dst: Ipv4Addr,
    /// The destination port the client dialled.
    pub original_port: u16,
    /// True if a path policy diverted this connection here — i.e. the
    /// client believes it is talking to `original_dst`.
    pub diverted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields_and_region() {
        let m = HostMeta::new(Ipv4Addr::new(1, 1, 1, 1))
            .country("cn")
            .asn(4134)
            .anycast()
            .label("resolver")
            .rdns("one.one.one.one");
        assert_eq!(m.country.as_str(), "CN");
        assert_eq!(m.region, Region::Asia);
        assert_eq!(m.asn, Asn(4134));
        assert!(m.anycast);
        assert_eq!(m.label, "resolver");
        assert_eq!(m.rdns.as_deref(), Some("one.one.one.one"));
    }

    #[test]
    fn default_host_is_us_unicast() {
        let m = HostMeta::new(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(m.country.as_str(), "US");
        assert!(!m.anycast);
        assert!(m.rdns.is_none());
    }
}
