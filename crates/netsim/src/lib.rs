//! # netsim — a deterministic Internet simulator
//!
//! The IMC'19 DNS-over-Encryption study measured the real Internet: ZMap
//! sweeps of the IPv4 space, residential proxy vantage points in 166
//! countries, and backbone NetFlow. None of those substrates are available
//! offline, so this crate provides the closest synthetic equivalent: a
//! seeded simulation of an internet that the *same measurement code* can
//! run against — single-threaded by default, and shardable across worker
//! threads via [`Network::fork_shard`] for zmap-style parallel sweeps.
//!
//! Design points (see DESIGN.md §4):
//!
//! * **Real bytes, simulated wires.** Services exchange genuine protocol
//!   bytes (DNS wire format, TLS records, HTTP) through [`Network`]; the
//!   simulator charges virtual time per round trip and per byte instead of
//!   actually sleeping.
//! * **Deterministic.** All randomness flows from one seed;
//!   identical seeds produce identical worlds, latencies and outcomes.
//! * **Middleboxes are first-class.** [`policy`] implements the paper's
//!   four failure families — port filtering, blackholing/censorship,
//!   IP-conflict diversion, and TLS interception — as path rules evaluated
//!   on every connection.
//! * **Geo-aware latency.** Hosts carry country/AS metadata; the
//!   [`latency`] model combines an inter-region RTT matrix, per-country
//!   access quality, anycast short-circuiting and lognormal jitter.
//!
//! ```
//! use netsim::{Network, NetworkConfig, HostMeta, service::FnDatagramService};
//! use std::net::Ipv4Addr;
//! use std::sync::Arc;
//!
//! let mut net = Network::new(NetworkConfig::default(), 42);
//! let server = Ipv4Addr::new(192, 0, 2, 1);
//! net.add_host(HostMeta::new(server).country("US").asn(64500));
//! net.bind_udp(server, 7, Arc::new(FnDatagramService::new(|_, _, data| {
//!     Some(data.to_vec()) // echo
//! })));
//!
//! let client = Ipv4Addr::new(198, 51, 100, 1);
//! net.add_host(HostMeta::new(client).country("DE").asn(64501));
//! let reply = net.udp_query(client, server, 7, b"ping", None).unwrap();
//! assert_eq!(reply.bytes, b"ping");
//! assert!(reply.elapsed.as_micros() > 0);
//! ```

/// Re-export of the deterministic metrics subsystem: stage runners pull
/// `telemetry::{Labels, Span, ...}` from here instead of depending on the
/// crate directly.
pub use doe_telemetry as telemetry;

pub mod geo;
pub mod host;
pub mod latency;
pub mod net;
pub mod policy;
pub mod sched;
pub mod service;
pub mod time;
pub mod trace;

pub use geo::{Asn, CountryCode, Netblock, Region};
pub use host::{HostMeta, PeerInfo};
pub use latency::{LatencyModel, LatencyProfile};
pub use net::{
    mix_seed, Conn, ConnectError, ConnectErrorKind, DataPlane, HostBand, Network, NetworkConfig,
    ProbeOutcome, ShardStats, UdpError, UdpReply,
};
pub use policy::{DstMatch, PathDecision, PolicyRule, PolicySet, PortMatch, SrcMatch};
pub use sched::{run_machines, EventMachine, Fired, SchedEvent, SchedStats, Scheduler};
pub use service::{DatagramService, FnDatagramService, Service, ServiceCtx, StreamHandler};
pub use time::{SimDuration, SimInstant, SimTime};
pub use trace::{EventKind, EventLog, NetEvent};
