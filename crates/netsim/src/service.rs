//! Service traits: how bytes arriving at a host's port are answered.
//!
//! A [`Service`] is bound to a `(host, port)` pair. For TCP it acts as a
//! factory: each accepted connection gets its own [`StreamHandler`] state
//! machine (TLS handshakes, HTTP keep-alive and DNS framing all need
//! per-connection state). For UDP, a [`DatagramService`] answers one
//! datagram at a time.
//!
//! Handlers receive a [`ServiceCtx`] that (a) lets them make *upstream*
//! calls through the same network — recursive resolvers forwarding to
//! authoritative servers, DoH front-ends forwarding to Do53 back-ends, MITM
//! proxies dialling the genuine resolver — and (b) accumulates the virtual
//! time those upstream exchanges and any artificial processing delays cost,
//! so the client's observed latency includes them.

use crate::host::PeerInfo;
use crate::net::Network;
use crate::time::SimDuration;

/// Per-connection byte-stream state machine (TCP side).
///
/// `Send` so an in-flight connection can live inside a shard worker.
pub trait StreamHandler: Send {
    /// Handle a flight of client bytes; return the server's response bytes
    /// for the same round trip (may be empty if the handler needs more
    /// data before it can respond).
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8>;

    /// Called when the client closes the connection.
    fn on_close(&mut self, _ctx: &mut ServiceCtx<'_>) {}
}

/// A TCP service: accepts connections and creates per-connection handlers.
///
/// `Send + Sync` because bound services live in the shared [`DataPlane`]
/// half of the network, referenced concurrently by shard workers.
///
/// [`DataPlane`]: crate::net::DataPlane
pub trait Service: Send + Sync {
    /// Accept a connection, producing its handler.
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler>;

    /// A short protocol label for traces ("dot", "doh", "http", ...).
    fn protocol(&self) -> &'static str {
        "tcp"
    }
}

/// A UDP service: answers individual datagrams.
///
/// `Send + Sync` for the same reason as [`Service`].
pub trait DatagramService: Send + Sync {
    /// Answer one datagram; `None` models a silent drop.
    fn on_datagram(&self, ctx: &mut ServiceCtx<'_>, peer: PeerInfo, data: &[u8])
        -> Option<Vec<u8>>;

    /// A short protocol label for traces.
    fn protocol(&self) -> &'static str {
        "udp"
    }
}

/// Context available to a handler while it processes one flight.
pub struct ServiceCtx<'a> {
    net: &'a mut Network,
    /// Address of the host the service runs on (source for upstream calls).
    local: std::net::Ipv4Addr,
    /// Time spent by the handler beyond the client↔server round trip:
    /// upstream exchanges plus explicit processing delays.
    extra: SimDuration,
    depth: u8,
}

/// Upstream handler recursion limit — generous for legitimate chains
/// (client → MITM → resolver → authoritative is depth 3) while bounding
/// accidental forwarding loops.
pub(crate) const MAX_HANDLER_DEPTH: u8 = 8;

impl<'a> ServiceCtx<'a> {
    pub(crate) fn new(net: &'a mut Network, local: std::net::Ipv4Addr, depth: u8) -> Self {
        ServiceCtx {
            net,
            local,
            extra: SimDuration::ZERO,
            depth,
        }
    }

    /// The address the service is answering from.
    pub fn local_addr(&self) -> std::net::Ipv4Addr {
        self.local
    }

    /// Mutable access to the network, for upstream connections.
    ///
    /// Time spent on upstream exchanges must be charged via
    /// [`ServiceCtx::charge`]; the convenience wrappers on [`crate::Conn`]
    /// and [`Network::udp_query`] return elapsed durations for exactly this
    /// purpose.
    pub fn network(&mut self) -> &mut Network {
        self.net
    }

    /// Depth of nested handler invocations (0 for a direct client call).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Charge upstream/processing time to the calling client's clock.
    pub fn charge(&mut self, d: SimDuration) {
        self.extra += d;
    }

    /// Add an artificial processing delay (e.g. Quad9 DoH's 2-second
    /// forwarding timeout before giving up with SERVFAIL).
    pub fn add_processing_delay(&mut self, d: SimDuration) {
        self.extra += d;
    }

    pub(crate) fn extra(&self) -> SimDuration {
        self.extra
    }
}

/// Adapter: build a [`DatagramService`] from a closure.
pub struct FnDatagramService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Option<Vec<u8>> + Send + Sync,
{
    f: F,
    label: &'static str,
}

impl<F> FnDatagramService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Option<Vec<u8>> + Send + Sync,
{
    /// Wrap a closure as a datagram service.
    pub fn new(f: F) -> Self {
        FnDatagramService { f, label: "udp" }
    }

    /// Wrap with an explicit protocol label.
    pub fn labeled(f: F, label: &'static str) -> Self {
        FnDatagramService { f, label }
    }
}

impl<F> DatagramService for FnDatagramService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Option<Vec<u8>> + Send + Sync,
{
    fn on_datagram(
        &self,
        ctx: &mut ServiceCtx<'_>,
        peer: PeerInfo,
        data: &[u8],
    ) -> Option<Vec<u8>> {
        (self.f)(ctx, peer, data)
    }

    fn protocol(&self) -> &'static str {
        self.label
    }
}

/// Adapter: a TCP service whose every connection is handled by a closure
/// over `(ctx, flight) -> response`, with no per-connection state.
pub struct FnStreamService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Vec<u8> + Clone + Send + Sync + 'static,
{
    f: F,
    label: &'static str,
}

impl<F> FnStreamService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Vec<u8> + Clone + Send + Sync + 'static,
{
    /// Wrap a closure as a stateless stream service.
    pub fn new(f: F, label: &'static str) -> Self {
        FnStreamService { f, label }
    }
}

struct FnStreamHandler<F> {
    f: F,
    peer: PeerInfo,
}

impl<F> StreamHandler for FnStreamHandler<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Vec<u8> + Send,
{
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
        (self.f)(ctx, self.peer, data)
    }
}

impl<F> Service for FnStreamService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &[u8]) -> Vec<u8> + Clone + Send + Sync + 'static,
{
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        Box::new(FnStreamHandler {
            f: self.f.clone(),
            peer,
        })
    }

    fn protocol(&self) -> &'static str {
        self.label
    }
}
