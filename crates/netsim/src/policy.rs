//! Path policies: the in-path devices and filters that the reachability
//! study attributes failures to (§4.2 of the paper).
//!
//! A [`PolicySet`] is an ordered rule list; the first rule whose matchers
//! accept a `(src, dst, port, proto)` tuple decides the path's fate:
//!
//! * [`PathDecision::Blackhole`] — silent drop: addresses used for internal
//!   routing, or censored destinations dropped without signalling.
//! * [`PathDecision::Reset`] — active refusal/injected RST: port-53
//!   filtering appliances and GFW-style connection resets.
//! * [`PathDecision::DivertTo`] — the connection terminates at a different
//!   host: IP-conflict squatters (routers/modems occupying 1.1.1.1) and
//!   TLS-interception middleboxes (which then proxy upstream themselves).
//! * [`PathDecision::Allow`] — hands-off.

use crate::geo::{Asn, CountryCode, Netblock};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Transport selector for rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoMatch {
    /// Either transport.
    Any,
    /// TCP only.
    Tcp,
    /// UDP only.
    Udp,
}

/// Matches the connection's source (the client side).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcMatch {
    /// Every source.
    Any,
    /// Sources in a given country.
    Country(CountryCode),
    /// Sources in a given AS.
    As(Asn),
    /// Sources inside a prefix.
    Block(Netblock),
    /// Sources inside any of the prefixes.
    Blocks(Vec<Netblock>),
}

impl SrcMatch {
    /// Does a source with these attributes match?
    pub fn matches(&self, ip: Ipv4Addr, country: CountryCode, asn: Asn) -> bool {
        match self {
            SrcMatch::Any => true,
            SrcMatch::Country(c) => *c == country,
            SrcMatch::As(a) => *a == asn,
            SrcMatch::Block(b) => b.contains(ip),
            SrcMatch::Blocks(bs) => bs.iter().any(|b| b.contains(ip)),
        }
    }
}

/// Matches the dialled destination address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DstMatch {
    /// Every destination.
    Any,
    /// A single address.
    Ip(Ipv4Addr),
    /// Any of a set of addresses.
    Ips(Vec<Ipv4Addr>),
    /// Destinations inside a prefix.
    Block(Netblock),
}

impl DstMatch {
    /// Does the dialled destination match?
    pub fn matches(&self, ip: Ipv4Addr) -> bool {
        match self {
            DstMatch::Any => true,
            DstMatch::Ip(a) => *a == ip,
            DstMatch::Ips(set) => set.contains(&ip),
            DstMatch::Block(b) => b.contains(ip),
        }
    }
}

/// Matches the dialled destination port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortMatch {
    /// Every port.
    Any,
    /// A single port.
    One(u16),
    /// Any of a set of ports.
    Set(Vec<u16>),
}

impl PortMatch {
    /// Does the dialled port match?
    pub fn matches(&self, port: u16) -> bool {
        match self {
            PortMatch::Any => true,
            PortMatch::One(p) => *p == port,
            PortMatch::Set(ps) => ps.contains(&port),
        }
    }
}

/// What happens to a matched path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathDecision {
    /// Continue normally.
    Allow,
    /// Silently drop everything: the client times out.
    Blackhole,
    /// Inject a reset: the client sees "connection refused/reset" after
    /// one round trip.
    Reset,
    /// Terminate the connection at this other host instead. The service
    /// there sees `PeerInfo::diverted = true` and the original destination.
    DivertTo(Ipv4Addr),
}

/// One ordered rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Reporting name ("GFW Google-DoH block", "AS27699 modem squat", ...).
    pub name: String,
    /// Source matcher.
    pub src: SrcMatch,
    /// Destination matcher.
    pub dst: DstMatch,
    /// Port matcher.
    pub port: PortMatch,
    /// Transport matcher.
    pub proto: ProtoMatch,
    /// Decision applied on match.
    pub decision: PathDecision,
}

impl PolicyRule {
    /// A rule matching everything, allowing it; chain builders to narrow.
    pub fn new(name: &str, decision: PathDecision) -> Self {
        PolicyRule {
            name: name.to_string(),
            src: SrcMatch::Any,
            dst: DstMatch::Any,
            port: PortMatch::Any,
            proto: ProtoMatch::Any,
            decision,
        }
    }

    /// Restrict the source.
    pub fn from_src(mut self, src: SrcMatch) -> Self {
        self.src = src;
        self
    }

    /// Restrict the destination.
    pub fn to_dst(mut self, dst: DstMatch) -> Self {
        self.dst = dst;
        self
    }

    /// Restrict the port.
    pub fn on_port(mut self, port: PortMatch) -> Self {
        self.port = port;
        self
    }

    /// Restrict the transport.
    pub fn over(mut self, proto: ProtoMatch) -> Self {
        self.proto = proto;
        self
    }
}

/// Whether a rule's transport matcher accepts a concrete transport.
fn proto_ok(rule: ProtoMatch, is_tcp: bool) -> bool {
    matches!(
        (rule, is_tcp),
        (ProtoMatch::Any, _) | (ProtoMatch::Tcp, true) | (ProtoMatch::Udp, false)
    )
}

/// Ordered set of rules; first match wins.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicySet {
    rules: Vec<PolicyRule>,
}

impl PolicySet {
    /// Empty (allow-everything) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule (evaluated after all existing rules).
    pub fn push(&mut self, rule: PolicyRule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate the rules in evaluation order.
    pub fn iter(&self) -> impl Iterator<Item = &PolicyRule> {
        self.rules.iter()
    }

    /// Evaluate a path; returns the decision and the matching rule's name.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &self,
        src_ip: Ipv4Addr,
        src_country: CountryCode,
        src_asn: Asn,
        dst_ip: Ipv4Addr,
        port: u16,
        is_tcp: bool,
    ) -> (PathDecision, Option<&str>) {
        for rule in &self.rules {
            if proto_ok(rule.proto, is_tcp)
                && rule.port.matches(port)
                && rule.dst.matches(dst_ip)
                && rule.src.matches(src_ip, src_country, src_asn)
            {
                return (rule.decision, Some(rule.name.as_str()));
            }
        }
        (PathDecision::Allow, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn first_match_wins() {
        let mut set = PolicySet::new();
        set.push(
            PolicyRule::new("block-53", PathDecision::Reset)
                .on_port(PortMatch::One(53))
                .from_src(SrcMatch::Country(cc("ID"))),
        );
        set.push(PolicyRule::new("allow-all", PathDecision::Allow));
        let (d, name) = set.evaluate(
            "10.0.0.1".parse().unwrap(),
            cc("ID"),
            Asn(1),
            "1.1.1.1".parse().unwrap(),
            53,
            false,
        );
        assert_eq!(d, PathDecision::Reset);
        assert_eq!(name, Some("block-53"));
        // Same client, port 853: falls through to allow-all.
        let (d, name) = set.evaluate(
            "10.0.0.1".parse().unwrap(),
            cc("ID"),
            Asn(1),
            "1.1.1.1".parse().unwrap(),
            853,
            true,
        );
        assert_eq!(d, PathDecision::Allow);
        assert_eq!(name, Some("allow-all"));
    }

    #[test]
    fn empty_set_allows() {
        let set = PolicySet::new();
        let (d, name) = set.evaluate(
            "10.0.0.1".parse().unwrap(),
            cc("US"),
            Asn(1),
            "8.8.8.8".parse().unwrap(),
            443,
            true,
        );
        assert_eq!(d, PathDecision::Allow);
        assert!(name.is_none());
    }

    #[test]
    fn censorship_rule_matches_country_and_dst_set() {
        let google_doh: Vec<Ipv4Addr> = vec!["216.58.192.10".parse().unwrap()];
        let mut set = PolicySet::new();
        set.push(
            PolicyRule::new("gfw", PathDecision::Blackhole)
                .from_src(SrcMatch::Country(cc("CN")))
                .to_dst(DstMatch::Ips(google_doh.clone())),
        );
        let (d, _) = set.evaluate(
            "59.0.0.1".parse().unwrap(),
            cc("CN"),
            Asn(4134),
            google_doh[0],
            443,
            true,
        );
        assert_eq!(d, PathDecision::Blackhole);
        // Same dst from the US: allowed.
        let (d, _) = set.evaluate(
            "99.0.0.1".parse().unwrap(),
            cc("US"),
            Asn(7018),
            google_doh[0],
            443,
            true,
        );
        assert_eq!(d, PathDecision::Allow);
    }

    #[test]
    fn divert_rule_for_conflict_squatter() {
        let modem: Ipv4Addr = "10.255.0.1".parse().unwrap();
        let mut set = PolicySet::new();
        set.push(
            PolicyRule::new("modem-squat", PathDecision::DivertTo(modem))
                .from_src(SrcMatch::As(Asn(27699)))
                .to_dst(DstMatch::Ip("1.1.1.1".parse().unwrap())),
        );
        let (d, _) = set.evaluate(
            "177.0.0.9".parse().unwrap(),
            cc("BR"),
            Asn(27699),
            "1.1.1.1".parse().unwrap(),
            853,
            true,
        );
        assert_eq!(d, PathDecision::DivertTo(modem));
        // Different AS in the same country: unaffected.
        let (d, _) = set.evaluate(
            "177.0.0.9".parse().unwrap(),
            cc("BR"),
            Asn(1),
            "1.1.1.1".parse().unwrap(),
            853,
            true,
        );
        assert_eq!(d, PathDecision::Allow);
    }

    #[test]
    fn proto_and_block_matchers() {
        let mut set = PolicySet::new();
        set.push(
            PolicyRule::new("udp-only", PathDecision::Blackhole)
                .over(ProtoMatch::Udp)
                .from_src(SrcMatch::Block(Netblock::new(
                    "10.1.0.0".parse().unwrap(),
                    16,
                ))),
        );
        let inside: Ipv4Addr = "10.1.2.3".parse().unwrap();
        let (d, _) = set.evaluate(
            inside,
            cc("US"),
            Asn(1),
            "9.9.9.9".parse().unwrap(),
            53,
            false,
        );
        assert_eq!(d, PathDecision::Blackhole);
        let (d, _) = set.evaluate(
            inside,
            cc("US"),
            Asn(1),
            "9.9.9.9".parse().unwrap(),
            53,
            true,
        );
        assert_eq!(d, PathDecision::Allow);
        let outside: Ipv4Addr = "10.2.2.3".parse().unwrap();
        let (d, _) = set.evaluate(
            outside,
            cc("US"),
            Asn(1),
            "9.9.9.9".parse().unwrap(),
            53,
            false,
        );
        assert_eq!(d, PathDecision::Allow);
    }

    #[test]
    fn port_set_matcher() {
        let m = PortMatch::Set(vec![443, 853]);
        assert!(m.matches(443));
        assert!(m.matches(853));
        assert!(!m.matches(53));
    }
}
