//! Virtual time. The simulator never sleeps; operations *charge* durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time with microsecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From fractional milliseconds (negative clamps to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.2}ms", self.as_millis_f64())
        }
    }
}

/// An instant on the virtual timeline, measured from the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// From microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// The scheduler's name for a point on the virtual timeline: event heaps
/// are keyed by `(SimInstant, seq)`. An alias of [`SimTime`] — the two
/// are the same clock.
pub type SimInstant = SimTime;

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

/// Compute the median of a slice of durations (empty → zero).
pub fn median(samples: &mut [SimDuration]) -> SimDuration {
    if samples.is_empty() {
        return SimDuration::ZERO;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        SimDuration((samples[mid - 1].as_micros() + samples[mid].as_micros()) / 2)
    }
}

/// Compute the mean of a slice of durations (empty → zero).
pub fn mean(samples: &[SimDuration]) -> SimDuration {
    if samples.is_empty() {
        return SimDuration::ZERO;
    }
    SimDuration(samples.iter().map(|d| d.as_micros()).sum::<u64>() / samples.len() as u64)
}

/// Signed milliseconds between two durations (`a - b`), used for latency
/// *overhead* which can legitimately be negative (Finding 3.2: DoH faster
/// than Do53 for some clients).
pub fn overhead_ms(a: SimDuration, b: SimDuration) -> f64 {
    a.as_millis_f64() - b.as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_micros(500);
        assert_eq!((a + b).as_micros(), 5_500);
        assert_eq!((a - b).as_micros(), 4_500);
        assert_eq!((b - a).as_micros(), 0, "sub saturates");
        assert_eq!((a * 3).as_micros(), 15_000);
        assert_eq!((a / 2).as_micros(), 2_500);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn time_advances() {
        let mut t = SimTime::EPOCH;
        t += SimDuration::from_secs(1);
        assert_eq!(t.as_micros(), 1_000_000);
        assert_eq!(t.since(SimTime::EPOCH), SimDuration::from_secs(1));
    }

    #[test]
    fn median_odd_even_empty() {
        let mut odd = vec![
            SimDuration::from_millis(3),
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        ];
        assert_eq!(median(&mut odd), SimDuration::from_millis(2));
        let mut even = vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
            SimDuration::from_millis(10),
        ];
        assert_eq!(median(&mut even), SimDuration::from_micros(2_500));
        assert_eq!(median(&mut []), SimDuration::ZERO);
    }

    #[test]
    fn mean_and_overhead() {
        let xs = [SimDuration::from_millis(10), SimDuration::from_millis(20)];
        assert_eq!(mean(&xs), SimDuration::from_millis(15));
        assert!(
            (overhead_ms(SimDuration::from_millis(5), SimDuration::from_millis(9)) + 4.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0).as_micros(), 0);
    }
}
