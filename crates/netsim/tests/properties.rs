//! Property-based tests for the simulator's data structures and
//! invariants.

use netsim::time::{mean, median};
use netsim::{
    DstMatch, HostMeta, Netblock, Network, NetworkConfig, PathDecision, PolicyRule, PolicySet,
    PortMatch, SimDuration, SrcMatch,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn netblock_contains_its_own_addresses(raw in any::<u32>(), len in 8u8..=30, i in any::<u64>()) {
        let block = Netblock::new(Ipv4Addr::from(raw), len);
        let addr = block.addr(i);
        prop_assert!(block.contains(addr));
    }

    #[test]
    fn netblock_indexing_is_bijective_mod_size(raw in any::<u32>(), len in 24u8..=30) {
        let block = Netblock::new(Ipv4Addr::from(raw), len);
        let mut seen = std::collections::HashSet::new();
        for i in 0..block.size() {
            prop_assert!(seen.insert(block.addr(i)), "duplicate at {i}");
        }
        prop_assert_eq!(block.addr(block.size()), block.addr(0));
    }

    #[test]
    fn median_between_min_and_max(samples in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut ds: Vec<SimDuration> = samples.iter().map(|&s| SimDuration::from_micros(s)).collect();
        let med = median(&mut ds);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(med.as_micros() >= min && med.as_micros() <= max);
        let avg = mean(&ds);
        prop_assert!(avg.as_micros() >= min && avg.as_micros() <= max);
    }

    #[test]
    fn duration_arithmetic_never_goes_negative(a in any::<u32>(), b in any::<u32>()) {
        let x = SimDuration::from_micros(a as u64);
        let y = SimDuration::from_micros(b as u64);
        let diff = x - y;
        prop_assert!(diff.as_micros() <= a as u64);
        prop_assert_eq!((x + y).as_micros(), a as u64 + b as u64);
    }

    #[test]
    fn first_matching_rule_wins(port in any::<u16>(), dst in any::<u32>()) {
        let dst = Ipv4Addr::from(dst);
        let mut set = PolicySet::new();
        set.push(PolicyRule::new("first", PathDecision::Reset).on_port(PortMatch::One(port)));
        set.push(PolicyRule::new("second", PathDecision::Blackhole).on_port(PortMatch::One(port)));
        let (decision, name) = set.evaluate(
            Ipv4Addr::new(10, 0, 0, 1),
            netsim::CountryCode::new("US"),
            netsim::Asn(1),
            dst,
            port,
            true,
        );
        prop_assert_eq!(decision, PathDecision::Reset);
        prop_assert_eq!(name, Some("first"));
    }

    #[test]
    fn udp_echo_latency_is_positive_and_deterministic(seed in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 1..64)) {
        let run = |seed: u64, payload: &[u8]| {
            let mut net = Network::new(NetworkConfig::default(), seed);
            let server: Ipv4Addr = "192.0.2.1".parse().unwrap();
            let client: Ipv4Addr = "198.51.100.1".parse().unwrap();
            net.add_host(HostMeta::new(server));
            net.add_host(HostMeta::new(client));
            net.bind_udp(
                server,
                7,
                std::sync::Arc::new(netsim::FnDatagramService::new(|_c, _p, d| Some(d.to_vec()))),
            );
            net.udp_query(client, server, 7, payload, None)
        };
        let a = run(seed, &payload);
        let b = run(seed, &payload);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(&x.bytes, &payload);
                prop_assert_eq!(x.elapsed, y.elapsed);
                prop_assert!(x.elapsed > SimDuration::ZERO);
            }
            (Err(_), Err(_)) => {} // rare loss roll: must at least agree
            _ => prop_assert!(false, "nondeterministic outcome"),
        }
    }

    #[test]
    fn divert_rules_never_fire_for_their_own_device(port in 1u16..65535) {
        // The self-diversion guard: a device's own traffic to the squatted
        // address is never diverted back to itself.
        let mut net = Network::new(NetworkConfig::default(), 9);
        let device: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let target: Ipv4Addr = "1.1.1.1".parse().unwrap();
        net.add_host(HostMeta::new(device));
        net.add_host(HostMeta::new(target));
        net.bind_tcp(
            target,
            port,
            std::sync::Arc::new(netsim::service::FnStreamService::new(
                |_c, _p, d: &[u8]| d.to_vec(),
                "echo",
            )),
        );
        net.policies_mut().push(
            PolicyRule::new("squat", PathDecision::DivertTo(device))
                .to_dst(DstMatch::Ip(target))
                .from_src(SrcMatch::Any),
        );
        let conn = net.connect(device, target, port).unwrap();
        prop_assert_eq!(conn.effective_dst(), target);
    }
}
