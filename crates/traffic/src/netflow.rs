//! NetFlow-style records and the sampling collector.
//!
//! "NetFlow-enabled routers aggregate sequential packets in a flow ... and
//! create a record containing its statistics. Each NetFlow record include
//! IP addresses, ports, total bytes of packets, and the union of TCP
//! flags. When collecting NetFlow, our provider ISP uses a sampling rate
//! 1/3,000, and expires a flow if idle for 15 seconds." (§5.1)

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use tlssim::DateStamp;

/// TCP SYN flag bit.
pub const TCP_SYN: u8 = 0x02;
/// TCP ACK flag bit.
pub const TCP_ACK: u8 = 0x10;
/// TCP PSH flag bit.
pub const TCP_PSH: u8 = 0x08;
/// TCP FIN flag bit.
pub const TCP_FIN: u8 = 0x01;

/// A flow as it actually crossed the backbone (pre-sampling).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealFlow {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Total packets.
    pub packets: u32,
    /// Total bytes.
    pub bytes: u64,
    /// Day the flow started.
    pub date: DateStamp,
    /// True for a bare connection attempt that never completed (the
    /// single-SYN flows §5.1 excludes).
    pub syn_only: bool,
}

/// A sampled flow record as exported by the router.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Source address (analysis truncates to /24 for ethics, §5.1).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Sampled packets contributing to this record.
    pub sampled_packets: u32,
    /// Estimated bytes (sampled packets × mean packet size).
    pub bytes: u64,
    /// Union of TCP flags over sampled packets.
    pub tcp_flags: u8,
    /// Day observed.
    pub date: DateStamp,
}

impl FlowRecord {
    /// §5.1's exclusion: a record whose only flag is a single SYN cannot
    /// contain DoT queries.
    pub fn is_single_syn(&self) -> bool {
        self.tcp_flags == TCP_SYN && self.sampled_packets <= 1
    }

    /// The /24 aggregation used throughout §5.2.
    pub fn src_slash24(&self) -> netsim::Netblock {
        netsim::Netblock::slash24(self.src)
    }
}

/// Packet-sampling collector.
#[derive(Debug, Clone, Copy)]
pub struct NetFlowCollector {
    /// One in `sampling_rate` packets is examined.
    pub sampling_rate: u32,
}

impl Default for NetFlowCollector {
    fn default() -> Self {
        NetFlowCollector {
            sampling_rate: 3_000,
        }
    }
}

impl NetFlowCollector {
    /// Observe one real flow; returns a record iff at least one of its
    /// packets was sampled.
    pub fn observe<R: Rng + ?Sized>(&self, flow: &RealFlow, rng: &mut R) -> Option<FlowRecord> {
        let p = 1.0 / self.sampling_rate as f64;
        // Binomial(packets, p) via its Poisson approximation for the huge
        // sparse case, exact Bernoulli loop for small flows.
        let sampled = if flow.packets <= 64 {
            (0..flow.packets).filter(|_| rng.gen_bool(p)).count() as u32
        } else {
            let lambda = flow.packets as f64 * p;
            poisson(lambda, rng)
        };
        if sampled == 0 {
            return None;
        }
        let flags = if flow.syn_only {
            TCP_SYN
        } else if sampled == flow.packets {
            TCP_SYN | TCP_ACK | TCP_PSH | TCP_FIN
        } else {
            // Mid-flow packets dominate a partial sample.
            TCP_ACK | TCP_PSH
        };
        Some(FlowRecord {
            src: flow.src,
            dst: flow.dst,
            dst_port: flow.dst_port,
            sampled_packets: sampled,
            bytes: (flow.bytes / flow.packets.max(1) as u64) * sampled as u64,
            tcp_flags: flags,
            date: flow.date,
        })
    }
}

/// Sample a Poisson variate (Knuth for small λ, normal approx above).
pub(crate) fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen_range(0.0f64..1.0);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k;
            }
        }
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (lambda + lambda.sqrt() * z).round().max(0.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn flow(packets: u32, syn_only: bool) -> RealFlow {
        RealFlow {
            src: "64.1.2.3".parse().unwrap(),
            dst: "1.1.1.1".parse().unwrap(),
            dst_port: 853,
            packets,
            bytes: packets as u64 * 120,
            date: DateStamp::from_ymd(2018, 7, 15),
            syn_only,
        }
    }

    #[test]
    fn sampling_rate_is_respected() {
        let collector = NetFlowCollector { sampling_rate: 10 };
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let observed = (0..n)
            .filter(|_| collector.observe(&flow(1, false), &mut rng).is_some())
            .count();
        let rate = observed as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "rate {rate}, want ~0.10");
    }

    #[test]
    fn bigger_flows_more_likely_observed() {
        let collector = NetFlowCollector::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 30_000;
        let small = (0..n)
            .filter(|_| collector.observe(&flow(2, false), &mut rng).is_some())
            .count();
        let big = (0..n)
            .filter(|_| collector.observe(&flow(200, false), &mut rng).is_some())
            .count();
        assert!(big > small * 10, "big {big} vs small {small}");
    }

    #[test]
    fn syn_only_flows_marked_and_excluded() {
        let collector = NetFlowCollector { sampling_rate: 1 };
        let mut rng = SmallRng::seed_from_u64(3);
        let rec = collector.observe(&flow(1, true), &mut rng).unwrap();
        assert!(rec.is_single_syn());
        let rec = collector.observe(&flow(40, false), &mut rng).unwrap();
        assert!(!rec.is_single_syn());
        assert_ne!(rec.tcp_flags & TCP_ACK, 0);
    }

    #[test]
    fn slash24_truncation() {
        let collector = NetFlowCollector { sampling_rate: 1 };
        let mut rng = SmallRng::seed_from_u64(4);
        let rec = collector.observe(&flow(5, false), &mut rng).unwrap();
        assert_eq!(rec.src_slash24().to_string(), "64.1.2.0/24");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = SmallRng::seed_from_u64(5);
        for lambda in [0.5f64, 5.0, 50.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(lambda, &mut rng) as u64).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "λ={lambda}, mean={mean}"
            );
        }
    }
}
