//! # doe-traffic — usage measurement (Section 5)
//!
//! The paper's third leg observes *real-world usage* of encrypted DNS from
//! two passive sources neither of which is available offline, so both are
//! modelled end to end:
//!
//! * [`netflow`] — Cisco-NetFlow-style flow records with packet sampling
//!   (the provider ISP used 1/3,000 and a 15-second idle timeout), TCP
//!   flag unions, and the single-SYN exclusion used in §5.1,
//! * [`generator`] — an 18-month synthetic client population calibrated
//!   to Finding 4.1: Cloudflare DoT flows growing 56% (Jul→Dec 2018),
//!   Quad9 fluctuating, top-5 /24s carrying 44% of traffic, 96% of
//!   netblocks active under a week contributing 25%,
//! * [`dot_analysis`] — the §5.2 pipeline: filter port-853 flows to known
//!   DoT resolvers, drop single-SYN flows, bucket monthly (Figure 11),
//!   aggregate per /24 (Figure 12),
//! * [`passive_dns`] — DNSDB/360-style aggregated domain statistics and
//!   the DoH bootstrap-domain trend analysis of §5.3 (Figure 13),
//! * [`scandet`] — a NetworkScan-Mon-style state-transition scan detector
//!   used, as in the paper, to confirm observed DoT traffic is not
//!   scanner-generated,
//! * [`stubsim`] — the population-scale stress leg: a million event-driven
//!   stub clients interleaved on the discrete-event scheduler, mixing
//!   clear-text and DoT transports with reuse, timeouts and retransmits.

pub mod dot_analysis;
pub mod generator;
pub mod netflow;
pub mod passive_dns;
pub mod scandet;
pub mod stubsim;

pub use dot_analysis::{analyze_dot, analyze_dot_metered, DotTrafficReport, NetblockActivity};
pub use generator::{generate_dot_traffic, DotTrafficConfig, TrafficDataset};
pub use netflow::{FlowRecord, NetFlowCollector, RealFlow, TCP_ACK, TCP_FIN, TCP_PSH, TCP_SYN};
pub use passive_dns::{generate_passive_dns, DomainStats, PassiveDnsDb, PdnsConfig};
pub use scandet::{detect_scanners, ScanDetectorConfig, ScanVerdict};
pub use stubsim::{
    build_stub_world, stub_population_sharded, SchedLoad, StubPopulationConfig,
    StubPopulationReport, StubWorld,
};
