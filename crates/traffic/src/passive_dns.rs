//! Passive-DNS databases and the DoH bootstrap-domain analysis (§5.3).
//!
//! DoH queries hide inside HTTPS, but the *bootstrap* resolution of the
//! service hostname is visible to passive DNS — the paper's lever for
//! estimating DoH usage. Two databases are modelled: a DNSDB-like one with
//! wide coverage (first/last seen + lifetime totals) and a 360-like one
//! with per-day resolution.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tlssim::DateStamp;

/// Aggregated statistics for one domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainStats {
    /// First lookup observed.
    pub first_seen: Option<DateStamp>,
    /// Last lookup observed.
    pub last_seen: Option<DateStamp>,
    /// Total historical lookups.
    pub total: u64,
    /// Daily lookup counts (the 360-style fine-grained view).
    pub daily: BTreeMap<DateStamp, u64>,
}

impl DomainStats {
    /// Record `n` lookups on `date`.
    pub fn record(&mut self, date: DateStamp, n: u64) {
        if n == 0 {
            return;
        }
        self.first_seen = Some(self.first_seen.map_or(date, |f| f.min(date)));
        self.last_seen = Some(self.last_seen.map_or(date, |l| l.max(date)));
        self.total += n;
        *self.daily.entry(date).or_default() += n;
    }

    /// Monthly series (`YYYY-MM` → count).
    pub fn monthly(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (date, n) in &self.daily {
            *out.entry(date.month_label()).or_default() += n;
        }
        out
    }
}

/// A passive DNS database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PassiveDnsDb {
    domains: BTreeMap<String, DomainStats>,
}

impl PassiveDnsDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record lookups.
    pub fn record(&mut self, domain: &str, date: DateStamp, n: u64) {
        self.domains
            .entry(domain.to_ascii_lowercase())
            .or_default()
            .record(date, n);
    }

    /// Stats for one domain.
    pub fn lookup(&self, domain: &str) -> Option<&DomainStats> {
        self.domains.get(&domain.to_ascii_lowercase())
    }

    /// Domains with more than `threshold` total lookups.
    pub fn domains_above(&self, threshold: u64) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .domains
            .iter()
            .filter(|(_, s)| s.total > threshold)
            .map(|(d, s)| (d.as_str(), s.total))
            .collect();
        v.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        v
    }

    /// Number of tracked domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

/// Calibration for the synthetic bootstrap-lookup feed (Figure 13).
#[derive(Debug, Clone)]
pub struct PdnsConfig {
    /// Seed.
    pub seed: u64,
    /// Window start.
    pub start: DateStamp,
    /// Months covered.
    pub months: u32,
    /// Sensor-coverage multiplier. DNSDB has far wider resolver coverage
    /// than 360 PassiveDNS ("DNSDB has a wider coverage of resolvers
    /// across the globe", §5.1); the Figure 13 monthly numbers are
    /// 360-scale, the ">10K lifetime queries" cut is DNSDB-scale.
    pub coverage: f64,
}

impl Default for PdnsConfig {
    fn default() -> Self {
        PdnsConfig::three_sixty()
    }
}

impl PdnsConfig {
    /// The 360-PassiveDNS-like view: fine-grained daily counts from
    /// mid-2018 (Figure 13's source).
    pub fn three_sixty() -> Self {
        PdnsConfig {
            seed: 3_600,
            start: DateStamp::from_ymd(2018, 6, 1),
            months: 10, // Jun 2018 .. Mar 2019
            coverage: 1.0,
        }
    }

    /// The DNSDB-like view: wider sensor coverage, longer history (used
    /// for the ">10K lifetime lookups" cut of §5.3).
    pub fn dnsdb() -> Self {
        PdnsConfig {
            seed: 3_601,
            start: DateStamp::from_ymd(2017, 1, 1),
            months: 27, // Jan 2017 .. Mar 2019
            coverage: 9.0,
        }
    }
}

/// Daily lookup intensity per DoH domain, per Figure 13's shapes:
/// Google orders of magnitude above everyone; Cloudflare rising with the
/// Firefox experiments; CleanBrowsing ~10×ing from Sep 2018 to Mar 2019;
/// crypto.sx small; the rest negligible.
fn daily_rate(domain: &str, date: DateStamp) -> f64 {
    let month_index = |y: i32, m: u32| (y as i64) * 12 + m as i64 - 1;
    let (y, m, _) = date.to_ymd();
    let idx = month_index(y, m);
    match domain {
        "dns.google.com" => {
            // Popular since 2016; slow growth around ~2-3M/month.
            (70_000.0 + 400.0 * (idx - month_index(2018, 6)) as f64).max(30_000.0)
        }
        "mozilla.cloudflare-dns.com" => {
            // Takes off with the Firefox Nightly experiment (Aug 2018).
            if idx < month_index(2018, 8) {
                60.0
            } else {
                800.0 + 350.0 * (idx - month_index(2018, 8)) as f64
            }
        }
        "doh.cleanbrowsing.org" => {
            // ~200 (Sep 2018) → ~1,915 (Mar 2019), ×10 in six months.
            if idx < month_index(2018, 9) {
                3.0
            } else {
                let k = (idx - month_index(2018, 9)) as f64;
                (200.0 / 30.0) * (10.0f64).powf(k / 6.0)
            }
        }
        "doh.crypto.sx" => {
            // Operating since 2017 with a small steady base.
            if idx < month_index(2017, 6) {
                0.0
            } else {
                14.0
            }
        }
        // The long tail of DoH domains sees a trickle.
        _ => 0.3,
    }
}

/// The 17 DoH bootstrap domains tracked in §5.3.
pub const DOH_DOMAINS: [&str; 17] = [
    "dns.google.com",
    "mozilla.cloudflare-dns.com",
    "cloudflare-dns.com",
    "dns.quad9.net",
    "doh.cleanbrowsing.org",
    "doh.crypto.sx",
    "doh.securedns.eu",
    "doh-jp.blahdns.com",
    "dns.adguard.com",
    "doh.appliedprivacy.net",
    "odvr.nic.cz",
    "dns.dnsoverhttps.net",
    "dns.dns-over-https.com",
    "commons.host",
    "doh.powerdns.org",
    "dns.rubyfish.cn",
    "dns.233py.com",
];

/// Generate the passive-DNS feed for the DoH domains (plus cache
/// undercounting: passive DNS sees misses, not cached hits — §5.1's stated
/// limitation, modelled as a fixed visibility factor).
pub fn generate_passive_dns(cfg: &PdnsConfig) -> PassiveDnsDb {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let cache_visibility = 0.7 * cfg.coverage;
    let mut db = PassiveDnsDb::new();
    let end = cfg.start.add_months(cfg.months);
    let mut date = cfg.start;
    while date < end {
        for domain in DOH_DOMAINS {
            let lambda = daily_rate(domain, date) * cache_visibility;
            let n = crate::netflow::poisson(lambda, &mut rng) as u64;
            db.record(domain, date, n);
        }
        date = date + 1;
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnsdb_lifetime_cut_selects_four_popular_domains() {
        let db = generate_passive_dns(&PdnsConfig::dnsdb());
        // §5.3: "only 4 domains have more than 10K queries".
        let big = db.domains_above(10_000);
        let names: Vec<&str> = big.iter().map(|(d, _)| *d).collect();
        assert!(names.len() >= 4 && names.len() <= 5, "{names:?}");
        assert_eq!(names[0], "dns.google.com", "Google dominates");
        assert!(names.contains(&"mozilla.cloudflare-dns.com"));
        assert!(names.contains(&"doh.cleanbrowsing.org"));
        assert!(names.contains(&"doh.crypto.sx"));
    }

    #[test]
    fn figure13_shapes() {
        let db = generate_passive_dns(&PdnsConfig::three_sixty());
        // CleanBrowsing: ~10× growth Sep 2018 → Mar 2019.
        let cb = db.lookup("doh.cleanbrowsing.org").unwrap().monthly();
        let sep = *cb.get("2018-09").unwrap() as f64;
        let mar = *cb.get("2019-03").unwrap() as f64;
        assert!(
            (6.0..16.0).contains(&(mar / sep)),
            "CleanBrowsing growth ×{}",
            mar / sep
        );

        // Google orders of magnitude above CleanBrowsing.
        let google = db.lookup("dns.google.com").unwrap().monthly();
        let g_mar = *google.get("2019-03").unwrap() as f64;
        assert!(g_mar / mar > 100.0);

        // Cloudflare takes off with the Firefox experiment.
        let moz = db.lookup("mozilla.cloudflare-dns.com").unwrap().monthly();
        let jul = *moz.get("2018-07").unwrap() as f64;
        let dec = *moz.get("2018-12").unwrap() as f64;
        assert!(dec / jul.max(1.0) > 10.0, "mozilla {jul} → {dec}");
    }

    #[test]
    fn stats_record_and_aggregate() {
        let mut s = DomainStats::default();
        let d1 = DateStamp::from_ymd(2018, 9, 3);
        let d2 = DateStamp::from_ymd(2018, 10, 7);
        s.record(d2, 5);
        s.record(d1, 2);
        s.record(d1, 1);
        assert_eq!(s.first_seen, Some(d1));
        assert_eq!(s.last_seen, Some(d2));
        assert_eq!(s.total, 8);
        let m = s.monthly();
        assert_eq!(m.get("2018-09"), Some(&3));
        assert_eq!(m.get("2018-10"), Some(&5));
        // Zero-count records are ignored.
        let mut empty = DomainStats::default();
        empty.record(d1, 0);
        assert!(empty.first_seen.is_none());
    }

    #[test]
    fn db_lookup_is_case_insensitive() {
        let mut db = PassiveDnsDb::new();
        db.record("DNS.Google.COM", DateStamp::from_ymd(2018, 6, 1), 3);
        assert_eq!(db.lookup("dns.google.com").unwrap().total, 3);
        assert_eq!(db.len(), 1);
    }
}
