//! The population-scale stress leg: a million event-driven stub clients
//! on the shard event heap.
//!
//! The per-client-loop architecture bounded a shard to one in-flight
//! client at a time; the discrete-event scheduler removes that bound.
//! This module builds a lean world — one anycast resolver, clients
//! attributed through the geo database instead of a million host
//! entries — and drives a [`StubMachine`] per client, mixing clear-text
//! UDP (the bulk), clear-text TCP, and Opportunistic/Strict DoT so
//! connection reuse, idle closes, timeouts and retransmits all run as
//! scheduled events. One /16 of the client band is blackholed by policy,
//! so a fixed, shard-layout-independent slice of the fleet exercises the
//! retransmit path.
//!
//! Determinism: every machine seeds its RNG stream from
//! `mix_seed(salt, client_index)` and all merge operations (counter sums,
//! per-profile sums, peak maxima) are associative and commutative, so the
//! report and the telemetry snapshot are bit-identical for any `--shards`
//! value — the same contract `tests/shard_invariance.rs` checks for the
//! scan and vantage legs.

use dnswire::zone::Zone;
use dnswire::{Name, RData};
use doe_protocols::do53::{Do53TcpService, Do53UdpService};
use doe_protocols::dot::DotServerService;
use doe_protocols::responder::{AuthoritativeServer, DnsResponder};
use doe_protocols::{StubConfig, StubMachine, StubMachineStats, StubPacing, StubProfile};
use netsim::geo::BlockInfo;
use netsim::sched::{run_machines, SchedEvent, SchedStats};
use netsim::telemetry::Labels;
use netsim::{
    mix_seed, Asn, CountryCode, HostMeta, Netblock, Network, NetworkConfig, PathDecision,
    PolicyRule, Region, SimDuration, SrcMatch,
};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CaHandle, DateStamp, KeyId, TlsServerConfig, TrustStore};

/// The resolver every stub queries (benchmark address space).
pub const STUB_RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 53);

/// DoT certificate name the Strict profile authenticates.
pub const STUB_AUTH_NAME: &str = "stub.resolver.example";

/// First address of the live client band (RFC 6598 shared space).
const CLIENT_BASE: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 0);

/// The /16 whose clients are blackholed: every 64th client maps here, so
/// a fixed 1/64 of any population size times out and retransmits.
const DEAD_BLOCK: Ipv4Addr = Ipv4Addr::new(100, 127, 0, 0);

/// Knobs for a stub-population run.
#[derive(Debug, Clone)]
pub struct StubPopulationConfig {
    /// Concurrent stub clients (capped by the /10 band: ≤ 4,000,000).
    pub clients: usize,
    /// Logical queries per client.
    pub queries_per_client: u32,
}

impl Default for StubPopulationConfig {
    fn default() -> Self {
        StubPopulationConfig {
            clients: 20_000,
            queries_per_client: 2,
        }
    }
}

/// The lean world a stub population runs against.
pub struct StubWorld {
    /// The simulated network (metrics-enabled when asked).
    pub net: Network,
    /// Trust anchors for the DoT profiles.
    pub store: TrustStore,
    /// Simulated calendar date (certificate validity).
    pub now: DateStamp,
}

/// Per-event-kind scheduler load, merged across shards. Sums and maxima
/// only, so the merge is associative and shard-count invariant (the raw
/// per-shard heap peak is deliberately excluded — it depends on how many
/// machines share a heap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedLoad {
    /// Events scheduled, by kind index (see [`SchedEvent::KIND_NAMES`]).
    pub scheduled: [u64; SchedEvent::KIND_COUNT],
    /// Events fired, by kind index.
    pub fired: [u64; SchedEvent::KIND_COUNT],
    /// Peak simultaneously-pending events of any single machine.
    pub peak_outstanding: u32,
}

impl SchedLoad {
    /// Fold one shard's scheduler statistics into the fleet view.
    pub fn absorb(&mut self, stats: &SchedStats) {
        for k in 0..SchedEvent::KIND_COUNT {
            self.scheduled[k] += stats.scheduled[k];
            self.fired[k] += stats.fired[k];
        }
        self.peak_outstanding = self.peak_outstanding.max(stats.machine_peak);
    }
}

/// One transport profile's slice of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSlice {
    /// Profile label (`udp`, `tcp`, `dot-opportunistic`, `dot-strict`).
    pub profile: &'static str,
    /// Clients assigned to the profile.
    pub clients: u64,
    /// Their merged outcome counters.
    pub stats: StubMachineStats,
}

/// The fleet-level result of a stub-population run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StubPopulationReport {
    /// Clients simulated.
    pub clients: u64,
    /// Fleet-wide outcome counters.
    pub totals: StubMachineStats,
    /// Per-profile breakdown, in fixed profile order.
    pub profiles: Vec<ProfileSlice>,
    /// Scheduler load, by event kind.
    pub sched: SchedLoad,
}

/// Profile labels, indexed by [`profile_index`].
const PROFILE_LABELS: [&str; 4] = ["udp", "tcp", "dot-opportunistic", "dot-strict"];

/// Deterministic transport mix: UDP-heavy (keeps a million machines
/// lean), with enough TCP and DoT to exercise pooled connections.
fn profile_index(ci: u64) -> usize {
    match ci % 100 {
        0..=89 => 0,
        90..=95 => 1,
        96..=98 => 2,
        _ => 3,
    }
}

/// Client address: every 64th client lands in the blackholed /16; the
/// rest walk the live band from [`CLIENT_BASE`].
fn client_addr(ci: u64) -> Ipv4Addr {
    if ci % 64 == 63 {
        Ipv4Addr::from(u32::from(DEAD_BLOCK) + (ci / 64) as u32 + 1)
    } else {
        Ipv4Addr::from(u32::from(CLIENT_BASE) + ci as u32 + 1)
    }
}

/// Whether a client index maps into the blackholed /16.
pub fn is_dead_client(ci: u64) -> bool {
    ci % 64 == 63
}

/// Build the lean stub world: the resolver host, geo attribution for the
/// whole client band (no per-client host entries), and the blackhole rule.
pub fn build_stub_world(seed: u64, metrics: bool) -> StubWorld {
    let mut net = Network::new(
        NetworkConfig {
            metrics,
            ..NetworkConfig::default()
        },
        seed,
    );
    let now = DateStamp::from_ymd(2019, 2, 1);

    net.add_host(
        HostMeta::new(STUB_RESOLVER)
            .country("US")
            .asn(64496)
            .anycast(),
    );
    let apex = Name::parse("pop.example").expect("static apex");
    let mut zone = Zone::new(apex.clone());
    zone.add_record(
        &apex.prepend("*").expect("static label"),
        60,
        RData::A(Ipv4Addr::new(203, 0, 113, 80)),
    );
    let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
    net.bind_udp(
        STUB_RESOLVER,
        53,
        Arc::new(Do53UdpService::new(Arc::clone(&responder))),
    );
    net.bind_tcp(
        STUB_RESOLVER,
        53,
        Arc::new(Do53TcpService::new(Arc::clone(&responder))),
    );
    let ca = CaHandle::new("Stub Population CA", KeyId(41), now + -100, 3650);
    let mut store = TrustStore::new();
    store.add(ca.authority());
    let leaf = ca.issue(STUB_AUTH_NAME, vec![], KeyId(42), 1, now + -10, now + 365);
    net.bind_tcp(
        STUB_RESOLVER,
        853,
        Arc::new(DotServerService::new(
            TlsServerConfig::new(vec![leaf], KeyId(42)),
            responder,
        )),
    );

    // Country attribution by /14 slice of the live band — latency model
    // diversity without a million host entries.
    let countries: [(&str, u32, Region); 8] = [
        ("US", 64500, Region::NorthAmerica),
        ("CN", 64501, Region::Asia),
        ("IN", 64502, Region::Asia),
        ("DE", 64503, Region::Europe),
        ("BR", 64504, Region::SouthAmerica),
        ("NG", 64505, Region::Africa),
        ("JP", 64506, Region::Asia),
        ("AU", 64507, Region::Oceania),
    ];
    for (i, (cc, asn, region)) in countries.iter().enumerate() {
        let block = Netblock::new(
            Ipv4Addr::from(u32::from(CLIENT_BASE) + ((i as u32) << 18)),
            14,
        );
        net.geodb_mut().insert(
            block,
            BlockInfo {
                asn: Asn(*asn),
                country: CountryCode::new(cc),
                region: *region,
            },
        );
    }
    // The dead band is attributed too — its flows are simply dropped.
    net.geodb_mut().insert(
        Netblock::new(DEAD_BLOCK, 16),
        BlockInfo {
            asn: Asn(64508),
            country: CountryCode::new("US"),
            region: Region::NorthAmerica,
        },
    );
    net.policies_mut().push(
        PolicyRule::new("stubsim dead band", PathDecision::Blackhole)
            .from_src(SrcMatch::Block(Netblock::new(DEAD_BLOCK, 16))),
    );

    StubWorld { net, store, now }
}

/// One shard's partial aggregate: pure sums and maxima, so the parent
/// merge is order-free.
struct ShardAgg {
    per_profile: [StubMachineStats; 4],
    clients_per_profile: [u64; 4],
    sched: SchedStats,
}

/// Run `cfg.clients` event-driven stub clients distributed over `shards`
/// worker threads (client `i` → shard `i mod shards`). Every machine
/// performs one bounded step per fired event, so a single shard holds
/// the whole population concurrently instead of one client at a time.
pub fn stub_population_sharded(
    world: &mut StubWorld,
    cfg: &StubPopulationConfig,
    shards: usize,
) -> StubPopulationReport {
    assert!(
        cfg.clients <= 4_000_000,
        "client band is a /10: at most 4M stubs"
    );
    let shards = shards.max(1);
    let clients = cfg.clients;
    let salt = mix_seed(world.net.base_seed(), 0x7374_7562_706f_7075); // "stubpopu"
    let pacing = Arc::new(StubPacing {
        queries_per_client: cfg.queries_per_client,
        ..StubPacing::default()
    });
    let store = &world.store;
    let now = world.now;

    let run_shard = |worker: &mut Network, shard: usize| -> ShardAgg {
        let mut machines: Vec<StubMachine> = Vec::with_capacity(clients / shards + 1);
        let mut clients_per_profile = [0u64; 4];
        for (mi, ci) in (shard..clients).step_by(shards).enumerate() {
            let ci = ci as u64;
            let p = profile_index(ci);
            clients_per_profile[p] += 1;
            let profile = match p {
                0 => StubProfile::ClearText,
                1 => StubProfile::ClearTextTcp,
                2 => StubProfile::OpportunisticDot {
                    fallback_clear: false,
                },
                _ => StubProfile::StrictDot {
                    auth_name: STUB_AUTH_NAME.into(),
                },
            };
            // Only the TLS profiles need trust anchors; empty stores keep
            // the million-machine fleet lean.
            let trust_store = if p >= 2 {
                store.clone()
            } else {
                TrustStore::new()
            };
            machines.push(StubMachine::new(
                mi as u64,
                ci,
                client_addr(ci),
                StubConfig {
                    resolver: STUB_RESOLVER,
                    profile,
                    trust_store,
                    now,
                    timeout: SimDuration::from_secs(5),
                },
                Arc::clone(&pacing),
                mix_seed(salt, ci),
            ));
        }
        // Stagger starts over ~1s of virtual time, keyed on the global
        // index so the fleet's schedule is shard-layout independent.
        for m in machines.iter_mut() {
            let ci = m.client_index();
            m.start(worker, SimDuration::from_micros((ci % 1_009) * 977));
        }
        run_machines(worker, &mut machines);

        let mut per_profile = [StubMachineStats::default(); 4];
        for m in &machines {
            per_profile[profile_index(m.client_index())].absorb(&m.stats);
        }
        ShardAgg {
            per_profile,
            clients_per_profile,
            sched: worker.sched_stats(),
        }
    };

    let mut outputs: Vec<(Network, ShardAgg)> = if shards == 1 {
        let mut worker = world.net.fork_shard(0);
        let agg = run_shard(&mut worker, 0);
        vec![(worker, agg)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let mut worker = world.net.fork_shard(s as u64);
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let agg = run_shard(&mut worker, s);
                        (worker, agg)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stub population shard panicked"))
                .collect()
        })
        .expect("stub population scope panicked")
    };

    let mut per_profile = [StubMachineStats::default(); 4];
    let mut clients_per_profile = [0u64; 4];
    let mut sched = SchedLoad::default();
    for (worker, agg) in outputs.drain(..) {
        world.net.absorb_shard(worker);
        for p in 0..4 {
            per_profile[p].absorb(&agg.per_profile[p]);
            clients_per_profile[p] += agg.clients_per_profile[p];
        }
        sched.absorb(&agg.sched);
    }

    let mut totals = StubMachineStats::default();
    for s in &per_profile {
        totals.absorb(s);
    }

    // Fleet counters into the merged registry, so `repro --metrics`
    // carries the population outcome next to the scheduler-kind series.
    let m = world.net.metrics_mut();
    m.count("stage.stub.clients", Labels::empty(), clients as u64);
    m.count("stage.stub.queries", Labels::empty(), totals.queries);
    m.count("stage.stub.answered", Labels::empty(), totals.answered);
    m.count("stage.stub.failed", Labels::empty(), totals.failed);
    m.count("stage.stub.timeouts", Labels::empty(), totals.timeouts);
    m.count(
        "stage.stub.retransmits",
        Labels::empty(),
        totals.retransmits,
    );
    m.count(
        "stage.stub.idle_closes",
        Labels::empty(),
        totals.idle_closes,
    );
    m.count("stage.stub.reused", Labels::empty(), totals.reused);

    StubPopulationReport {
        clients: clients as u64,
        totals,
        profiles: PROFILE_LABELS
            .iter()
            .enumerate()
            .map(|(p, label)| ProfileSlice {
                profile: label,
                clients: clients_per_profile[p],
                stats: per_profile[p],
            })
            .collect(),
        sched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StubPopulationConfig {
        StubPopulationConfig {
            clients: 800,
            queries_per_client: 2,
        }
    }

    #[test]
    fn population_report_is_shard_invariant() {
        let run = |shards: usize| {
            let mut world = build_stub_world(97, true);
            let report = stub_population_sharded(&mut world, &small_cfg(), shards);
            (report, world.net.metrics_mut().snapshot())
        };
        let (r1, m1) = run(1);
        let (r2, m2) = run(2);
        let (r8, m8) = run(8);
        assert_eq!(r1.totals, r2.totals);
        assert_eq!(r1.totals, r8.totals);
        assert_eq!(r1.sched, r2.sched);
        assert_eq!(r1.sched, r8.sched);
        for p in 0..4 {
            assert_eq!(r1.profiles[p].stats, r8.profiles[p].stats);
            assert_eq!(r1.profiles[p].clients, r8.profiles[p].clients);
        }
        assert_eq!(m1, m2);
        assert_eq!(m1, m8);
    }

    #[test]
    fn dead_band_times_out_and_rest_answers() {
        let mut world = build_stub_world(98, true);
        let cfg = small_cfg();
        let report = stub_population_sharded(&mut world, &cfg, 4);

        let dead = (0..cfg.clients as u64)
            .filter(|&ci| is_dead_client(ci))
            .count() as u64;
        let qpc = u64::from(cfg.queries_per_client);
        assert_eq!(report.clients, cfg.clients as u64);
        assert_eq!(report.totals.queries, cfg.clients as u64 * qpc);
        assert_eq!(report.totals.failed, dead * qpc, "every dead query fails");
        assert_eq!(
            report.totals.answered,
            (cfg.clients as u64 - dead) * qpc,
            "every live query is answered"
        );
        assert!(report.totals.retransmits > 0, "dead clients retransmit");
        assert!(report.totals.reused > 0, "pooled transports reuse");
        // All four event kinds flowed through the heap.
        for k in 0..SchedEvent::KIND_COUNT {
            assert!(report.sched.fired[k] > 0, "kind {k} fired");
        }
        // Bounded per-machine footprint: a stub never holds more than a
        // handful of pending events.
        assert!(report.sched.peak_outstanding <= 4);
    }

    #[test]
    fn profiles_split_as_configured() {
        let mut world = build_stub_world(99, false);
        let report = stub_population_sharded(&mut world, &small_cfg(), 2);
        let total: u64 = report.profiles.iter().map(|p| p.clients).sum();
        assert_eq!(total, 800);
        assert!(report.profiles[0].clients > report.profiles[1].clients);
        assert!(report.profiles[3].clients > 0, "strict DoT slice present");
        // Strict DoT against a valid certificate answers everything live.
        let strict = &report.profiles[3];
        assert!(strict.stats.answered > 0);
    }
}
