//! A NetworkScan-Mon-style scan detector (§5.2): state-transition
//! detection over per-source flow features, used to confirm that the DoT
//! traffic attributed to client networks is not scanner-generated.

use crate::netflow::FlowRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct ScanDetectorConfig {
    /// Distinct destinations on one port that move a source to
    /// *Suspicious*.
    pub suspicious_fanout: usize,
    /// Distinct destinations that confirm *Scanner*.
    pub scanner_fanout: usize,
    /// Minimum fraction of single-SYN (unanswered) flows for escalation —
    /// scanners probe mostly-dark space, so their flows rarely complete.
    pub min_syn_ratio: f64,
}

impl Default for ScanDetectorConfig {
    fn default() -> Self {
        ScanDetectorConfig {
            suspicious_fanout: 16,
            scanner_fanout: 64,
            min_syn_ratio: 0.8,
        }
    }
}

/// Per-source verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanVerdict {
    /// Ordinary client behaviour.
    Benign,
    /// Elevated fan-out, not yet confirmed.
    Suspicious,
    /// Confirmed scanning behaviour.
    Scanner,
}

#[derive(Default)]
struct SrcState {
    dsts: BTreeSet<Ipv4Addr>,
    flows: usize,
    syn_only: usize,
}

/// Classify every source in the record stream.
pub fn detect_scanners(
    records: &[FlowRecord],
    port: u16,
    config: ScanDetectorConfig,
) -> BTreeMap<Ipv4Addr, ScanVerdict> {
    let mut state: BTreeMap<Ipv4Addr, SrcState> = BTreeMap::new();
    for r in records {
        if r.dst_port != port {
            continue;
        }
        let s = state.entry(r.src).or_default();
        s.dsts.insert(r.dst);
        s.flows += 1;
        if r.is_single_syn() {
            s.syn_only += 1;
        }
    }
    state
        .into_iter()
        .map(|(src, s)| {
            let syn_ratio = s.syn_only as f64 / s.flows.max(1) as f64;
            let verdict =
                if s.dsts.len() >= config.scanner_fanout && syn_ratio >= config.min_syn_ratio {
                    ScanVerdict::Scanner
                } else if s.dsts.len() >= config.suspicious_fanout
                    && syn_ratio >= config.min_syn_ratio / 2.0
                {
                    ScanVerdict::Suspicious
                } else {
                    ScanVerdict::Benign
                };
            (src, verdict)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dot_traffic, DotTrafficConfig};

    #[test]
    fn planted_scanner_flagged_clients_benign() {
        let ds = generate_dot_traffic(&DotTrafficConfig::default());
        let verdicts = detect_scanners(&ds.records, 853, ScanDetectorConfig::default());
        // The planted research scanner is confirmed.
        for scanner in &ds.scanner_sources {
            assert_eq!(verdicts.get(scanner), Some(&ScanVerdict::Scanner));
        }
        // No genuine client source is flagged as a scanner (the paper's
        // §5.2 validation: "we do not get any alert on port-853 scanning
        // activities related to the client networks").
        let flagged: Vec<_> = verdicts
            .iter()
            .filter(|(src, v)| **v == ScanVerdict::Scanner && !ds.scanner_sources.contains(src))
            .collect();
        assert!(flagged.is_empty(), "false positives: {flagged:?}");
    }

    #[test]
    fn fanout_thresholds() {
        use crate::netflow::{TCP_ACK, TCP_PSH, TCP_SYN};
        use tlssim::DateStamp;
        let date = DateStamp::from_ymd(2018, 8, 1);
        let mk = |src: &str, dst_last: u8, flags: u8| FlowRecord {
            src: src.parse().unwrap(),
            dst: std::net::Ipv4Addr::new(5, 5, 5, dst_last),
            dst_port: 853,
            sampled_packets: 1,
            bytes: 40,
            tcp_flags: flags,
            date,
        };
        // A chatty but benign client: many flows, one destination.
        let mut records: Vec<FlowRecord> = (0..100)
            .map(|_| mk("64.9.9.9", 1, TCP_SYN | TCP_ACK | TCP_PSH))
            .collect();
        // A scanner: single-SYN to 100 distinct destinations.
        for i in 0..100u8 {
            records.push(mk("198.18.9.9", i, TCP_SYN));
        }
        let verdicts = detect_scanners(&records, 853, ScanDetectorConfig::default());
        assert_eq!(
            verdicts.get(&"64.9.9.9".parse().unwrap()),
            Some(&ScanVerdict::Benign)
        );
        assert_eq!(
            verdicts.get(&"198.18.9.9".parse().unwrap()),
            Some(&ScanVerdict::Scanner)
        );
    }
}
