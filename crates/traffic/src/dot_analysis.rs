//! The §5.2 analysis pipeline: from sampled flow records to Figures 11
//! and 12.

use crate::netflow::FlowRecord;
use netsim::telemetry::{Labels, Registry};
use netsim::Netblock;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use tlssim::DateStamp;

/// Per-/24 activity (one point of Figure 12).
#[derive(Debug, Clone, PartialEq)]
pub struct NetblockActivity {
    /// The client /24.
    pub block: Netblock,
    /// Flow records attributed.
    pub flows: usize,
    /// Share of all DoT flows.
    pub share: f64,
    /// Distinct days with traffic.
    pub active_days: usize,
}

/// Everything §5.2 reports.
#[derive(Debug, Clone)]
pub struct DotTrafficReport {
    /// Monthly flow counts per resolver label (Figure 11's series).
    pub monthly: BTreeMap<String, BTreeMap<String, usize>>,
    /// Per-/24 activity, descending by share (Figure 12's points).
    pub netblocks: Vec<NetblockActivity>,
    /// Flows excluded as single-SYN (scan residue).
    pub excluded_single_syn: usize,
    /// Flows excluded for an unknown destination (not in the DoT resolver
    /// list built by the Section 3 scans).
    pub excluded_unknown_dst: usize,
    /// Total DoT flows analysed.
    pub total_flows: usize,
}

impl DotTrafficReport {
    /// Share of traffic carried by the top `n` netblocks.
    pub fn top_share(&self, n: usize) -> f64 {
        self.netblocks.iter().take(n).map(|b| b.share).sum()
    }

    /// Fraction of netblocks active for fewer than `days` days, and the
    /// share of traffic they carry.
    pub fn short_lived(&self, days: usize) -> (f64, f64) {
        if self.netblocks.is_empty() {
            return (0.0, 0.0);
        }
        let short: Vec<&NetblockActivity> = self
            .netblocks
            .iter()
            .filter(|b| b.active_days < days)
            .collect();
        (
            short.len() as f64 / self.netblocks.len() as f64,
            short.iter().map(|b| b.share).sum(),
        )
    }
}

/// Run the analysis: `resolver_labels` maps known DoT resolver addresses
/// (from the Section 3 scans) to display labels.
pub fn analyze_dot(
    records: &[FlowRecord],
    resolver_labels: &BTreeMap<Ipv4Addr, String>,
) -> DotTrafficReport {
    analyze_dot_metered(records, resolver_labels, &mut Registry::disabled())
}

/// [`analyze_dot`] with telemetry: inclusion/exclusion tallies and flow
/// volume land in `metrics` as `stage.traffic.*` series, alongside the
/// counts the report itself carries.
pub fn analyze_dot_metered(
    records: &[FlowRecord],
    resolver_labels: &BTreeMap<Ipv4Addr, String>,
    metrics: &mut Registry,
) -> DotTrafficReport {
    let mut monthly: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut per_block: BTreeMap<Netblock, (usize, BTreeSet<DateStamp>)> = BTreeMap::new();
    let mut excluded_single_syn = 0usize;
    let mut excluded_unknown_dst = 0usize;
    let mut total = 0usize;
    let flow_bytes = metrics.histogram("stage.traffic.flow_bytes", Labels::empty());

    for record in records {
        if record.dst_port != 853 {
            continue;
        }
        if record.is_single_syn() {
            excluded_single_syn += 1;
            continue;
        }
        let Some(label) = resolver_labels.get(&record.dst) else {
            excluded_unknown_dst += 1;
            continue;
        };
        total += 1;
        metrics.observe(flow_bytes, record.bytes);
        *monthly
            .entry(label.clone())
            .or_default()
            .entry(record.date.month_label())
            .or_default() += 1;
        let entry = per_block.entry(record.src_slash24()).or_default();
        entry.0 += 1;
        entry.1.insert(record.date);
    }

    let mut netblocks: Vec<NetblockActivity> = per_block
        .into_iter()
        .map(|(block, (flows, days))| NetblockActivity {
            block,
            flows,
            share: flows as f64 / total.max(1) as f64,
            active_days: days.len(),
        })
        .collect();
    netblocks.sort_by_key(|b| std::cmp::Reverse(b.flows));

    metrics.count("stage.traffic.flows_total", Labels::empty(), total as u64);
    metrics.count(
        "stage.traffic.excluded_single_syn",
        Labels::empty(),
        excluded_single_syn as u64,
    );
    metrics.count(
        "stage.traffic.excluded_unknown_dst",
        Labels::empty(),
        excluded_unknown_dst as u64,
    );

    DotTrafficReport {
        monthly,
        netblocks,
        excluded_single_syn,
        excluded_unknown_dst,
        total_flows: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dot_traffic, DotTrafficConfig};
    use worldgen::providers::anchors;

    fn labels() -> BTreeMap<Ipv4Addr, String> {
        let mut m = BTreeMap::new();
        m.insert(anchors::CLOUDFLARE_PRIMARY, "Cloudflare".to_string());
        m.insert(anchors::QUAD9_PRIMARY, "Quad9".to_string());
        m
    }

    #[test]
    fn figure11_series_shape() {
        let ds = generate_dot_traffic(&DotTrafficConfig::default());
        let report = analyze_dot(&ds.records, &labels());
        let cf = report.monthly.get("Cloudflare").expect("cloudflare series");
        // Growth Jul→Dec 2018 around 56%.
        let jul = *cf.get("2018-07").unwrap() as f64;
        let dec = *cf.get("2018-12").unwrap() as f64;
        assert!((0.35..0.80).contains(&((dec - jul) / jul)));
        // Quad9 series exists across the window.
        let q9 = report.monthly.get("Quad9").expect("quad9 series");
        assert!(q9.contains_key("2017-08"));
        assert!(q9.contains_key("2018-11"));
        // Scanner SYNs were excluded.
        assert!(report.excluded_single_syn >= 400);
    }

    #[test]
    fn figure12_concentration_and_churn() {
        let ds = generate_dot_traffic(&DotTrafficConfig::default());
        let report = analyze_dot(&ds.records, &labels());
        // Top-5 ≈ 44%, top-20 ≈ 60% (Finding 4.1).
        let top5 = report.top_share(5);
        let top20 = report.top_share(20);
        assert!((0.32..0.55).contains(&top5), "top5 {top5}");
        assert!((0.48..0.72).contains(&top20), "top20 {top20}");
        assert!(top20 > top5);
        // 96% of netblocks active < 7 days, carrying ~25%.
        let (frac_blocks, frac_traffic) = report.short_lived(7);
        assert!(frac_blocks > 0.85, "short-lived blocks {frac_blocks}");
        assert!(
            (0.15..0.40).contains(&frac_traffic),
            "short-lived traffic {frac_traffic}"
        );
        // Netblock total near the paper's 5,623.
        let n = report.netblocks.len();
        assert!((4_000..7_000).contains(&n), "netblocks {n}");
    }

    #[test]
    fn unknown_destinations_excluded() {
        let ds = generate_dot_traffic(&DotTrafficConfig::default());
        // Label only Cloudflare: Quad9 flows become unknown-dst.
        let mut only_cf = BTreeMap::new();
        only_cf.insert(anchors::CLOUDFLARE_PRIMARY, "Cloudflare".to_string());
        let report = analyze_dot(&ds.records, &only_cf);
        assert!(report.excluded_unknown_dst > 1_000);
        assert!(!report.monthly.contains_key("Quad9"));
    }
}
