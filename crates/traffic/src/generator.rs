//! The 18-month DoT client-population model behind Figures 11 and 12.
//!
//! Records are generated *post-sampling*: for each (netblock, day, target)
//! the expected number of sampled flow records λ is computed and a
//! Poisson(λ) count drawn — mathematically equivalent to generating the
//! ~150× larger real-flow population and pushing it through the 1/3,000
//! collector (the collector itself is implemented and property-tested in
//! [`crate::netflow`]), at a fraction of the memory.

use crate::netflow::{poisson, FlowRecord, TCP_ACK, TCP_FIN, TCP_PSH, TCP_SYN};
use netsim::Netblock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use tlssim::DateStamp;
use worldgen::providers::anchors;

/// Traffic-model calibration (Finding 4.1).
#[derive(Debug, Clone)]
pub struct DotTrafficConfig {
    /// Seed.
    pub seed: u64,
    /// NetFlow observation window start (paper: Jul 2017).
    pub start: DateStamp,
    /// Months covered (paper: 18, through Dec 2018/Jan 2019).
    pub months: u32,
    /// Monthly sampled Cloudflare-DoT flow target at the window's end
    /// (Dec 2018: 7,318).
    pub cloudflare_dec2018: f64,
    /// Monthly sampled Cloudflare-DoT flows in Jul 2018 (4,674 — the 56%
    /// growth baseline).
    pub cloudflare_jul2018: f64,
    /// Mean monthly Quad9 flows (fluctuating).
    pub quad9_monthly: f64,
    /// Share of traffic carried by the top 5 netblocks (44%).
    pub top5_share: f64,
    /// Share carried by netblocks 6–20 (top-20 total 60%).
    pub next15_share: f64,
    /// Share carried by short-lived netblocks (25%).
    pub temporary_share: f64,
    /// Total distinct client /24s across the window (5,623).
    pub total_netblocks: u32,
    /// Traditional-DNS-to-DoT volume ratio (the "2-3 orders of magnitude"
    /// comparison; only the summary number is generated).
    pub do53_ratio: f64,
}

impl Default for DotTrafficConfig {
    fn default() -> Self {
        DotTrafficConfig {
            seed: 360,
            start: DateStamp::from_ymd(2017, 7, 1),
            months: 18,
            cloudflare_dec2018: 7_318.0,
            cloudflare_jul2018: 4_674.0,
            quad9_monthly: 1_400.0,
            top5_share: 0.44,
            next15_share: 0.16,
            temporary_share: 0.25,
            total_netblocks: 5_623,
            do53_ratio: 900.0,
        }
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct TrafficDataset {
    /// Sampled flow records, chronological.
    pub records: Vec<FlowRecord>,
    /// Ground truth: netblocks that were short-lived (< 1 week).
    pub temporary_blocks: Vec<Netblock>,
    /// Ground truth: the heavy persistent netblocks.
    pub persistent_blocks: Vec<Netblock>,
    /// Estimated sampled traditional-DNS flows per month (for the orders-
    /// of-magnitude comparison).
    pub do53_monthly_estimate: f64,
    /// Planted research-scanner sources (for the scan-detection check).
    pub scanner_sources: Vec<Ipv4Addr>,
}

/// Cloudflare's monthly intensity: zero before its Apr 2018 launch, then a
/// ramp through the calibration points.
fn cloudflare_monthly(cfg: &DotTrafficConfig, month_start: DateStamp) -> f64 {
    let launch = DateStamp::from_ymd(2018, 4, 1);
    let jul = DateStamp::from_ymd(2018, 7, 1);
    if month_start < launch {
        return 0.0;
    }
    if month_start < jul {
        // Ramp from ~1/4 of the July figure at launch.
        let months_in = ((month_start - launch) / 30) as f64;
        return cfg.cloudflare_jul2018 * (0.25 + 0.25 * months_in);
    }
    // Jul→Dec 2018: the calibrated 56% growth, linear per month, and
    // continuing gently afterwards.
    let months_past_jul = ((month_start - jul) / 30) as f64;
    let slope = (cfg.cloudflare_dec2018 - cfg.cloudflare_jul2018) / 5.0;
    cfg.cloudflare_jul2018 + slope * months_past_jul
}

fn quad9_monthly(cfg: &DotTrafficConfig, _month_index: u32, rng: &mut SmallRng) -> f64 {
    // Fluctuates ±40% around the mean.
    cfg.quad9_monthly * rng.gen_range(0.6..1.4)
}

/// A heavy netblock's address pool (clients within the /24).
fn block_addr(block: Netblock, rng: &mut SmallRng) -> Ipv4Addr {
    block.addr(1 + rng.gen_range(0..200) as u64)
}

/// Generate the dataset.
pub fn generate_dot_traffic(cfg: &DotTrafficConfig) -> TrafficDataset {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut records: Vec<FlowRecord> = Vec::new();

    // Netblock roster: 20 heavy + ~180 steady + temporaries.
    let heavy_count = 20usize;
    let steady_count = (cfg.total_netblocks as f64 * 0.04 - heavy_count as f64).max(50.0) as usize;
    let mut persistent_blocks = Vec::new();
    for i in 0..(heavy_count + steady_count) {
        persistent_blocks.push(Netblock::new(
            Ipv4Addr::new(80, (i / 250) as u8, (i % 250) as u8, 0),
            24,
        ));
    }
    let temp_total = cfg.total_netblocks as usize - persistent_blocks.len();
    let mut temporary_blocks = Vec::new();
    for i in 0..temp_total {
        temporary_blocks.push(Netblock::new(
            Ipv4Addr::new(
                81 + (i / 65_000) as u8,
                ((i / 250) % 260) as u8,
                (i % 250) as u8,
                0,
            ),
            24,
        ));
    }

    // Per-block weight among the persistent set.
    // top5 : next15 : steady = top5_share : next15_share : rest-temp.
    let steady_share = (1.0 - cfg.top5_share - cfg.next15_share - cfg.temporary_share).max(0.02);
    let mut weights: Vec<f64> = Vec::with_capacity(persistent_blocks.len());
    for i in 0..persistent_blocks.len() {
        let w = if i < 5 {
            cfg.top5_share / 5.0
        } else if i < 20 {
            cfg.next15_share / 15.0
        } else {
            steady_share / steady_count as f64
        };
        weights.push(w);
    }

    let mut temp_cursor = 0usize;
    for month in 0..cfg.months {
        let month_start = cfg.start.add_months(month);
        let next_month = cfg.start.add_months(month + 1);
        let days = (next_month - month_start) as u32;
        let targets: [(Ipv4Addr, f64); 2] = [
            (
                anchors::CLOUDFLARE_PRIMARY,
                cloudflare_monthly(cfg, month_start),
            ),
            (anchors::QUAD9_PRIMARY, quad9_monthly(cfg, month, &mut rng)),
        ];
        for (dst, monthly) in targets {
            if monthly <= 0.0 {
                continue;
            }
            // Persistent blocks: their share, spread over days.
            for (block, w) in persistent_blocks.iter().zip(&weights) {
                let lambda_day = monthly * (1.0 - cfg.temporary_share) * w
                    / (cfg.top5_share + cfg.next15_share + steady_share)
                    / days as f64;
                for day in 0..days {
                    let n = poisson(lambda_day, &mut rng);
                    for _ in 0..n {
                        records.push(dot_record(
                            block_addr(*block, &mut rng),
                            dst,
                            month_start + day as i64,
                            &mut rng,
                        ));
                    }
                }
            }
            // Temporary blocks: short-lived bursts.
            let temp_budget = monthly * cfg.temporary_share;
            let bursts = (temp_budget / 3.0).round() as usize; // ~3 flows per burst
            for _ in 0..bursts {
                if temp_cursor >= temporary_blocks.len() {
                    temp_cursor = 0;
                }
                let block = temporary_blocks[temp_cursor];
                temp_cursor += 1;
                let active_days = rng.gen_range(1..=5u32).min(days);
                let start_day = rng.gen_range(0..days.saturating_sub(active_days).max(1));
                let flows = rng.gen_range(2..=4u32);
                for f in 0..flows {
                    let day = start_day + (f % active_days);
                    records.push(dot_record(
                        block_addr(block, &mut rng),
                        dst,
                        month_start + day as i64,
                        &mut rng,
                    ));
                }
            }
        }
    }

    // Research scanners: port-853 SYNs sprayed across many destinations —
    // present on the wire, excluded by the single-SYN rule and flagged by
    // the detector.
    let scanner: Ipv4Addr = "198.51.100.10".parse().expect("static");
    for i in 0..400u32 {
        records.push(FlowRecord {
            src: scanner,
            dst: Ipv4Addr::new(5, (i % 200) as u8 + 1, (i / 200) as u8, 1),
            dst_port: 853,
            sampled_packets: 1,
            bytes: 40,
            tcp_flags: TCP_SYN,
            date: DateStamp::from_ymd(2019, 2, 1),
        });
    }

    records.sort_by_key(|r| r.date);
    let do53_monthly_estimate = cfg.cloudflare_dec2018 * cfg.do53_ratio;
    TrafficDataset {
        records,
        temporary_blocks,
        persistent_blocks,
        do53_monthly_estimate,
        scanner_sources: vec![scanner],
    }
}

fn dot_record(src: Ipv4Addr, dst: Ipv4Addr, date: DateStamp, rng: &mut SmallRng) -> FlowRecord {
    FlowRecord {
        src,
        dst,
        dst_port: 853,
        sampled_packets: rng.gen_range(1..=3),
        bytes: rng.gen_range(150..900),
        tcp_flags: TCP_SYN | TCP_ACK | TCP_PSH | TCP_FIN,
        date,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_cloudflare_counts_hit_calibration() {
        let cfg = DotTrafficConfig::default();
        let ds = generate_dot_traffic(&cfg);
        let month_count = |y: i32, m: u32| {
            let start = DateStamp::from_ymd(y, m, 1);
            let end = start.add_months(1);
            ds.records
                .iter()
                .filter(|r| r.dst == anchors::CLOUDFLARE_PRIMARY && r.date >= start && r.date < end)
                .count() as f64
        };
        let jul = month_count(2018, 7);
        let dec = month_count(2018, 12);
        assert!((4_200.0..5_200.0).contains(&jul), "Jul 2018: {jul}");
        assert!((6_600.0..8_000.0).contains(&dec), "Dec 2018: {dec}");
        let growth = (dec - jul) / jul;
        assert!(
            (0.40..0.75).contains(&growth),
            "growth {growth} (paper: 56%)"
        );
        // Nothing before the launch.
        assert_eq!(month_count(2018, 1), 0.0);
    }

    #[test]
    fn quad9_present_through_whole_window() {
        let cfg = DotTrafficConfig::default();
        let ds = generate_dot_traffic(&cfg);
        let early = ds
            .records
            .iter()
            .filter(|r| {
                r.dst == anchors::QUAD9_PRIMARY && r.date < DateStamp::from_ymd(2017, 10, 1)
            })
            .count();
        assert!(early > 100, "Quad9 flows early in the window: {early}");
    }

    #[test]
    fn do53_dwarfs_dot() {
        let cfg = DotTrafficConfig::default();
        let ds = generate_dot_traffic(&cfg);
        assert!(ds.do53_monthly_estimate / cfg.cloudflare_dec2018 >= 100.0);
    }

    #[test]
    fn deterministic() {
        let cfg = DotTrafficConfig::default();
        let a = generate_dot_traffic(&cfg);
        let b = generate_dot_traffic(&cfg);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[100], b.records[100]);
    }
}
