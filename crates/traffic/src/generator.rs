//! The 18-month DoT client-population model behind Figures 11 and 12.
//!
//! Records are generated *post-sampling*: for each (netblock, day, target)
//! the expected number of sampled flow records λ is computed and a
//! Poisson(λ) count drawn — mathematically equivalent to generating the
//! ~150× larger real-flow population and pushing it through the 1/3,000
//! collector (the collector itself is implemented and property-tested in
//! [`crate::netflow`]), at a fraction of the memory.

use crate::netflow::{poisson, FlowRecord, TCP_ACK, TCP_FIN, TCP_PSH, TCP_SYN};
use netsim::sched::{SchedEvent, Scheduler};
use netsim::{mix_seed, Netblock, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use tlssim::DateStamp;
use worldgen::providers::anchors;

/// Traffic-model calibration (Finding 4.1).
#[derive(Debug, Clone)]
pub struct DotTrafficConfig {
    /// Seed.
    pub seed: u64,
    /// NetFlow observation window start (paper: Jul 2017).
    pub start: DateStamp,
    /// Months covered (paper: 18, through Dec 2018/Jan 2019).
    pub months: u32,
    /// Monthly sampled Cloudflare-DoT flow target at the window's end
    /// (Dec 2018: 7,318).
    pub cloudflare_dec2018: f64,
    /// Monthly sampled Cloudflare-DoT flows in Jul 2018 (4,674 — the 56%
    /// growth baseline).
    pub cloudflare_jul2018: f64,
    /// Mean monthly Quad9 flows (fluctuating).
    pub quad9_monthly: f64,
    /// Share of traffic carried by the top 5 netblocks (44%).
    pub top5_share: f64,
    /// Share carried by netblocks 6–20 (top-20 total 60%).
    pub next15_share: f64,
    /// Share carried by short-lived netblocks (25%).
    pub temporary_share: f64,
    /// Total distinct client /24s across the window (5,623).
    pub total_netblocks: u32,
    /// Traditional-DNS-to-DoT volume ratio (the "2-3 orders of magnitude"
    /// comparison; only the summary number is generated).
    pub do53_ratio: f64,
}

impl Default for DotTrafficConfig {
    fn default() -> Self {
        DotTrafficConfig {
            seed: 360,
            start: DateStamp::from_ymd(2017, 7, 1),
            months: 18,
            cloudflare_dec2018: 7_318.0,
            cloudflare_jul2018: 4_674.0,
            quad9_monthly: 1_400.0,
            top5_share: 0.44,
            next15_share: 0.16,
            temporary_share: 0.25,
            total_netblocks: 5_623,
            do53_ratio: 900.0,
        }
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct TrafficDataset {
    /// Sampled flow records, chronological.
    pub records: Vec<FlowRecord>,
    /// Ground truth: netblocks that were short-lived (< 1 week).
    pub temporary_blocks: Vec<Netblock>,
    /// Ground truth: the heavy persistent netblocks.
    pub persistent_blocks: Vec<Netblock>,
    /// Estimated sampled traditional-DNS flows per month (for the orders-
    /// of-magnitude comparison).
    pub do53_monthly_estimate: f64,
    /// Planted research-scanner sources (for the scan-detection check).
    pub scanner_sources: Vec<Ipv4Addr>,
}

/// Cloudflare's monthly intensity: zero before its Apr 2018 launch, then a
/// ramp through the calibration points.
fn cloudflare_monthly(cfg: &DotTrafficConfig, month_start: DateStamp) -> f64 {
    let launch = DateStamp::from_ymd(2018, 4, 1);
    let jul = DateStamp::from_ymd(2018, 7, 1);
    if month_start < launch {
        return 0.0;
    }
    if month_start < jul {
        // Ramp from ~1/4 of the July figure at launch.
        let months_in = ((month_start - launch) / 30) as f64;
        return cfg.cloudflare_jul2018 * (0.25 + 0.25 * months_in);
    }
    // Jul→Dec 2018: the calibrated 56% growth, linear per month, and
    // continuing gently afterwards.
    let months_past_jul = ((month_start - jul) / 30) as f64;
    let slope = (cfg.cloudflare_dec2018 - cfg.cloudflare_jul2018) / 5.0;
    cfg.cloudflare_jul2018 + slope * months_past_jul
}

fn quad9_monthly(cfg: &DotTrafficConfig, _month_index: u32, rng: &mut SmallRng) -> f64 {
    // Fluctuates ±40% around the mean.
    cfg.quad9_monthly * rng.gen_range(0.6..1.4)
}

/// A heavy netblock's address pool (clients within the /24).
fn block_addr(block: Netblock, rng: &mut SmallRng) -> Ipv4Addr {
    block.addr(1 + rng.gen_range(0..200) as u64)
}

/// The two observed resolvers, indexed as `MonthInfo::intensity` is.
const TARGETS: [Ipv4Addr; 2] = [anchors::CLOUDFLARE_PRIMARY, anchors::QUAD9_PRIMARY];

/// One calendar month of the observation window, with the monthly flow
/// intensity for each target precomputed in the planning pass.
struct MonthInfo {
    start: DateStamp,
    days: u32,
    intensity: [f64; 2],
}

/// Virtual instant of a calendar day on the generation timeline.
fn day_instant(origin: DateStamp, date: DateStamp) -> SimTime {
    SimTime::EPOCH + SimDuration::from_secs((date - origin).max(0) as u64 * 86_400)
}

/// A persistent netblock as an emitter machine: one scheduler event per
/// day, emitting that day's Poisson draw for every active target, then
/// rescheduling itself for the next day. Owns its RNG stream, so the
/// records it emits don't depend on what other machines do.
struct BlockEmitter {
    block: Netblock,
    /// `(1 - temp_share) · w / Σshares` — multiply by monthly/days for λ.
    weight_term: f64,
    rng: SmallRng,
    month: usize,
    day: u32,
}

impl BlockEmitter {
    fn on_event(
        &mut self,
        months: &[MonthInfo],
        sched: &mut Scheduler,
        index: u64,
        out: &mut Vec<FlowRecord>,
    ) {
        let mi = &months[self.month];
        let date = mi.start + self.day as i64;
        for (t, dst) in TARGETS.iter().enumerate() {
            let monthly = mi.intensity[t];
            if monthly <= 0.0 {
                continue;
            }
            let lambda_day = monthly * self.weight_term / mi.days as f64;
            let n = poisson(lambda_day, &mut self.rng);
            for _ in 0..n {
                out.push(dot_record(
                    block_addr(self.block, &mut self.rng),
                    *dst,
                    date,
                    &mut self.rng,
                ));
            }
        }
        self.day += 1;
        if self.day >= mi.days {
            self.day = 0;
            self.month += 1;
        }
        if let Some(next) = months.get(self.month) {
            sched.schedule(
                day_instant(months[0].start, next.start + self.day as i64),
                index,
                SchedEvent::Timer {
                    token: self.month as u32,
                },
            );
        }
    }
}

/// One short-lived burst: a single event at its month's start that draws
/// the burst's placement and emits its 2–4 flows.
struct BurstEmitter {
    block: Netblock,
    dst: Ipv4Addr,
    month: usize,
    rng: SmallRng,
}

impl BurstEmitter {
    fn on_event(&mut self, months: &[MonthInfo], out: &mut Vec<FlowRecord>) {
        let mi = &months[self.month];
        let days = mi.days;
        let active_days = self.rng.gen_range(1..=5u32).min(days);
        let start_day = self
            .rng
            .gen_range(0..days.saturating_sub(active_days).max(1));
        let flows = self.rng.gen_range(2..=4u32);
        for f in 0..flows {
            let day = start_day + (f % active_days);
            out.push(dot_record(
                block_addr(self.block, &mut self.rng),
                self.dst,
                mi.start + day as i64,
                &mut self.rng,
            ));
        }
    }
}

enum TrafficMachine {
    Block(BlockEmitter),
    Burst(BurstEmitter),
}

/// RNG stream salts: one family per machine kind plus the planning pass.
const BLOCK_STREAM: u64 = 0x626c_6f63_6b73; // "blocks"
const BURST_STREAM: u64 = 0x6275_7273_7473; // "bursts"
const PLAN_STREAM: u64 = 0x706c_616e; // "plan"

/// Generate the dataset.
///
/// A planning pass lays out the netblock roster, the per-month target
/// intensities and the burst assignments; emission then runs event-driven
/// on a discrete-event [`Scheduler`]: every persistent netblock and every
/// burst is a machine with its own seeded RNG stream, firing in virtual-day
/// order off the heap. The heap's `(instant, seq)` total order makes the
/// emission sequence — and therefore the dataset — deterministic.
pub fn generate_dot_traffic(cfg: &DotTrafficConfig) -> TrafficDataset {
    // --- Planning pass -------------------------------------------------
    let mut plan_rng = SmallRng::seed_from_u64(mix_seed(cfg.seed, PLAN_STREAM));

    // Netblock roster: 20 heavy + ~180 steady + temporaries.
    let heavy_count = 20usize;
    let steady_count = (cfg.total_netblocks as f64 * 0.04 - heavy_count as f64).max(50.0) as usize;
    let mut persistent_blocks = Vec::new();
    for i in 0..(heavy_count + steady_count) {
        persistent_blocks.push(Netblock::new(
            Ipv4Addr::new(80, (i / 250) as u8, (i % 250) as u8, 0),
            24,
        ));
    }
    let temp_total = cfg.total_netblocks as usize - persistent_blocks.len();
    let mut temporary_blocks = Vec::new();
    for i in 0..temp_total {
        temporary_blocks.push(Netblock::new(
            Ipv4Addr::new(
                81 + (i / 65_000) as u8,
                ((i / 250) % 260) as u8,
                (i % 250) as u8,
                0,
            ),
            24,
        ));
    }

    // Per-block weight among the persistent set.
    // top5 : next15 : steady = top5_share : next15_share : rest-temp.
    let steady_share = (1.0 - cfg.top5_share - cfg.next15_share - cfg.temporary_share).max(0.02);
    let mut weights: Vec<f64> = Vec::with_capacity(persistent_blocks.len());
    for i in 0..persistent_blocks.len() {
        let w = if i < 5 {
            cfg.top5_share / 5.0
        } else if i < 20 {
            cfg.next15_share / 15.0
        } else {
            steady_share / steady_count as f64
        };
        weights.push(w);
    }
    let shares_sum = cfg.top5_share + cfg.next15_share + steady_share;

    // Month calendar with per-target intensities (Quad9's fluctuation is
    // drawn here, in month order, from the planning stream).
    let months: Vec<MonthInfo> = (0..cfg.months)
        .map(|month| {
            let start = cfg.start.add_months(month);
            let days = (cfg.start.add_months(month + 1) - start) as u32;
            MonthInfo {
                start,
                days,
                intensity: [
                    cloudflare_monthly(cfg, start),
                    quad9_monthly(cfg, month, &mut plan_rng),
                ],
            }
        })
        .collect();

    // --- Machine construction ------------------------------------------
    let mut machines: Vec<TrafficMachine> = persistent_blocks
        .iter()
        .zip(&weights)
        .enumerate()
        .map(|(i, (block, w))| {
            TrafficMachine::Block(BlockEmitter {
                block: *block,
                weight_term: (1.0 - cfg.temporary_share) * w / shares_sum,
                rng: SmallRng::seed_from_u64(mix_seed(mix_seed(cfg.seed, BLOCK_STREAM), i as u64)),
                month: 0,
                day: 0,
            })
        })
        .collect();

    // Temporary blocks: burst assignments walk the roster in plan order,
    // exactly as the sequential generator's cursor did.
    let mut temp_cursor = 0usize;
    let mut burst_count = 0u64;
    for (month, mi) in months.iter().enumerate() {
        for (t, dst) in TARGETS.iter().enumerate() {
            if mi.intensity[t] <= 0.0 {
                continue;
            }
            let bursts = (mi.intensity[t] * cfg.temporary_share / 3.0).round() as usize;
            for _ in 0..bursts {
                if temp_cursor >= temporary_blocks.len() {
                    temp_cursor = 0;
                }
                let block = temporary_blocks[temp_cursor];
                temp_cursor += 1;
                machines.push(TrafficMachine::Burst(BurstEmitter {
                    block,
                    dst: *dst,
                    month,
                    rng: SmallRng::seed_from_u64(mix_seed(
                        mix_seed(cfg.seed, BURST_STREAM),
                        burst_count,
                    )),
                }));
                burst_count += 1;
            }
        }
    }

    // --- Event-driven emission -----------------------------------------
    let mut sched = Scheduler::new();
    for (i, machine) in machines.iter().enumerate() {
        match machine {
            TrafficMachine::Block(_) => {
                sched.schedule(
                    day_instant(cfg.start, months[0].start),
                    i as u64,
                    SchedEvent::Timer { token: 0 },
                );
            }
            TrafficMachine::Burst(b) => {
                sched.schedule(
                    day_instant(cfg.start, months[b.month].start),
                    i as u64,
                    SchedEvent::Timer {
                        token: b.month as u32,
                    },
                );
            }
        }
    }
    let mut records: Vec<FlowRecord> = Vec::new();
    while let Some(fired) = sched.pop() {
        match &mut machines[fired.machine as usize] {
            TrafficMachine::Block(b) => {
                b.on_event(&months, &mut sched, fired.machine, &mut records)
            }
            TrafficMachine::Burst(b) => b.on_event(&months, &mut records),
        }
    }

    // Research scanners: port-853 SYNs sprayed across many destinations —
    // present on the wire, excluded by the single-SYN rule and flagged by
    // the detector.
    let scanner: Ipv4Addr = "198.51.100.10".parse().expect("static");
    for i in 0..400u32 {
        records.push(FlowRecord {
            src: scanner,
            dst: Ipv4Addr::new(5, (i % 200) as u8 + 1, (i / 200) as u8, 1),
            dst_port: 853,
            sampled_packets: 1,
            bytes: 40,
            tcp_flags: TCP_SYN,
            date: DateStamp::from_ymd(2019, 2, 1),
        });
    }

    records.sort_by_key(|r| r.date);
    let do53_monthly_estimate = cfg.cloudflare_dec2018 * cfg.do53_ratio;
    TrafficDataset {
        records,
        temporary_blocks,
        persistent_blocks,
        do53_monthly_estimate,
        scanner_sources: vec![scanner],
    }
}

fn dot_record(src: Ipv4Addr, dst: Ipv4Addr, date: DateStamp, rng: &mut SmallRng) -> FlowRecord {
    FlowRecord {
        src,
        dst,
        dst_port: 853,
        sampled_packets: rng.gen_range(1..=3),
        bytes: rng.gen_range(150..900),
        tcp_flags: TCP_SYN | TCP_ACK | TCP_PSH | TCP_FIN,
        date,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_cloudflare_counts_hit_calibration() {
        let cfg = DotTrafficConfig::default();
        let ds = generate_dot_traffic(&cfg);
        let month_count = |y: i32, m: u32| {
            let start = DateStamp::from_ymd(y, m, 1);
            let end = start.add_months(1);
            ds.records
                .iter()
                .filter(|r| r.dst == anchors::CLOUDFLARE_PRIMARY && r.date >= start && r.date < end)
                .count() as f64
        };
        let jul = month_count(2018, 7);
        let dec = month_count(2018, 12);
        assert!((4_200.0..5_200.0).contains(&jul), "Jul 2018: {jul}");
        assert!((6_600.0..8_000.0).contains(&dec), "Dec 2018: {dec}");
        let growth = (dec - jul) / jul;
        assert!(
            (0.40..0.75).contains(&growth),
            "growth {growth} (paper: 56%)"
        );
        // Nothing before the launch.
        assert_eq!(month_count(2018, 1), 0.0);
    }

    #[test]
    fn quad9_present_through_whole_window() {
        let cfg = DotTrafficConfig::default();
        let ds = generate_dot_traffic(&cfg);
        let early = ds
            .records
            .iter()
            .filter(|r| {
                r.dst == anchors::QUAD9_PRIMARY && r.date < DateStamp::from_ymd(2017, 10, 1)
            })
            .count();
        assert!(early > 100, "Quad9 flows early in the window: {early}");
    }

    #[test]
    fn do53_dwarfs_dot() {
        let cfg = DotTrafficConfig::default();
        let ds = generate_dot_traffic(&cfg);
        assert!(ds.do53_monthly_estimate / cfg.cloudflare_dec2018 >= 100.0);
    }

    #[test]
    fn deterministic() {
        let cfg = DotTrafficConfig::default();
        let a = generate_dot_traffic(&cfg);
        let b = generate_dot_traffic(&cfg);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[100], b.records[100]);
    }
}
