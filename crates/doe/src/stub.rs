//! The user-facing stub resolver: profile-driven transport selection,
//! fallback, and connection reuse.
//!
//! This is the API a downstream application embeds (what Stubby or the
//! Android 9 "Private DNS" setting are to real users). It composes the
//! transport clients according to RFC 8310 usage profiles:
//!
//! * **Strict DoT** — authenticate or fail; *no* fallback.
//! * **Opportunistic DoT** — try DoT without requiring authentication;
//!   fall back to clear text if the encrypted channel cannot be built at
//!   all (the profile's documented privacy trade-off).
//! * **DoH** — Strict by construction; no fallback (RFC 8484).
//! * **Clear text** — Do53/UDP with TCP retry on truncation.
//!
//! Sessions are pooled: consecutive queries reuse the established
//! connection, which is the configuration the paper's performance study
//! considers the common case (§4.1).

use crate::do53::{do53_udp_query, Do53TcpConn};
use crate::doh::{Bootstrap, DohClient, DohMethod, DohSession};
use crate::dot::{DotClient, DotSession};
use crate::error::{DnsTransport, QueryError, QueryReply, TransportInfo};
use dnswire::{builder, Message, RecordType};
use httpsim::UriTemplate;
use netsim::{Network, SimDuration};
use rand::Rng;
use std::net::Ipv4Addr;
use tlssim::{DateStamp, TlsClientConfig, TrustStore};

/// Which profile the stub runs.
#[derive(Debug, Clone)]
pub enum StubProfile {
    /// RFC 8310 Strict Privacy over DoT.
    StrictDot {
        /// Authentication domain name (obtained out of band).
        auth_name: String,
    },
    /// RFC 8310 Opportunistic Privacy over DoT.
    OpportunisticDot {
        /// Whether total DoT failure may fall back to clear text.
        fallback_clear: bool,
    },
    /// RFC 8484 DoH (Strict-only by design).
    Doh {
        /// Service template.
        template: UriTemplate,
        /// GET or POST.
        method: DohMethod,
        /// Address discovery.
        bootstrap: Bootstrap,
    },
    /// Traditional clear-text DNS over UDP.
    ClearText,
    /// Clear-text DNS over TCP with a pooled connection — the baseline
    /// transport of the paper's client-side tests (§4.1).
    ClearTextTcp,
}

/// Stub configuration.
#[derive(Debug, Clone)]
pub struct StubConfig {
    /// The recursive resolver to use.
    pub resolver: Ipv4Addr,
    /// Profile / transport selection.
    pub profile: StubProfile,
    /// Trust anchors for TLS-based transports.
    pub trust_store: TrustStore,
    /// Certificate-verification date.
    pub now: DateStamp,
    /// Query timeout.
    pub timeout: SimDuration,
}

enum PooledSession {
    None,
    Dot(DotSession),
    Doh(DohSession),
    Tcp(Do53TcpConn),
}

/// A stub resolver with a pooled connection.
pub struct StubResolver {
    config: StubConfig,
    dot: Option<DotClient>,
    doh: Option<DohClient>,
    session: PooledSession,
    /// Count of queries that used a pooled (reused) session.
    reused_queries: u64,
}

impl StubResolver {
    /// Build a stub from config.
    pub fn new(config: StubConfig) -> Self {
        let dot = match &config.profile {
            StubProfile::StrictDot { .. } => Some(DotClient::new(TlsClientConfig::strict(
                config.trust_store.clone(),
                config.now,
            ))),
            StubProfile::OpportunisticDot { .. } => Some(DotClient::new(
                TlsClientConfig::opportunistic(config.trust_store.clone(), config.now),
            )),
            _ => None,
        };
        let doh = match &config.profile {
            StubProfile::Doh {
                template,
                method,
                bootstrap,
            } => Some(DohClient::new(
                TlsClientConfig::strict(config.trust_store.clone(), config.now),
                template.clone(),
                *method,
                *bootstrap,
            )),
            _ => None,
        };
        StubResolver {
            config,
            dot,
            doh,
            session: PooledSession::None,
            reused_queries: 0,
        }
    }

    /// How many queries were answered over a reused connection.
    pub fn reused_queries(&self) -> u64 {
        self.reused_queries
    }

    /// Drop the pooled session (simulating idle expiry).
    pub fn expire_session(&mut self, net: &mut Network) {
        match std::mem::replace(&mut self.session, PooledSession::None) {
            PooledSession::Dot(s) => s.close(net),
            PooledSession::Doh(s) => s.close(net),
            PooledSession::Tcp(c) => c.close(net),
            PooledSession::None => {}
        }
    }

    /// Resolve `name`/`rtype` from `src`, reusing the pooled session when
    /// possible and applying the profile's fallback rules.
    pub fn resolve(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        name: &str,
        rtype: RecordType,
    ) -> Result<QueryReply, QueryError> {
        let id = net.rng().gen();
        let query = builder::query(id, name, rtype)?;
        // One transparent retry on a fresh session if a pooled session
        // turns out to be dead.
        let had_pooled = !matches!(self.session, PooledSession::None);
        match self.query_via_session(net, src, &query) {
            Ok(reply) => {
                if had_pooled {
                    self.reused_queries += 1;
                }
                Ok(reply)
            }
            Err(first_err) if had_pooled => {
                self.session = PooledSession::None;
                match self.query_via_session(net, src, &query) {
                    Ok(reply) => Ok(reply),
                    Err(_) => self.try_fallback(net, src, &query, first_err),
                }
            }
            Err(e) => self.try_fallback(net, src, &query, e),
        }
    }

    fn query_via_session(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        query: &Message,
    ) -> Result<QueryReply, QueryError> {
        // Establish a session if none is pooled.
        if matches!(self.session, PooledSession::None) {
            self.session = match &self.config.profile {
                StubProfile::StrictDot { auth_name } => {
                    let auth_name = auth_name.clone();
                    let dot = self.dot.as_mut().ok_or_else(|| {
                        QueryError::Protocol("stub configured for DoT without a DoT client".into())
                    })?;
                    PooledSession::Dot(dot.session(
                        net,
                        src,
                        self.config.resolver,
                        Some(&auth_name),
                    )?)
                }
                StubProfile::OpportunisticDot { .. } => {
                    let dot = self.dot.as_mut().ok_or_else(|| {
                        QueryError::Protocol("stub configured for DoT without a DoT client".into())
                    })?;
                    PooledSession::Dot(dot.session(net, src, self.config.resolver, None)?)
                }
                StubProfile::Doh { .. } => {
                    let doh = self.doh.as_mut().ok_or_else(|| {
                        QueryError::Protocol("stub configured for DoH without a DoH client".into())
                    })?;
                    PooledSession::Doh(doh.session(net, src)?)
                }
                StubProfile::ClearTextTcp => PooledSession::Tcp(Do53TcpConn::connect(
                    net,
                    src,
                    self.config.resolver,
                    self.config.timeout,
                )?),
                StubProfile::ClearText => PooledSession::None,
            };
        }
        match &mut self.session {
            PooledSession::Dot(session) => session.query(net, query),
            PooledSession::Doh(session) => session.query(net, query),
            PooledSession::Tcp(conn) => conn.query(net, query),
            PooledSession::None => {
                // Clear-text UDP needs no session.
                do53_udp_query(
                    net,
                    src,
                    self.config.resolver,
                    query,
                    self.config.timeout,
                    1,
                )
            }
        }
    }

    fn try_fallback(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        query: &Message,
        original: QueryError,
    ) -> Result<QueryReply, QueryError> {
        match &self.config.profile {
            StubProfile::OpportunisticDot {
                fallback_clear: true,
            } => {
                let mut reply = do53_udp_query(
                    net,
                    src,
                    self.config.resolver,
                    query,
                    self.config.timeout,
                    1,
                )?;
                reply.transport = TransportInfo::clear(DnsTransport::Do53Udp);
                Ok(reply)
            }
            // Strict profiles and DoH never fall back.
            _ => Err(original),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::do53::{Do53TcpService, Do53UdpService};
    use crate::dot::DotServerService;
    use crate::responder::{AuthoritativeServer, DnsResponder};
    use dnswire::zone::Zone;
    use dnswire::{Name, RData, Rcode};
    use netsim::{HostMeta, NetworkConfig};
    use std::sync::Arc;
    use tlssim::{CaHandle, KeyId, TlsServerConfig};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    struct World {
        net: Network,
        client: Ipv4Addr,
        resolver: Ipv4Addr,
        store: TrustStore,
    }

    fn world(valid_cert: bool, with_dot: bool) -> World {
        let mut net = Network::new(NetworkConfig::default(), 71);
        let resolver: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.8".parse().unwrap();
        net.add_host(HostMeta::new(resolver).country("US").asn(19281).anycast());
        net.add_host(HostMeta::new(client).country("IT").asn(3269));
        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.13".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
        net.bind_udp(
            resolver,
            53,
            Arc::new(Do53UdpService::new(Arc::clone(&responder))),
        );
        net.bind_tcp(
            resolver,
            53,
            Arc::new(Do53TcpService::new(Arc::clone(&responder))),
        );

        let ca = CaHandle::new("Quad9 CA", KeyId(1), now() + -100, 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        if with_dot {
            let leaf = if valid_cert {
                ca.issue(
                    "dns.quad9.net",
                    vec![],
                    KeyId(2),
                    1,
                    now() + -10,
                    now() + 365,
                )
            } else {
                CaHandle::self_signed("bad", vec![], KeyId(2), 1, now() + -10, now() + 365)
            };
            net.bind_tcp(
                resolver,
                853,
                Arc::new(DotServerService::new(
                    TlsServerConfig::new(vec![leaf], KeyId(2)),
                    responder,
                )),
            );
        }
        World {
            net,
            client,
            resolver,
            store,
        }
    }

    fn stub(w: &World, profile: StubProfile) -> StubResolver {
        StubResolver::new(StubConfig {
            resolver: w.resolver,
            profile,
            trust_store: w.store.clone(),
            now: now(),
            timeout: SimDuration::from_secs(5),
        })
    }

    #[test]
    fn strict_dot_resolves_and_reuses() {
        let mut w = world(true, true);
        let mut stub = stub(
            &w,
            StubProfile::StrictDot {
                auth_name: "dns.quad9.net".into(),
            },
        );
        for i in 0..4 {
            let reply = stub
                .resolve(
                    &mut w.net,
                    w.client,
                    &format!("q{i}.probe.example"),
                    RecordType::A,
                )
                .unwrap();
            assert_eq!(reply.message.rcode(), Rcode::NoError);
            assert_eq!(reply.transport.protocol, DnsTransport::Dot);
        }
        assert_eq!(stub.reused_queries(), 3);
    }

    #[test]
    fn strict_dot_fails_closed_on_bad_cert() {
        let mut w = world(false, true);
        let mut stub = stub(
            &w,
            StubProfile::StrictDot {
                auth_name: "dns.quad9.net".into(),
            },
        );
        let err = stub
            .resolve(&mut w.net, w.client, "x.probe.example", RecordType::A)
            .unwrap_err();
        assert!(err.is_cert_failure());
    }

    #[test]
    fn opportunistic_dot_proceeds_on_bad_cert() {
        let mut w = world(false, true);
        let mut stub = stub(
            &w,
            StubProfile::OpportunisticDot {
                fallback_clear: true,
            },
        );
        let reply = stub
            .resolve(&mut w.net, w.client, "x.probe.example", RecordType::A)
            .unwrap();
        // Still DoT — bad cert alone doesn't force clear-text fallback.
        assert_eq!(reply.transport.protocol, DnsTransport::Dot);
        assert!(matches!(reply.transport.verify, Some(Err(_))));
    }

    #[test]
    fn opportunistic_falls_back_to_clear_when_dot_unreachable() {
        let mut w = world(true, false); // no DoT service bound at all
        let mut stub = stub(
            &w,
            StubProfile::OpportunisticDot {
                fallback_clear: true,
            },
        );
        let reply = stub
            .resolve(&mut w.net, w.client, "y.probe.example", RecordType::A)
            .unwrap();
        assert_eq!(reply.transport.protocol, DnsTransport::Do53Udp);
        assert_eq!(reply.message.answers.len(), 1);
    }

    #[test]
    fn opportunistic_without_fallback_fails() {
        let mut w = world(true, false);
        let mut stub = stub(
            &w,
            StubProfile::OpportunisticDot {
                fallback_clear: false,
            },
        );
        assert!(stub
            .resolve(&mut w.net, w.client, "z.probe.example", RecordType::A)
            .is_err());
    }

    #[test]
    fn clear_text_profile_works() {
        let mut w = world(true, false);
        let mut stub = stub(&w, StubProfile::ClearText);
        let reply = stub
            .resolve(&mut w.net, w.client, "c.probe.example", RecordType::A)
            .unwrap();
        assert_eq!(reply.transport.protocol, DnsTransport::Do53Udp);
    }

    #[test]
    fn clear_text_tcp_profile_pools_connection() {
        let mut w = world(true, false);
        let mut stub = stub(&w, StubProfile::ClearTextTcp);
        for i in 0..3 {
            let reply = stub
                .resolve(
                    &mut w.net,
                    w.client,
                    &format!("t{i}.probe.example"),
                    RecordType::A,
                )
                .unwrap();
            assert_eq!(reply.transport.protocol, DnsTransport::Do53Tcp);
        }
        assert_eq!(stub.reused_queries(), 2);
    }

    #[test]
    fn expired_session_recovers_transparently() {
        let mut w = world(true, true);
        let mut stub = stub(
            &w,
            StubProfile::StrictDot {
                auth_name: "dns.quad9.net".into(),
            },
        );
        stub.resolve(&mut w.net, w.client, "a.probe.example", RecordType::A)
            .unwrap();
        stub.expire_session(&mut w.net);
        let reply = stub
            .resolve(&mut w.net, w.client, "b.probe.example", RecordType::A)
            .unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        // Second session resumed from the cached ticket.
        assert!(reply.transport.resumed);
    }
}
