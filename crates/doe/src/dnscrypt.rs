//! DNSCrypt v2 (2011): the oldest protocol in the comparison.
//!
//! Key properties modelled, matching the Table 1 evaluation:
//!
//! * **not TLS** — a bespoke construction (X25519-XSalsa20Poly1305 in
//!   reality; our simulated AEAD here), which is why Table 1 dings it on
//!   "uses standard TLS" and why it was never standardised by the IETF,
//! * runs on **port 443 over UDP or TCP** (mixing with HTTPS traffic),
//! * the client first fetches a signed **provider certificate** via a
//!   clear-text TXT query for `2.dnscrypt-cert.<provider>`, pinning the
//!   provider's public key out of band (no web-PKI trust store),
//! * queries are then encrypted under a shared key derived from both
//!   sides' key material.

use crate::error::{DnsTransport, QueryError, QueryReply, TransportInfo};
use crate::responder::DnsResponder;
use dnswire::{builder, Message, RData, RecordType};
use netsim::{Network, PeerInfo, ServiceCtx, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::cert::fnv1a;
use tlssim::record::{open, seal, SessionKey};

/// The magic query name prefix for provider certificates.
pub const CERT_QUERY_PREFIX: &str = "2.dnscrypt-cert";

/// A DNSCrypt provider certificate, distributed via TXT records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderCert {
    /// The provider's resolver public key (simulated).
    pub resolver_pk: u64,
    /// Certificate serial.
    pub serial: u32,
    /// Signature by the provider's long-term key (which clients pin).
    pub signature: u64,
}

impl ProviderCert {
    /// Issue a certificate under the provider's long-term secret.
    pub fn issue(provider_secret: u64, resolver_pk: u64, serial: u32) -> Self {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&resolver_pk.to_be_bytes());
        buf.extend_from_slice(&serial.to_be_bytes());
        buf.extend_from_slice(&provider_secret.to_be_bytes());
        ProviderCert {
            resolver_pk,
            serial,
            signature: fnv1a(&buf),
        }
    }

    /// Verify against the pinned provider public key (same value as the
    /// secret in this simulation).
    pub fn verify(&self, pinned_provider_key: u64) -> bool {
        *self == ProviderCert::issue(pinned_provider_key, self.resolver_pk, self.serial)
    }

    fn to_txt(self) -> Vec<u8> {
        // ProviderCert is a plain value struct; serialising it cannot fail,
        // and an empty TXT (rejected by `from_txt`) beats an abort.
        serde_json::to_vec(&self).unwrap_or_default()
    }

    fn from_txt(data: &[u8]) -> Option<Self> {
        serde_json::from_slice(data).ok()
    }
}

/// Encrypted DNSCrypt envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    /// Client ephemeral public key (simulated).
    client_pk: u64,
    /// Sealed DNS message.
    payload: Vec<u8>,
}

fn shared_key(client_pk: u64, resolver_pk: u64) -> SessionKey {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&client_pk.to_be_bytes());
    buf.extend_from_slice(&resolver_pk.to_be_bytes());
    SessionKey(fnv1a(&buf))
}

/// A DNSCrypt client pinned to one provider.
pub struct DnsCryptClient {
    /// Provider name (e.g. `example.dnscrypt-cert.opendns.com` apex part).
    provider_name: String,
    /// Pinned provider key (obtained out of band, e.g. from a stamp).
    pinned_key: u64,
    cert: Option<ProviderCert>,
}

impl DnsCryptClient {
    /// Pin `provider_name` with `pinned_key`.
    pub fn new(provider_name: &str, pinned_key: u64) -> Self {
        DnsCryptClient {
            provider_name: provider_name.to_string(),
            pinned_key,
            cert: None,
        }
    }

    /// Fetch and verify the provider certificate (clear-text TXT
    /// bootstrap). Returns the time spent.
    pub fn fetch_cert(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
    ) -> Result<SimDuration, QueryError> {
        let id = net.rng().gen();
        let qname = format!("{CERT_QUERY_PREFIX}.{}", self.provider_name);
        let q = builder::query(id, &qname, RecordType::Txt)?;
        let reply = net.udp_query(
            src,
            resolver,
            crate::DNSCRYPT_PORT,
            &q.encode()?,
            Some(SimDuration::from_secs(5)),
        )?;
        let message = Message::decode(&reply.bytes)?;
        let cert = message
            .answers
            .iter()
            .find_map(|rr| match &rr.rdata {
                RData::Txt(segments) => segments.first().and_then(|s| ProviderCert::from_txt(s)),
                _ => None,
            })
            .ok_or_else(|| QueryError::Protocol("no provider certificate".into()))?;
        if !cert.verify(self.pinned_key) {
            return Err(QueryError::Protocol(
                "provider certificate signature invalid".into(),
            ));
        }
        self.cert = Some(cert);
        Ok(reply.elapsed)
    }

    /// One encrypted query (fetches the certificate first if needed).
    pub fn query(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
        query: &Message,
    ) -> Result<QueryReply, QueryError> {
        let mut bootstrap = SimDuration::ZERO;
        let cert = match self.cert {
            Some(cert) => cert,
            None => {
                bootstrap = self.fetch_cert(net, src, resolver)?;
                self.cert.ok_or_else(|| {
                    QueryError::Protocol("certificate fetch completed without a certificate".into())
                })?
            }
        };
        let client_pk: u64 = net.rng().gen();
        let key = shared_key(client_pk, cert.resolver_pk);
        let envelope = Envelope {
            client_pk,
            payload: seal(key, &query.encode()?),
        };
        let packet = serde_json::to_vec(&envelope)
            .map_err(|e| QueryError::Protocol(format!("encode envelope: {e}")))?;
        let reply = net.udp_query(
            src,
            resolver,
            crate::DNSCRYPT_PORT,
            &packet,
            Some(SimDuration::from_secs(5)),
        )?;
        let env: Envelope = serde_json::from_slice(&reply.bytes)
            .map_err(|_| QueryError::Protocol("bad response envelope".into()))?;
        let plaintext = open(key, &env.payload)?;
        let message = Message::decode(&plaintext)?;
        Ok(QueryReply {
            message,
            latency: reply.elapsed + bootstrap,
            transport: TransportInfo {
                protocol: DnsTransport::DnsCrypt,
                verify: None, // no web PKI involved
                resumed: false,
                connection_reused: false,
            },
        })
    }
}

impl DnsCryptClient {
    /// One encrypted query over TCP (the spec allows both transports;
    /// TCP framing reuses RFC 1035 length prefixes).
    pub fn query_tcp(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
        query: &Message,
    ) -> Result<QueryReply, QueryError> {
        let mut bootstrap = SimDuration::ZERO;
        let cert = match self.cert {
            Some(cert) => cert,
            None => {
                bootstrap = self.fetch_cert(net, src, resolver)?;
                self.cert.ok_or_else(|| {
                    QueryError::Protocol("certificate fetch completed without a certificate".into())
                })?
            }
        };
        let client_pk: u64 = net.rng().gen();
        let key = shared_key(client_pk, cert.resolver_pk);
        let envelope = Envelope {
            client_pk,
            payload: seal(key, &query.encode()?),
        };
        let packet = serde_json::to_vec(&envelope)
            .map_err(|e| QueryError::Protocol(format!("encode envelope: {e}")))?;
        let framed = dnswire::frame_message(&packet)?;
        let mut conn = net.connect(src, resolver, crate::DNSCRYPT_PORT)?;
        let raw = conn.request(net, &framed)?;
        let latency = conn.elapsed() + bootstrap;
        conn.close(net);
        let (frame, _) = dnswire::read_framed(&raw)
            .ok_or_else(|| QueryError::Protocol("no framed response".into()))?;
        let env: Envelope = serde_json::from_slice(frame)
            .map_err(|_| QueryError::Protocol("bad response envelope".into()))?;
        let plaintext = open(key, &env.payload)?;
        let message = Message::decode(&plaintext)?;
        Ok(QueryReply {
            message,
            latency,
            transport: TransportInfo {
                protocol: DnsTransport::DnsCrypt,
                verify: None,
                resumed: false,
                connection_reused: false,
            },
        })
    }
}

/// Server-side DNSCrypt over TCP port 443 (length-framed envelopes).
pub struct DnsCryptTcpService {
    inner: Arc<DnsCryptServerService>,
}

impl DnsCryptTcpService {
    /// Wrap a UDP-side service for TCP framing.
    pub fn new(inner: Arc<DnsCryptServerService>) -> Self {
        DnsCryptTcpService { inner }
    }
}

impl netsim::Service for DnsCryptTcpService {
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn netsim::StreamHandler> {
        struct H {
            inner: Arc<DnsCryptServerService>,
            peer: PeerInfo,
            decoder: dnswire::FrameDecoder,
        }
        impl netsim::StreamHandler for H {
            fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
                use netsim::DatagramService as _;
                self.decoder.push(data);
                let mut out = Vec::new();
                while let Some(frame) = self.decoder.next_message() {
                    if let Some(reply) = self.inner.on_datagram(ctx, self.peer, &frame) {
                        if let Ok(framed) = dnswire::frame_message(&reply) {
                            out.extend_from_slice(&framed);
                        }
                    }
                }
                out
            }
        }
        Box::new(H {
            inner: Arc::clone(&self.inner),
            peer,
            decoder: dnswire::FrameDecoder::new(),
        })
    }

    fn protocol(&self) -> &'static str {
        "dnscrypt-tcp"
    }
}

/// Server-side DNSCrypt over UDP port 443.
pub struct DnsCryptServerService {
    provider_name: String,
    cert: ProviderCert,
    resolver_sk: u64, // equals the public key in this simulation
    responder: Arc<dyn DnsResponder>,
}

impl DnsCryptServerService {
    /// Serve `responder`; the provider certificate is issued on the spot.
    pub fn new(
        provider_name: &str,
        provider_secret: u64,
        resolver_key: u64,
        responder: Arc<dyn DnsResponder>,
    ) -> Self {
        DnsCryptServerService {
            provider_name: provider_name.to_string(),
            cert: ProviderCert::issue(provider_secret, resolver_key, 1),
            resolver_sk: resolver_key,
            responder,
        }
    }

    /// The provider certificate being served.
    pub fn cert(&self) -> ProviderCert {
        self.cert
    }
}

impl netsim::DatagramService for DnsCryptServerService {
    fn on_datagram(
        &self,
        ctx: &mut ServiceCtx<'_>,
        peer: PeerInfo,
        data: &[u8],
    ) -> Option<Vec<u8>> {
        // Clear-text TXT bootstrap?
        if let Ok(query) = Message::decode(data) {
            let question = query.question()?;
            let expected = format!("{CERT_QUERY_PREFIX}.{}", self.provider_name);
            if question.qtype == RecordType::Txt
                && question.qname.to_string().trim_end_matches('.') == expected
            {
                let rr = dnswire::ResourceRecord::new(
                    question.qname.clone(),
                    3600,
                    RData::Txt(vec![self.cert.to_txt()]),
                );
                return builder::answer(&query, vec![rr]).encode().ok();
            }
            // Clear-text non-bootstrap queries are not served.
            return builder::error_response(&query, dnswire::Rcode::Refused)
                .encode()
                .ok();
        }
        // Encrypted envelope.
        let env: Envelope = serde_json::from_slice(data).ok()?;
        let key = shared_key(env.client_pk, self.resolver_sk);
        let plaintext = open(key, &env.payload).ok()?;
        let query = Message::decode(&plaintext).ok()?;
        let response = self.responder.respond(ctx, peer, &query);
        let sealed = Envelope {
            client_pk: env.client_pk,
            payload: seal(key, &response.encode().ok()?),
        };
        serde_json::to_vec(&sealed).ok()
    }

    fn protocol(&self) -> &'static str {
        "dnscrypt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::AuthoritativeServer;
    use dnswire::zone::Zone;
    use dnswire::{Name, Rcode};
    use netsim::{HostMeta, NetworkConfig};

    fn world() -> (Network, Ipv4Addr, Ipv4Addr) {
        let mut net = Network::new(NetworkConfig::default(), 61);
        let resolver: Ipv4Addr = "208.67.222.222".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.6".parse().unwrap();
        net.add_host(HostMeta::new(resolver).country("US").asn(36692).anycast());
        net.add_host(HostMeta::new(client).country("ES").asn(3352));
        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.11".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
        let svc = Arc::new(DnsCryptServerService::new(
            "opendns.com",
            0xbeef_0001,
            0xcafe_0002,
            responder,
        ));
        net.bind_udp(
            resolver,
            crate::DNSCRYPT_PORT,
            Arc::clone(&svc) as Arc<dyn netsim::DatagramService>,
        );
        net.bind_tcp(
            resolver,
            crate::DNSCRYPT_PORT,
            Arc::new(DnsCryptTcpService::new(svc)),
        );
        (net, client, resolver)
    }

    #[test]
    fn bootstrap_then_encrypted_query() {
        let (mut net, client, resolver) = world();
        let mut dc = DnsCryptClient::new("opendns.com", 0xbeef_0001);
        let q = builder::query(1, "a.probe.example", RecordType::A).unwrap();
        let reply = dc.query(&mut net, client, resolver, &q).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.message.answers.len(), 1);
        assert_eq!(reply.transport.protocol, DnsTransport::DnsCrypt);
        assert!(reply.transport.verify.is_none(), "no web PKI involved");
    }

    #[test]
    fn second_query_skips_bootstrap() {
        let (mut net, client, resolver) = world();
        let mut dc = DnsCryptClient::new("opendns.com", 0xbeef_0001);
        let q1 = builder::query(1, "a.probe.example", RecordType::A).unwrap();
        let first = dc.query(&mut net, client, resolver, &q1).unwrap();
        let q2 = builder::query(2, "b.probe.example", RecordType::A).unwrap();
        let second = dc.query(&mut net, client, resolver, &q2).unwrap();
        assert!(
            second.latency < first.latency,
            "bootstrap amortised: {} vs {}",
            second.latency,
            first.latency
        );
    }

    #[test]
    fn wrong_pin_rejects_certificate() {
        let (mut net, client, resolver) = world();
        let mut dc = DnsCryptClient::new("opendns.com", 0xdead_dead);
        let err = dc.fetch_cert(&mut net, client, resolver).unwrap_err();
        assert!(matches!(err, QueryError::Protocol(_)));
    }

    #[test]
    fn clear_text_queries_refused() {
        let (mut net, client, resolver) = world();
        let q = builder::query(3, "a.probe.example", RecordType::A).unwrap();
        let reply = net
            .udp_query(client, resolver, 443, &q.encode().unwrap(), None)
            .unwrap();
        let msg = Message::decode(&reply.bytes).unwrap();
        assert_eq!(msg.rcode(), Rcode::Refused);
    }

    #[test]
    fn tcp_transport_works_too() {
        let (mut net, client, resolver) = world();
        let mut dc = DnsCryptClient::new("opendns.com", 0xbeef_0001);
        let q = builder::query(9, "tcp.probe.example", RecordType::A).unwrap();
        let reply = dc.query_tcp(&mut net, client, resolver, &q).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.transport.protocol, DnsTransport::DnsCrypt);
    }

    #[test]
    fn provider_cert_verification() {
        let cert = ProviderCert::issue(42, 77, 1);
        assert!(cert.verify(42));
        assert!(!cert.verify(43));
        let mut tampered = cert;
        tampered.resolver_pk ^= 1;
        assert!(!tampered.verify(42));
    }
}
