//! Event-driven stub clients: the [`StubResolver`] connection-reuse and
//! timeout behaviour recast as a state machine on the shard event heap.
//!
//! The per-client loop version of a stub client ran its whole query
//! sequence back to back, so one worker could only hold one client's
//! state at a time. A [`StubMachine`] instead performs one bounded step
//! per fired event and schedules its successors, which lets a single
//! shard interleave millions of concurrent clients:
//!
//! * [`SchedEvent::Timer`] — think time elapsed; issue the next query.
//! * [`SchedEvent::Deliver`] — the in-flight response arrives; record the
//!   sample and arm the next think timer plus an idle-close guard.
//! * [`SchedEvent::IdleClose`] — the pooled connection sat idle past the
//!   configured window; expire it (lazy-cancelled via a generation token
//!   if the connection was used in the meantime).
//! * [`SchedEvent::Retransmit`] — a timed-out flight's backoff elapsed;
//!   try again, up to the attempt budget.
//!
//! Determinism: each machine owns a `SmallRng` seeded from
//! `mix_seed(salt, client_index)` and swaps it into the [`Network`]
//! around every operation ([`Network::swap_rng`]), so a client's draw
//! sequence is identical no matter how machines interleave or how many
//! shards the fleet is split across.

use crate::stub::{StubConfig, StubResolver};
use dnswire::RecordType;
use netsim::sched::{EventMachine, Fired, SchedEvent};
use netsim::{Network, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Fleet-wide pacing parameters, shared by every machine via `Arc`.
#[derive(Debug, Clone)]
pub struct StubPacing {
    /// Logical queries each client issues before finishing.
    pub queries_per_client: u32,
    /// Mean think time between a delivered answer and the next query
    /// (each gap is drawn from the client's own stream).
    pub think_mean: SimDuration,
    /// Idle window after which a pooled connection is closed.
    pub idle_close: SimDuration,
    /// Base retransmission backoff (scaled linearly by attempt).
    pub backoff: SimDuration,
    /// Total attempts per logical query (1 = never retransmit).
    pub max_attempts: u32,
    /// Query-name apex; names are unique per (client, query, attempt) so
    /// shared resolver caches cannot couple machines to each other.
    pub apex: String,
}

impl Default for StubPacing {
    fn default() -> Self {
        StubPacing {
            queries_per_client: 4,
            think_mean: SimDuration::from_secs(30),
            idle_close: SimDuration::from_secs(60),
            backoff: SimDuration::from_secs(2),
            max_attempts: 3,
            apex: "pop.example".into(),
        }
    }
}

/// Per-machine outcome counters; plain integers so fleet totals merge
/// associatively (bit-identical for any shard layout).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StubMachineStats {
    /// Logical queries completed (answered or finally failed).
    pub queries: u64,
    /// Queries that got an answer delivered.
    pub answered: u64,
    /// Queries that exhausted every attempt (or failed hard).
    pub failed: u64,
    /// Timeout errors observed (including ones later retried).
    pub timeouts: u64,
    /// Retransmit events fired.
    pub retransmits: u64,
    /// Idle-close events that actually expired a pooled connection.
    pub idle_closes: u64,
    /// Answered queries that rode a reused (pooled) connection.
    pub reused: u64,
    /// Sum of delivered-answer latencies, microseconds.
    pub latency_sum_us: u64,
}

impl StubMachineStats {
    /// Fold another machine's counters into this one (associative and
    /// commutative — fleet totals are shard-count invariant).
    pub fn absorb(&mut self, other: &StubMachineStats) {
        self.queries += other.queries;
        self.answered += other.answered;
        self.failed += other.failed;
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.idle_closes += other.idle_closes;
        self.reused += other.reused;
        self.latency_sum_us += other.latency_sum_us;
    }
}

enum Phase {
    /// Between queries; a think timer (and possibly an idle-close guard)
    /// is pending.
    Idle,
    /// A query is in flight; its answer is scheduled for delivery.
    Waiting {
        latency_us: u64,
        reused_connection: bool,
    },
    /// All queries done; any still-heaped events are stale.
    Done,
}

/// One event-driven stub client.
pub struct StubMachine {
    /// Dense per-shard machine index (the heap address).
    index: u64,
    /// Global client index (names, seeding).
    client: u64,
    src: Ipv4Addr,
    stub: StubResolver,
    pacing: Arc<StubPacing>,
    rng: SmallRng,
    phase: Phase,
    /// Connection-use generation for lazy idle-close cancellation.
    generation: u32,
    /// Logical queries completed so far.
    completed: u32,
    /// Whether the profile pools a connection at all (clear-text UDP
    /// doesn't; skipping the guard keeps 1M-client heaps lean).
    pools_connection: bool,
    /// Outcome counters, read by the fleet runner after the heap drains.
    pub stats: StubMachineStats,
}

impl StubMachine {
    /// Build a machine. `index` is the dense per-shard heap address,
    /// `client` the global client index, `rng_seed` typically
    /// `mix_seed(salt, client)`.
    pub fn new(
        index: u64,
        client: u64,
        src: Ipv4Addr,
        config: StubConfig,
        pacing: Arc<StubPacing>,
        rng_seed: u64,
    ) -> StubMachine {
        let pools_connection = !matches!(config.profile, crate::stub::StubProfile::ClearText);
        StubMachine {
            index,
            client,
            src,
            stub: StubResolver::new(config),
            pacing,
            rng: SmallRng::seed_from_u64(rng_seed),
            phase: Phase::Idle,
            generation: 0,
            completed: 0,
            pools_connection,
            stats: StubMachineStats::default(),
        }
    }

    /// Whether the machine has finished its query budget.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// The global client index the machine was built with.
    pub fn client_index(&self) -> u64 {
        self.client
    }

    /// Kick the machine off: schedule its first think timer `delay`
    /// after the current virtual time.
    pub fn start(&mut self, net: &mut Network, delay: SimDuration) {
        net.schedule_after(delay, self.index, SchedEvent::Timer { token: 0 });
    }

    /// Issue attempt `attempt` of the current logical query. The machine
    /// RNG is swapped into the network for the duration, so the draw
    /// sequence belongs to this client alone.
    fn issue_query(&mut self, net: &mut Network, attempt: u32) {
        let name = format!(
            "q{}a{}.c{}.{}",
            self.completed, attempt, self.client, self.pacing.apex
        );
        net.swap_rng(&mut self.rng);
        let outcome = self.stub.resolve(net, self.src, &name, RecordType::A);
        net.swap_rng(&mut self.rng);
        match outcome {
            Ok(reply) => {
                self.phase = Phase::Waiting {
                    latency_us: reply.latency.as_micros(),
                    reused_connection: reply.transport.connection_reused,
                };
                net.schedule_after(
                    reply.latency,
                    self.index,
                    SchedEvent::Deliver {
                        token: self.completed,
                    },
                );
            }
            Err(e) => {
                let timed_out = e.is_timeout();
                if timed_out {
                    self.stats.timeouts += 1;
                }
                if timed_out && attempt < self.pacing.max_attempts {
                    // The flight's wasted wait plus a linear backoff.
                    let delay = e.elapsed() + self.pacing.backoff * u64::from(attempt);
                    net.schedule_after(
                        delay,
                        self.index,
                        SchedEvent::Retransmit {
                            attempt: attempt + 1,
                        },
                    );
                } else {
                    self.stats.failed += 1;
                    self.finish_query(net, e.elapsed());
                }
            }
        }
    }

    /// A logical query just completed (answered or exhausted); advance
    /// to the next one or finish, arming think and idle-close events.
    fn finish_query(&mut self, net: &mut Network, consumed: SimDuration) {
        self.stats.queries += 1;
        self.generation = self.generation.wrapping_add(1);
        self.completed += 1;
        if self.completed >= self.pacing.queries_per_client {
            self.phase = Phase::Done;
            // Clean close; later IdleClose events find the machine done.
            self.stub.expire_session(net);
            self.stats.reused = self.stub.reused_queries();
            return;
        }
        self.phase = Phase::Idle;
        // Think gap: 0.2×–2.5× the mean, from this client's own stream.
        // With the default idle window at 2× the mean, a fifth of gaps
        // outlive the pooled connection — both reuse and idle expiry are
        // routinely exercised.
        let frac: f64 = self.rng.gen_range(0.2..2.5);
        let think = SimDuration::from_micros(
            (self.pacing.think_mean.as_micros() as f64 * frac).round() as u64,
        );
        let _ = consumed; // the clock already advanced through Deliver
        net.schedule_after(
            think,
            self.index,
            SchedEvent::Timer {
                token: self.completed,
            },
        );
        if self.pools_connection {
            net.schedule_after(
                self.pacing.idle_close,
                self.index,
                SchedEvent::IdleClose {
                    generation: self.generation,
                },
            );
        }
    }
}

impl EventMachine for StubMachine {
    fn on_event(&mut self, net: &mut Network, fired: Fired) {
        if matches!(self.phase, Phase::Done) {
            return; // stale events after completion
        }
        match fired.event {
            SchedEvent::Timer { .. } => self.issue_query(net, 1),
            SchedEvent::Retransmit { attempt } => {
                self.stats.retransmits += 1;
                self.issue_query(net, attempt);
            }
            SchedEvent::Deliver { .. } => {
                if let Phase::Waiting {
                    latency_us,
                    reused_connection,
                } = self.phase
                {
                    self.stats.answered += 1;
                    self.stats.latency_sum_us += latency_us;
                    let _ = reused_connection;
                    self.finish_query(net, SimDuration::from_micros(latency_us));
                }
            }
            SchedEvent::IdleClose { generation } => {
                // Lazy cancellation: only current-generation closes on an
                // idle machine expire the pooled connection.
                if generation == self.generation && matches!(self.phase, Phase::Idle) {
                    self.stub.expire_session(net);
                    self.stats.idle_closes += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::do53::{Do53TcpService, Do53UdpService};
    use crate::dot::DotServerService;
    use crate::responder::{AuthoritativeServer, DnsResponder};
    use crate::stub::StubProfile;
    use dnswire::zone::Zone;
    use dnswire::{Name, RData};
    use netsim::sched::run_machines;
    use netsim::{
        mix_seed, HostMeta, Netblock, Network, NetworkConfig, PathDecision, PolicyRule, SrcMatch,
    };
    use std::sync::Arc;
    use tlssim::{CaHandle, DateStamp, KeyId, TlsServerConfig, TrustStore};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    fn fleet_net(seed: u64) -> (Network, Ipv4Addr, TrustStore) {
        let mut net = Network::new(NetworkConfig::default(), seed);
        let resolver: Ipv4Addr = "9.9.9.9".parse().unwrap();
        net.add_host(HostMeta::new(resolver).country("US").asn(19281).anycast());
        let apex = Name::parse("pop.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.13".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
        net.bind_udp(
            resolver,
            53,
            Arc::new(Do53UdpService::new(Arc::clone(&responder))),
        );
        net.bind_tcp(
            resolver,
            53,
            Arc::new(Do53TcpService::new(Arc::clone(&responder))),
        );
        let ca = CaHandle::new("Quad9 CA", KeyId(1), now() + -100, 3650);
        let mut store = TrustStore::new();
        store.add(ca.authority());
        let leaf = ca.issue(
            "dns.quad9.net",
            vec![],
            KeyId(2),
            1,
            now() + -10,
            now() + 365,
        );
        net.bind_tcp(
            resolver,
            853,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![leaf], KeyId(2)),
                responder,
            )),
        );
        (net, resolver, store)
    }

    fn machine(
        index: u64,
        net_resolver: Ipv4Addr,
        store: &TrustStore,
        profile: StubProfile,
        pacing: &Arc<StubPacing>,
    ) -> StubMachine {
        let src = Ipv4Addr::new(100, 64, (index / 250) as u8, (index % 250) as u8 + 1);
        StubMachine::new(
            index,
            index,
            src,
            StubConfig {
                resolver: net_resolver,
                profile,
                trust_store: store.clone(),
                now: now(),
                timeout: SimDuration::from_secs(5),
            },
            Arc::clone(pacing),
            mix_seed(4242, index),
        )
    }

    #[test]
    fn fleet_completes_with_reuse_and_idle_closes() {
        let (mut net, resolver, store) = fleet_net(5);
        let pacing = Arc::new(StubPacing {
            queries_per_client: 6,
            think_mean: SimDuration::from_secs(30),
            idle_close: SimDuration::from_secs(60),
            ..StubPacing::default()
        });
        let mut machines: Vec<StubMachine> = (0..40)
            .map(|i| {
                let profile = if i % 2 == 0 {
                    StubProfile::ClearTextTcp
                } else {
                    StubProfile::StrictDot {
                        auth_name: "dns.quad9.net".into(),
                    }
                };
                machine(i, resolver, &store, profile, &pacing)
            })
            .collect();
        for m in machines.iter_mut() {
            let delay = SimDuration::from_micros(m.index * 1_000);
            m.start(&mut net, delay);
        }
        run_machines(&mut net, &mut machines);
        assert_eq!(net.pending_events(), 0);

        let mut total = StubMachineStats::default();
        for m in &machines {
            assert!(m.is_done());
            total.absorb(&m.stats);
        }
        assert_eq!(total.queries, 40 * 6);
        assert_eq!(total.answered, 40 * 6, "healthy fleet answers everything");
        assert!(total.reused > 0, "pooled connections must be reused");
        assert!(
            total.idle_closes > 0,
            "long think gaps must expire sessions"
        );
        assert_eq!(total.timeouts, 0);

        // Scheduler telemetry saw every kind the run produced.
        let stats = net.sched_stats();
        assert!(stats.fired[0] > 0, "timer events");
        assert!(stats.fired[1] > 0, "deliver events");
        assert!(stats.fired[2] > 0, "idle-close events");
    }

    #[test]
    fn blackholed_clients_retransmit_then_fail() {
        let (mut net, resolver, store) = fleet_net(6);
        // Drop everything from one client block: those stubs time out,
        // retransmit up to the attempt budget, then fail the query.
        net.policies_mut().push(
            PolicyRule::new("test blackhole", PathDecision::Blackhole).from_src(SrcMatch::Block(
                Netblock::new("100.64.0.0".parse().unwrap(), 24),
            )),
        );
        let pacing = Arc::new(StubPacing {
            queries_per_client: 2,
            max_attempts: 3,
            ..StubPacing::default()
        });
        let mut machines: Vec<StubMachine> = (0..4)
            .map(|i| machine(i, resolver, &store, StubProfile::ClearText, &pacing))
            .collect();
        for m in machines.iter_mut() {
            m.start(&mut net, SimDuration::ZERO);
        }
        run_machines(&mut net, &mut machines);

        let mut total = StubMachineStats::default();
        for m in &machines {
            total.absorb(&m.stats);
        }
        assert_eq!(total.answered, 0);
        assert_eq!(total.failed, 4 * 2);
        assert_eq!(total.retransmits, 4 * 2 * 2, "two retries per query");
        assert_eq!(total.timeouts, 4 * 2 * 3, "every attempt timed out");
        assert!(net.sched_stats().fired[3] > 0, "retransmit events fired");
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let run = || {
            let (mut net, resolver, store) = fleet_net(7);
            let pacing = Arc::new(StubPacing::default());
            let mut machines: Vec<StubMachine> = (0..16)
                .map(|i| {
                    machine(
                        i,
                        resolver,
                        &store,
                        StubProfile::StrictDot {
                            auth_name: "dns.quad9.net".into(),
                        },
                        &pacing,
                    )
                })
                .collect();
            for m in machines.iter_mut() {
                m.start(&mut net, SimDuration::ZERO);
            }
            run_machines(&mut net, &mut machines);
            machines.iter().map(|m| m.stats).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
