//! Recursive resolvers: cache, upstream forwarding, synthetic resolution
//! delays and failure injection.
//!
//! Public resolvers in the simulation are [`RecursiveResolver`]s exposed
//! through whichever transports the provider supports. Resolution cost on a
//! cache miss is modelled two ways at once:
//!
//! * **Registered zones** (the study's probe domain) are fetched from
//!   their authoritative servers over the simulated network, so the
//!   resolver→nameserver leg costs real round trips, and the authoritative
//!   server's ground-truth log sees the resolver's address — not the
//!   client's (the §4.2 interception forensics rely on this).
//! * **Everything else** is answered synthetically (a deterministic
//!   address derived from the name) after a lognormal *resolution delay* —
//!   the "busy networks or faraway nameservers" of Finding 2.4. Quad9's
//!   back-end gets a heavy-tailed delay profile, which is what its DoH
//!   front-end's 2-second forwarding timeout turns into SERVFAILs.

use crate::responder::DnsResponder;
use dnswire::{builder, Message, Name, RData, Rcode, RecordType, ResourceRecord};
use netsim::{PeerInfo, ServiceCtx, SimDuration, SimTime};
use parking_lot::Mutex;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Longest-suffix map from zone apex to its authoritative server address.
#[derive(Debug, Clone, Default)]
pub struct UpstreamMap {
    entries: Vec<(Name, Ipv4Addr)>,
}

impl UpstreamMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `apex` as served by the authoritative at `addr`.
    pub fn add(&mut self, apex: Name, addr: Ipv4Addr) {
        self.entries.push((apex, addr));
    }

    /// The authoritative server for `name`, if a registered apex contains
    /// it (longest apex wins).
    pub fn lookup(&self, name: &Name) -> Option<Ipv4Addr> {
        self.entries
            .iter()
            .filter(|(apex, _)| name.is_within(apex))
            .max_by_key(|(apex, _)| apex.label_count())
            .map(|(_, addr)| *addr)
    }

    /// Number of registered apexes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Shape of the synthetic resolution delay on cache misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissDelay {
    /// Median delay, milliseconds.
    pub median_ms: f64,
    /// Lognormal sigma; larger means heavier tail.
    pub sigma: f64,
}

impl MissDelay {
    /// A healthy resolver: ~25 ms median, thin tail.
    pub fn healthy() -> Self {
        MissDelay {
            median_ms: 25.0,
            sigma: 0.7,
        }
    }

    /// A congested back-end: ~370 ms median, heavy tail — calibrated so
    /// roughly 13% of misses exceed 2 seconds (Finding 2.4).
    pub fn congested() -> Self {
        MissDelay {
            median_ms: 370.0,
            sigma: 1.5,
        }
    }

    /// Sample one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        SimDuration::from_millis_f64(self.median_ms * (self.sigma * z).exp())
    }
}

/// Behaviour knobs for a recursive resolver.
#[derive(Debug, Clone)]
pub struct RecursiveConfig {
    /// Cache entries kept (FIFO eviction).
    pub cache_capacity: usize,
    /// Probability of answering SERVFAIL spuriously — the background
    /// "Incorrect" rates of Table 4 (fractions of a percent).
    pub servfail_rate: f64,
    /// Timeout for upstream authoritative queries.
    pub upstream_timeout: SimDuration,
    /// Resolution delay profile for synthetic (unregistered) names.
    pub miss_delay: MissDelay,
    /// Whether to answer unregistered names at all (a pure-authoritative
    /// forwarder refuses them).
    pub synthetic_fallback: bool,
    /// Extra delay applied to *every* cache miss, registered zones
    /// included — congested resolver infrastructure. Quad9's back-end gets
    /// [`MissDelay::congested`] here, which its DoH front-end's 2-second
    /// forwarding timeout converts into SERVFAILs (Finding 2.4).
    pub extra_delay: Option<MissDelay>,
    /// QNAME minimisation (RFC 7816): walk down the delegation label by
    /// label, sending only the next label to the upstream, instead of
    /// leaking the full query name at once. Table 8's `QM` column — a
    /// privacy win that costs extra upstream round trips on cold names.
    pub qname_minimisation: bool,
}

impl Default for RecursiveConfig {
    fn default() -> Self {
        RecursiveConfig {
            cache_capacity: 4096,
            servfail_rate: 0.0005,
            upstream_timeout: SimDuration::from_secs(5),
            miss_delay: MissDelay::healthy(),
            synthetic_fallback: true,
            extra_delay: None,
            qname_minimisation: false,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    answers: Vec<ResourceRecord>,
    rcode: Rcode,
    expires: SimTime,
}

/// Counters exposed for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries handled.
    pub queries: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Upstream fetches attempted.
    pub upstream_queries: u64,
    /// Upstream fetches that failed.
    pub upstream_failures: u64,
}

/// A caching recursive resolver.
pub struct RecursiveResolver {
    upstreams: UpstreamMap,
    config: RecursiveConfig,
    cache: Mutex<CacheState>,
    stats: Mutex<ResolverStats>,
}

#[derive(Default)]
struct CacheState {
    map: HashMap<(Name, RecordType), CacheEntry>,
    order: std::collections::VecDeque<(Name, RecordType)>,
}

impl RecursiveResolver {
    /// Build a resolver.
    pub fn new(upstreams: UpstreamMap, config: RecursiveConfig) -> Self {
        RecursiveResolver {
            upstreams,
            config,
            cache: Mutex::new(CacheState::default()),
            stats: Mutex::new(ResolverStats::default()),
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ResolverStats {
        *self.stats.lock()
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().map.len()
    }

    /// Pin an answer in the cache that never expires.
    ///
    /// World construction uses this for names real deployments keep
    /// permanently hot — the DoH front-end hostnames every client
    /// bootstraps through. Without the pin, whether a bootstrap lookup
    /// hits or misses would depend on which worker happened to resolve
    /// the name first, making handler latency (and the telemetry
    /// snapshot) a function of the shard layout.
    pub fn prewarm(&self, name: &Name, rtype: RecordType, answers: Vec<ResourceRecord>) {
        self.cache_put(
            (name.clone(), rtype),
            CacheEntry {
                answers,
                rcode: Rcode::NoError,
                expires: SimTime::from_micros(u64::MAX),
            },
        );
    }

    fn cache_get(&self, key: &(Name, RecordType), now: SimTime) -> Option<CacheEntry> {
        // doe-lint: allow(D006) — hit/miss is shard-layout-invariant: every repeated
        // name is a permanent pin (`prewarm`), all other keys are per-target unique
        let cache = self.cache.lock();
        cache
            .map
            .get(key)
            .filter(|entry| entry.expires > now)
            .cloned()
    }

    fn cache_put(&self, key: (Name, RecordType), entry: CacheEntry) {
        // doe-lint: allow(D006) — fills use per-target-unique keys; the only repeated
        // names are permanent pins installed before any worker runs (`prewarm`)
        let mut cache = self.cache.lock();
        if cache.map.len() >= self.config.cache_capacity {
            if let Some(victim) = cache.order.pop_front() {
                cache.map.remove(&victim);
            }
        }
        if cache.map.insert(key.clone(), entry).is_none() {
            cache.order.push_back(key);
        }
    }

    /// The intermediate ancestor names a minimising resolver probes before
    /// sending the full query: every proper ancestor below the registered
    /// apex, shallowest first.
    fn minimisation_steps(&self, qname: &Name) -> Vec<Name> {
        // Find the deepest registered apex containing the name.
        let mut steps = Vec::new();
        let mut current = qname.parent();
        while let Some(name) = current {
            if self.upstreams.lookup(&name).is_none() {
                break;
            }
            if name.label_count() == 0 {
                break;
            }
            // Stop at the apex itself (nothing to hide there).
            if self.upstreams.lookup(&name).is_some() && name != *qname {
                steps.push(name.clone());
            }
            current = name.parent();
        }
        steps.reverse();
        steps
    }

    /// Deterministic synthetic address for a name — stable across the
    /// simulation so repeated queries validate.
    pub fn synthetic_address(name: &Name) -> Ipv4Addr {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for label in name.labels() {
            for &b in label {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        // Keep out of reserved space: 96.x.x.x - 111.x.x.x.
        let b = h.to_be_bytes();
        Ipv4Addr::new(96 + (b[0] & 0x0f), b[1], b[2], b[3].max(1))
    }
}

impl DnsResponder for RecursiveResolver {
    fn respond(&self, ctx: &mut ServiceCtx<'_>, _peer: PeerInfo, query: &Message) -> Message {
        let Some(question) = query.question() else {
            return builder::error_response(query, Rcode::FormErr);
        };
        let question = question.clone();
        self.stats.lock().queries += 1;

        // Spurious failure injection.
        let flake = ctx.network().rng().gen_bool(self.config.servfail_rate);
        if flake {
            return builder::error_response(query, Rcode::ServFail);
        }

        let key = (question.qname.clone(), question.qtype);
        let now = ctx.network().now();
        if let Some(entry) = self.cache_get(&key, now) {
            self.stats.lock().cache_hits += 1;
            return match entry.rcode {
                Rcode::NoError => builder::answer(query, entry.answers),
                rcode => builder::error_response(query, rcode),
            };
        }

        // Congested-infrastructure delay applies to every miss.
        if let Some(extra) = self.config.extra_delay {
            let d = {
                let rng = ctx.network().rng();
                extra.sample(rng)
            };
            ctx.charge(d);
        }

        // Registered zone: fetch from its authoritative server.
        if let Some(auth_addr) = self.upstreams.lookup(&question.qname) {
            self.stats.lock().upstream_queries += 1;
            let local = ctx.local_addr();
            // QNAME minimisation: probe each intermediate ancestor with an
            // NS query before revealing the full name (RFC 7816 §2).
            if self.config.qname_minimisation {
                if let Some(apex) = self
                    .upstreams
                    .lookup(&question.qname)
                    .map(|_| self.minimisation_steps(&question.qname))
                {
                    for step in apex {
                        let id = ctx.network().rng().gen();
                        let mut probe = Message::new(dnswire::Header::new_query(id));
                        probe
                            .questions
                            .push(dnswire::Question::new(step, RecordType::Ns));
                        if let Ok(bytes) = probe.encode() {
                            if let Ok(reply) = ctx.network().udp_query(
                                local,
                                auth_addr,
                                crate::DO53_PORT,
                                &bytes,
                                Some(self.config.upstream_timeout),
                            ) {
                                ctx.charge(reply.elapsed);
                            }
                        }
                    }
                }
            }
            let upstream_query = {
                let id = ctx.network().rng().gen();
                let mut q = Message::new(dnswire::Header::new_query(id));
                q.questions.push(question.clone());
                q
            };
            let bytes = match upstream_query.encode() {
                Ok(b) => b,
                Err(_) => return builder::error_response(query, Rcode::ServFail),
            };
            let timeout = self.config.upstream_timeout;
            match ctx
                .network()
                .udp_query(local, auth_addr, crate::DO53_PORT, &bytes, Some(timeout))
            {
                Ok(reply) => {
                    ctx.charge(reply.elapsed);
                    match Message::decode(&reply.bytes) {
                        Ok(upstream_resp) => {
                            let ttl = upstream_resp
                                .answers
                                .iter()
                                .map(|rr| rr.ttl)
                                .min()
                                .unwrap_or(60);
                            self.cache_put(
                                key,
                                CacheEntry {
                                    answers: upstream_resp.answers.clone(),
                                    rcode: upstream_resp.rcode(),
                                    expires: now + SimDuration::from_secs(ttl as u64),
                                },
                            );
                            let mut resp = match upstream_resp.rcode() {
                                Rcode::NoError => builder::answer(query, upstream_resp.answers),
                                rcode => builder::error_response(query, rcode),
                            };
                            resp.header.recursion_available = true;
                            resp
                        }
                        Err(_) => builder::error_response(query, Rcode::ServFail),
                    }
                }
                Err(e) => {
                    self.stats.lock().upstream_failures += 1;
                    ctx.charge(e.elapsed());
                    builder::error_response(query, Rcode::ServFail)
                }
            }
        } else if self.config.synthetic_fallback {
            // Unregistered name: synthesise after a resolution delay.
            let delay = {
                let rng = ctx.network().rng();
                self.config.miss_delay.sample(rng)
            };
            ctx.charge(delay);
            let answers = match question.qtype {
                RecordType::A => vec![ResourceRecord::new(
                    question.qname.clone(),
                    300,
                    RData::A(Self::synthetic_address(&question.qname)),
                )],
                _ => Vec::new(),
            };
            self.cache_put(
                key,
                CacheEntry {
                    answers: answers.clone(),
                    rcode: Rcode::NoError,
                    expires: now + SimDuration::from_secs(300),
                },
            );
            builder::answer(query, answers)
        } else {
            builder::error_response(query, Rcode::Refused)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::do53::{do53_udp_query, Do53UdpService};
    use crate::responder::AuthoritativeServer;
    use dnswire::zone::Zone;
    use netsim::{HostMeta, Network, NetworkConfig};
    use std::sync::Arc;

    fn build() -> (Network, Ipv4Addr, Ipv4Addr, crate::responder::QueryLog) {
        let mut net = Network::new(NetworkConfig::default(), 21);
        let client: Ipv4Addr = "198.51.100.2".parse().unwrap();
        let resolver: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let auth: Ipv4Addr = "203.0.113.53".parse().unwrap();
        net.add_host(HostMeta::new(client).country("JP").asn(2516));
        net.add_host(HostMeta::new(resolver).country("US").asn(19281).anycast());
        net.add_host(HostMeta::new(auth).country("US").asn(64510));

        let apex = Name::parse("probe.dnsmeasure.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.99".parse().unwrap()),
        );
        let auth_server = Arc::new(AuthoritativeServer::new(vec![zone]));
        let log = auth_server.log();
        net.bind_udp(auth, 53, Arc::new(Do53UdpService::new(auth_server)));

        let mut upstreams = UpstreamMap::new();
        upstreams.add(apex, auth);
        let recursive = Arc::new(RecursiveResolver::new(
            upstreams,
            RecursiveConfig {
                servfail_rate: 0.0,
                ..RecursiveConfig::default()
            },
        ));
        net.bind_udp(resolver, 53, Arc::new(Do53UdpService::new(recursive)));
        (net, client, resolver, log)
    }

    #[test]
    fn registered_zone_fetched_from_authoritative() {
        let (mut net, client, resolver, log) = build();
        let q = dnswire::builder::query(1, "u7.probe.dnsmeasure.example", RecordType::A).unwrap();
        let reply =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.message.answers.len(), 1);
        // The authoritative server observed the *resolver*, not the client.
        let entries = log.lock();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].observed_src, resolver);
    }

    #[test]
    fn cache_hit_skips_authoritative_and_is_faster() {
        let (mut net, client, resolver, log) = build();
        let q = dnswire::builder::query(2, "same.probe.dnsmeasure.example", RecordType::A).unwrap();
        let first =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        let second =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        assert_eq!(log.lock().len(), 1, "second query served from cache");
        assert!(second.latency < first.latency);
        assert_eq!(first.message.answers, second.message.answers);
    }

    #[test]
    fn unique_prefixes_defeat_cache() {
        let (mut net, client, resolver, log) = build();
        for i in 0..5 {
            let q = dnswire::builder::query(
                i,
                &format!("u{i}.probe.dnsmeasure.example"),
                RecordType::A,
            )
            .unwrap();
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        }
        assert_eq!(log.lock().len(), 5);
    }

    #[test]
    fn prewarmed_entry_hits_without_upstream_traffic() {
        let mut net = Network::new(NetworkConfig::default(), 22);
        let client: Ipv4Addr = "198.51.100.7".parse().unwrap();
        let resolver: Ipv4Addr = "9.9.9.10".parse().unwrap();
        net.add_host(HostMeta::new(client));
        net.add_host(HostMeta::new(resolver));

        let name = Name::parse("doh.example.net").unwrap();
        let front: Ipv4Addr = "203.0.113.80".parse().unwrap();
        // Registered upstream that is never bound: a cache miss would fail,
        // so a correct answer proves the pinned entry served the query.
        let mut upstreams = UpstreamMap::new();
        upstreams.add(name.clone(), "203.0.113.54".parse().unwrap());
        let recursive = Arc::new(RecursiveResolver::new(
            upstreams,
            RecursiveConfig {
                servfail_rate: 0.0,
                ..RecursiveConfig::default()
            },
        ));
        recursive.prewarm(
            &name,
            RecordType::A,
            vec![ResourceRecord::new(name.clone(), 300, RData::A(front))],
        );
        net.bind_udp(
            resolver,
            53,
            Arc::new(Do53UdpService::new(
                Arc::clone(&recursive) as Arc<dyn DnsResponder>
            )),
        );

        let q = dnswire::builder::query(9, "doh.example.net", RecordType::A).unwrap();
        let reply =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.message.answers[0].rdata, RData::A(front));
        let stats = recursive.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.upstream_queries, 0);
    }

    #[test]
    fn synthetic_fallback_is_deterministic() {
        let (mut net, client, resolver, _log) = build();
        let q = dnswire::builder::query(3, "www.some-random-site.com", RecordType::A).unwrap();
        let a =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        let b =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        assert_eq!(a.message.answers, b.message.answers);
        match &a.message.answers[0].rdata {
            RData::A(addr) => {
                assert_eq!(
                    *addr,
                    RecursiveResolver::synthetic_address(
                        &Name::parse("www.some-random-site.com").unwrap()
                    )
                );
            }
            other => panic!("expected A, got {other:?}"),
        }
    }

    #[test]
    fn dead_authoritative_yields_servfail() {
        let (mut net, client, resolver, _log) = build();
        // Kill the authoritative server.
        let auth: Ipv4Addr = "203.0.113.53".parse().unwrap();
        net.remove_host(auth);
        let q = dnswire::builder::query(4, "x.probe.dnsmeasure.example", RecordType::A).unwrap();
        let reply = do53_udp_query(
            &mut net,
            client,
            resolver,
            &q,
            SimDuration::from_secs(30),
            0,
        )
        .unwrap();
        assert_eq!(reply.message.rcode(), Rcode::ServFail);
        // The resolver burned its upstream timeout waiting.
        assert!(reply.latency >= SimDuration::from_secs(5));
    }

    #[test]
    fn congested_miss_delay_exceeds_2s_around_13_percent() {
        let profile = MissDelay::congested();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let n = 20_000;
        let over: usize = (0..n)
            .filter(|_| profile.sample(&mut rng) > SimDuration::from_secs(2))
            .count();
        let frac = over as f64 / n as f64;
        assert!(
            (0.09..=0.17).contains(&frac),
            "P(delay > 2s) = {frac}, want ~0.13"
        );
    }

    #[test]
    fn cache_capacity_evicts() {
        let resolver = RecursiveResolver::new(
            UpstreamMap::new(),
            RecursiveConfig {
                cache_capacity: 2,
                servfail_rate: 0.0,
                ..RecursiveConfig::default()
            },
        );
        let mut net = Network::new(NetworkConfig::default(), 5);
        let server: Ipv4Addr = "192.0.2.1".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.1".parse().unwrap();
        net.add_host(HostMeta::new(server));
        net.add_host(HostMeta::new(client));
        let resolver = Arc::new(resolver);
        net.bind_udp(
            server,
            53,
            Arc::new(Do53UdpService::new(
                Arc::clone(&resolver) as Arc<dyn DnsResponder>
            )),
        );
        for i in 0..4 {
            let q =
                dnswire::builder::query(i, &format!("h{i}.example.com"), RecordType::A).unwrap();
            do53_udp_query(&mut net, client, server, &q, SimDuration::from_secs(5), 0).unwrap();
        }
        assert!(resolver.cache_len() <= 2);
        assert_eq!(resolver.stats().queries, 4);
    }

    use rand::SeedableRng;

    #[test]
    fn qname_minimisation_probes_ancestors_and_costs_more() {
        // Two resolvers over the same authoritative: one minimising, one
        // not. The minimiser sends extra NS probes (visible in the
        // authoritative log) and pays extra latency on cold names.
        let build_with = |qmin: bool, seed: u64| {
            let mut net = Network::new(NetworkConfig::default(), seed);
            let client: Ipv4Addr = "198.51.100.2".parse().unwrap();
            let resolver: Ipv4Addr = "9.9.9.9".parse().unwrap();
            let auth: Ipv4Addr = "203.0.113.53".parse().unwrap();
            net.add_host(HostMeta::new(client).country("JP").asn(2516));
            net.add_host(HostMeta::new(resolver).country("US").asn(19281).anycast());
            net.add_host(HostMeta::new(auth).country("US").asn(64510));
            let apex = Name::parse("probe.dnsmeasure.example").unwrap();
            let mut zone = Zone::new(apex.clone());
            zone.add_record(
                &apex.prepend("*").unwrap(),
                60,
                RData::A("203.0.113.99".parse().unwrap()),
            );
            let auth_server = Arc::new(AuthoritativeServer::new(vec![zone]));
            let log = auth_server.log();
            net.bind_udp(auth, 53, Arc::new(Do53UdpService::new(auth_server)));
            let mut upstreams = UpstreamMap::new();
            upstreams.add(apex, auth);
            let recursive = Arc::new(RecursiveResolver::new(
                upstreams,
                RecursiveConfig {
                    servfail_rate: 0.0,
                    qname_minimisation: qmin,
                    ..RecursiveConfig::default()
                },
            ));
            net.bind_udp(resolver, 53, Arc::new(Do53UdpService::new(recursive)));
            (net, client, resolver, log)
        };

        let (mut net, client, resolver, log) = build_with(true, 7);
        let q =
            dnswire::builder::query(1, "deep.sub.probe.dnsmeasure.example", RecordType::A).unwrap();
        let with =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        let probes_with = log.lock().len();

        let (mut net, client, resolver, log) = build_with(false, 7);
        let q =
            dnswire::builder::query(1, "deep.sub.probe.dnsmeasure.example", RecordType::A).unwrap();
        let without =
            do53_udp_query(&mut net, client, resolver, &q, SimDuration::from_secs(5), 0).unwrap();
        let probes_without = log.lock().len();

        assert!(
            probes_with > probes_without,
            "{probes_with} vs {probes_without}"
        );
        assert!(with.latency > without.latency);
        assert_eq!(with.message.answers, without.message.answers);
        // The NS probes never contained the full name.
        // (the final A query does; ancestors must all be proper prefixes)
        assert!(probes_with >= 2);
    }

    #[test]
    fn upstream_map_longest_suffix() {
        let mut m = UpstreamMap::new();
        let a1: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let a2: Ipv4Addr = "10.0.0.2".parse().unwrap();
        m.add(Name::parse("example.com").unwrap(), a1);
        m.add(Name::parse("deep.example.com").unwrap(), a2);
        assert_eq!(
            m.lookup(&Name::parse("x.deep.example.com").unwrap()),
            Some(a2)
        );
        assert_eq!(m.lookup(&Name::parse("y.example.com").unwrap()), Some(a1));
        assert_eq!(m.lookup(&Name::parse("other.net").unwrap()), None);
    }
}
