//! Client-side query outcomes shared by every transport.

use dnswire::{Message, WireError};
use netsim::{ConnectError, ConnectErrorKind, SimDuration, UdpError};
use std::fmt;
use tlssim::{CertError, TlsError};

/// Which transport carried a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsTransport {
    /// Clear-text DNS over UDP.
    Do53Udp,
    /// Clear-text DNS over TCP.
    Do53Tcp,
    /// DNS over TLS.
    Dot,
    /// DNS over HTTPS.
    Doh,
    /// DNS over QUIC.
    Doq,
    /// DNSCrypt.
    DnsCrypt,
}

impl fmt::Display for DnsTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DnsTransport::Do53Udp => "Do53/UDP",
            DnsTransport::Do53Tcp => "Do53/TCP",
            DnsTransport::Dot => "DoT",
            DnsTransport::Doh => "DoH",
            DnsTransport::Doq => "DoQ",
            DnsTransport::DnsCrypt => "DNSCrypt",
        };
        write!(f, "{s}")
    }
}

/// Transport-level facts attached to a successful reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportInfo {
    /// Transport used (after any fallback).
    pub protocol: DnsTransport,
    /// Certificate verification outcome, for TLS-based transports.
    /// `Some(Err(..))` with a successful lookup means an Opportunistic
    /// client proceeded despite failed authentication — the interception
    /// signature of Finding 2.3.
    pub verify: Option<Result<(), CertError>>,
    /// Whether a TLS session was resumed.
    pub resumed: bool,
    /// Whether the logical connection was reused from a pool.
    pub connection_reused: bool,
}

impl TransportInfo {
    /// Plain clear-text info.
    pub fn clear(protocol: DnsTransport) -> Self {
        TransportInfo {
            protocol,
            verify: None,
            resumed: false,
            connection_reused: false,
        }
    }
}

/// A successful DNS exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// The decoded response (its RCODE may still be an error — rcode
    /// classification is the *measurement's* job, Table 4).
    pub message: Message,
    /// End-to-end latency charged for this query.
    pub latency: SimDuration,
    /// Transport facts.
    pub transport: TransportInfo,
}

/// Raw reply to a wire-level query: the unparsed response payload.
///
/// Produced by the scanners' bulk-probe paths
/// ([`DotSession::query_wire`](crate::dot::DotSession::query_wire),
/// [`DohSession::query_wire`](crate::doh::DohSession::query_wire)), which
/// skip the owned [`Message`] decode so callers can classify replies with
/// `dnswire`'s borrowing `MessageView` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReply {
    /// DNS message bytes (transport framing already stripped).
    pub frame: Vec<u8>,
    /// Time charged for this exchange.
    pub latency: SimDuration,
}

/// A failed DNS exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// TCP-level failure.
    Connect(ConnectError),
    /// UDP-level failure.
    Udp(UdpError),
    /// TLS-level failure (incl. Strict-profile certificate rejection).
    Tls(TlsError),
    /// The response didn't parse.
    Wire(WireError),
    /// HTTP layer said no (non-200 status).
    Http {
        /// The status code received.
        status: u16,
        /// Time spent before the failure.
        elapsed: SimDuration,
    },
    /// All retries exhausted without an answer.
    Timeout {
        /// Total time wasted.
        elapsed: SimDuration,
    },
    /// The transport misbehaved in some other way.
    Protocol(String),
}

impl QueryError {
    /// Virtual time the failed attempt consumed, where attributable.
    pub fn elapsed(&self) -> SimDuration {
        match self {
            QueryError::Connect(e) => e.elapsed,
            QueryError::Udp(e) => e.elapsed(),
            QueryError::Tls(TlsError::Transport(e)) => e.elapsed,
            QueryError::Http { elapsed, .. } | QueryError::Timeout { elapsed } => *elapsed,
            _ => SimDuration::ZERO,
        }
    }

    /// Whether the failure is a *certificate* rejection (Strict profile).
    pub fn is_cert_failure(&self) -> bool {
        matches!(self, QueryError::Tls(TlsError::Cert(_)))
    }

    /// Whether the failure is a *timeout* — nothing came back before the
    /// deadline (blackhole, loss, dead address). This is the class a stub
    /// retransmits on; hard failures (resets, cert rejection, malformed
    /// responses) are not retried.
    pub fn is_timeout(&self) -> bool {
        match self {
            QueryError::Connect(e) => matches!(e.kind, ConnectErrorKind::Timeout),
            QueryError::Udp(e) => matches!(e, UdpError::Timeout { .. }),
            QueryError::Tls(TlsError::Transport(e)) => {
                matches!(e.kind, ConnectErrorKind::Timeout)
            }
            QueryError::Timeout { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Connect(e) => write!(f, "{e}"),
            QueryError::Udp(e) => write!(f, "{e}"),
            QueryError::Tls(e) => write!(f, "{e}"),
            QueryError::Wire(e) => write!(f, "bad response: {e}"),
            QueryError::Http { status, .. } => write!(f, "http status {status}"),
            QueryError::Timeout { elapsed } => write!(f, "query timeout after {elapsed}"),
            QueryError::Protocol(s) => write!(f, "protocol error: {s}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ConnectError> for QueryError {
    fn from(e: ConnectError) -> Self {
        QueryError::Connect(e)
    }
}

impl From<UdpError> for QueryError {
    fn from(e: UdpError) -> Self {
        QueryError::Udp(e)
    }
}

impl From<TlsError> for QueryError {
    fn from(e: TlsError) -> Self {
        QueryError::Tls(e)
    }
}

impl From<WireError> for QueryError {
    fn from(e: WireError) -> Self {
        QueryError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ConnectErrorKind;

    #[test]
    fn elapsed_extraction() {
        let e = QueryError::Connect(ConnectError {
            kind: ConnectErrorKind::Timeout,
            elapsed: SimDuration::from_secs(30),
            rule: None,
        });
        assert_eq!(e.elapsed(), SimDuration::from_secs(30));
        let e = QueryError::Timeout {
            elapsed: SimDuration::from_secs(5),
        };
        assert_eq!(e.elapsed(), SimDuration::from_secs(5));
        assert_eq!(
            QueryError::Protocol("x".into()).elapsed(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn cert_failure_detection() {
        let e = QueryError::Tls(TlsError::Cert(CertError::SelfSigned));
        assert!(e.is_cert_failure());
        assert!(!QueryError::Timeout {
            elapsed: SimDuration::ZERO
        }
        .is_cert_failure());
    }

    #[test]
    fn transport_display() {
        assert_eq!(DnsTransport::Dot.to_string(), "DoT");
        assert_eq!(DnsTransport::Do53Udp.to_string(), "Do53/UDP");
    }
}
