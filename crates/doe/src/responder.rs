//! Server-side DNS logic, transport-independent.
//!
//! A [`DnsResponder`] turns one query [`Message`] into one response. The
//! same responder instance can sit behind Do53/UDP, Do53/TCP, DoT, DoH,
//! DoQ and DNSCrypt services simultaneously — which is exactly how the
//! study's "self-built resolver" (§4.1) is deployed.

use dnswire::zone::{Zone, ZoneLookup};
use dnswire::{builder, Message, Name, Rcode, RecordType};
use netsim::{PeerInfo, ServiceCtx};
use parking_lot::Mutex;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Transform a DNS query into a response.
/// `Send + Sync` because responders are shared across shard workers through
/// the network's data plane.
pub trait DnsResponder: Send + Sync {
    /// Answer one query. The context allows upstream lookups.
    fn respond(&self, ctx: &mut ServiceCtx<'_>, peer: PeerInfo, query: &Message) -> Message;
}

/// One query as witnessed by an authoritative server.
///
/// The *observed source address* is the forensic signal of §4.2: when a
/// middlebox proxies TLS sessions, the authoritative server sees the
/// middlebox's (or the resolver's) address, never the client's — and the
/// study confirmed interception by exactly this comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Source address of the query as seen by the server.
    pub observed_src: Ipv4Addr,
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RecordType,
}

/// Shared, inspectable log of queries reaching a server.
pub type QueryLog = Arc<Mutex<Vec<QueryLogEntry>>>;

/// An authoritative-only server over a set of zones.
pub struct AuthoritativeServer {
    zones: Vec<Zone>,
    log: QueryLog,
}

impl AuthoritativeServer {
    /// Serve the given zones.
    pub fn new(zones: Vec<Zone>) -> Self {
        AuthoritativeServer {
            zones,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the query log (ground truth for the measurements).
    pub fn log(&self) -> QueryLog {
        Arc::clone(&self.log)
    }

    /// The zone containing `name`, if any.
    fn zone_for(&self, name: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_within(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }
}

impl DnsResponder for AuthoritativeServer {
    fn respond(&self, _ctx: &mut ServiceCtx<'_>, peer: PeerInfo, query: &Message) -> Message {
        let Some(question) = query.question() else {
            return builder::error_response(query, Rcode::FormErr);
        };
        // doe-lint: allow(D006) — ground-truth log read as an unordered set by tests
        // only; never rendered into merged reports, so append order is unobservable
        self.log.lock().push(QueryLogEntry {
            observed_src: peer.src,
            qname: question.qname.clone(),
            qtype: question.qtype,
        });
        let Some(zone) = self.zone_for(&question.qname) else {
            return builder::error_response(query, Rcode::Refused);
        };
        match zone.lookup(&question.qname, question.qtype) {
            ZoneLookup::Found(records) => {
                let mut resp = builder::answer(query, records);
                resp.header.authoritative = true;
                resp
            }
            ZoneLookup::NoData => {
                let mut resp = builder::empty_answer(query);
                resp.header.authoritative = true;
                resp
            }
            ZoneLookup::NxDomain => {
                let mut resp = builder::error_response(query, Rcode::NxDomain);
                resp.header.authoritative = true;
                resp
            }
            ZoneLookup::OutOfZone => builder::error_response(query, Rcode::Refused),
        }
    }
}

/// A responder wrapper that pads the inner responder's answers under a
/// [`PaddingPolicy`] — server-side RFC 8467 padding, the other half of
/// the privacy experiment's countermeasure.
///
/// Per RFC 7830 §4, a server only pads when the client's query carried a
/// padding option itself; unpadded clients get byte-identical responses,
/// so wrapping a shared responder never disturbs the clear-text legs.
pub struct PaddedResponder {
    inner: Arc<dyn DnsResponder>,
    policy: dnswire::PaddingPolicy,
}

impl PaddedResponder {
    /// Pad `inner`'s responses under `policy`.
    pub fn new(inner: Arc<dyn DnsResponder>, policy: dnswire::PaddingPolicy) -> Self {
        PaddedResponder { inner, policy }
    }
}

impl DnsResponder for PaddedResponder {
    fn respond(&self, ctx: &mut ServiceCtx<'_>, peer: PeerInfo, query: &Message) -> Message {
        let mut resp = self.inner.respond(ctx, peer, query);
        let client_padded = query.opt().and_then(|o| o.padding_len()).is_some();
        if client_padded {
            let labels = query.question().map(|q| q.qname.label_count()).unwrap_or(0);
            let key = u64::from(query.header.id) | ((labels as u64) << 16);
            if let Some(block) = self.policy.response_block(key) {
                // A response that fails to re-encode is surfaced unpadded;
                // the transport layer will report the encode error itself.
                if resp.pad_to_block(block).is_err() {
                    return resp;
                }
            }
        }
        resp
    }
}

/// A responder that answers every A query with one fixed address —
/// the behaviour of `dnsfilter.com` resolvers toward non-subscribers
/// ("constantly resolve arbitrary domain queries to a fixed IP address",
/// §3.2). The scanner's answer-validation step flags these.
pub struct FixedAnswerResponder {
    answer: Ipv4Addr,
    ttl: u32,
}

impl FixedAnswerResponder {
    /// Always answer with `answer`.
    pub fn new(answer: Ipv4Addr) -> Self {
        FixedAnswerResponder { answer, ttl: 300 }
    }
}

impl DnsResponder for FixedAnswerResponder {
    fn respond(&self, _ctx: &mut ServiceCtx<'_>, _peer: PeerInfo, query: &Message) -> Message {
        let Some(question) = query.question() else {
            return builder::error_response(query, Rcode::FormErr);
        };
        if question.qtype != RecordType::A {
            return builder::empty_answer(query);
        }
        builder::answer(
            query,
            vec![dnswire::ResourceRecord::new(
                question.qname.clone(),
                self.ttl,
                dnswire::RData::A(self.answer),
            )],
        )
    }
}

/// A responder that always refuses — closed resolvers that leave port 853
/// open but serve only their subscribers.
pub struct RefusingResponder;

impl DnsResponder for RefusingResponder {
    fn respond(&self, _ctx: &mut ServiceCtx<'_>, _peer: PeerInfo, query: &Message) -> Message {
        builder::error_response(query, Rcode::Refused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::RData;
    use netsim::{HostMeta, Network, NetworkConfig};

    fn ctx_net() -> Network {
        Network::new(NetworkConfig::default(), 3)
    }

    fn probe_zone() -> Zone {
        let apex = Name::parse("probe.dnsmeasure.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.53".parse().unwrap()),
        );
        zone
    }

    // The unit tests below drive responders through a real UDP service so
    // no private constructors are needed.
    fn query_via_udp(responder: Arc<dyn DnsResponder>, query: &Message) -> Message {
        let mut net = ctx_net();
        let server: Ipv4Addr = "192.0.2.53".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.7".parse().unwrap();
        net.add_host(HostMeta::new(server));
        net.add_host(HostMeta::new(client));
        net.bind_udp(
            server,
            53,
            Arc::new(crate::do53::Do53UdpService::new(responder)),
        );
        let reply = net
            .udp_query(client, server, 53, &query.encode().unwrap(), None)
            .unwrap();
        Message::decode(&reply.bytes).unwrap()
    }

    #[test]
    fn authoritative_answers_wildcard_probe() {
        let auth = Arc::new(AuthoritativeServer::new(vec![probe_zone()]));
        let log = auth.log();
        let q = builder::query(7, "u93.probe.dnsmeasure.example", RecordType::A).unwrap();
        let resp = query_via_udp(auth, &q);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        assert!(resp.header.authoritative);
        // Ground-truth log captured the observed source.
        let entries = log.lock();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].observed_src,
            "198.51.100.7".parse::<Ipv4Addr>().unwrap()
        );
        assert_eq!(
            entries[0].qname.to_string(),
            "u93.probe.dnsmeasure.example."
        );
    }

    #[test]
    fn authoritative_refuses_out_of_zone() {
        let auth = Arc::new(AuthoritativeServer::new(vec![probe_zone()]));
        let q = builder::query(8, "www.google.com", RecordType::A).unwrap();
        let resp = query_via_udp(auth, &q);
        assert_eq!(resp.rcode(), Rcode::Refused);
    }

    #[test]
    fn authoritative_nxdomain_below_zone() {
        let apex = Name::parse("static.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("www").unwrap(),
            60,
            RData::A("192.0.2.1".parse().unwrap()),
        );
        let auth = Arc::new(AuthoritativeServer::new(vec![zone]));
        let q = builder::query(9, "missing.static.example", RecordType::A).unwrap();
        let resp = query_via_udp(auth, &q);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
    }

    #[test]
    fn fixed_answer_ignores_question() {
        let fixed = Arc::new(FixedAnswerResponder::new("103.247.37.1".parse().unwrap()));
        for name in ["a.example", "b.example.net", "anything.at.all"] {
            let q = builder::query(1, name, RecordType::A).unwrap();
            let resp = query_via_udp(Arc::clone(&fixed) as Arc<dyn DnsResponder>, &q);
            match &resp.answers[0].rdata {
                RData::A(addr) => assert_eq!(addr.to_string(), "103.247.37.1"),
                other => panic!("expected A, got {other:?}"),
            }
        }
    }

    #[test]
    fn refusing_responder_refuses() {
        let q = builder::query(2, "x.example", RecordType::A).unwrap();
        let resp = query_via_udp(Arc::new(RefusingResponder), &q);
        assert_eq!(resp.rcode(), Rcode::Refused);
        assert!(resp.answers.is_empty());
    }
}
