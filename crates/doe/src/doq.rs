//! DNS over QUIC (draft-huitema-quic-dnsoquic-05).
//!
//! The paper found *no* real-world DoQ implementation (§2.2), which is why
//! Table 1 marks it unsupported everywhere; this module implements the
//! draft's transport properties so the comparative study (and the Table 1
//! criteria evaluation) rests on running code rather than assertions:
//!
//! * runs over **UDP** on port 784,
//! * **1-RTT** connection setup with the server's certificate delivered in
//!   the first reply (QUIC's combined transport+crypto handshake — no
//!   separate TCP handshake round trip),
//! * per-query *streams*, avoiding TCP head-of-line blocking (modelled:
//!   each query is an independent datagram exchange after setup),
//! * **fallback** to DoT, then clear-text, per the draft's usability goal.
//!
//! The crypto layer reuses [`tlssim`]'s simulated certificates and AEAD.

use crate::error::{DnsTransport, QueryError, QueryReply, TransportInfo};
use crate::responder::DnsResponder;
use dnswire::Message;
use netsim::{Network, PeerInfo, ServiceCtx, SimDuration};
use parking_lot::Mutex;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::cert::fnv1a;
use tlssim::record::{open, seal, SessionKey};
use tlssim::{CertError, Certificate, DateStamp, KeyId, TlsError, TrustStore, VerifyMode};

/// QUIC-style packets exchanged by the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum DoqPacket {
    /// Client initial: carries the client nonce.
    Initial {
        /// Client nonce.
        client_random: u64,
    },
    /// Server reply: certificate chain plus server nonce.
    Handshake {
        /// Server nonce.
        server_random: u64,
        /// Presented chain.
        chain: Vec<Certificate>,
    },
    /// An encrypted DNS message on a fresh stream.
    Stream {
        /// Connection identifier.
        conn_id: u64,
        /// Sealed DNS message.
        payload: Vec<u8>,
    },
    /// Server-side rejection.
    Reject {
        /// Why.
        reason: String,
    },
}

impl DoqPacket {
    fn encode(&self) -> Vec<u8> {
        // DoqPacket is a plain data enum; serialising it cannot fail, and
        // an empty datagram (rejected by `decode`) beats an abort.
        serde_json::to_vec(self).unwrap_or_default()
    }

    fn decode(data: &[u8]) -> Option<DoqPacket> {
        serde_json::from_slice(data).ok()
    }
}

/// An established DoQ connection.
#[derive(Debug)]
pub struct DoqSession {
    resolver: Ipv4Addr,
    src: Ipv4Addr,
    conn_id: u64,
    key: SessionKey,
    verify_result: Result<(), CertError>,
    elapsed: SimDuration,
    queries_sent: u32,
}

/// A DoQ client.
pub struct DoqClient {
    trust_store: TrustStore,
    now: DateStamp,
    verify: VerifyMode,
}

/// One query with the draft's fallback ladder: DoQ → DoT → clear text
/// (draft-huitema-quic-dnsoquic §5.4's usability goal). Returns the reply
/// and which rung answered.
pub fn query_with_fallback(
    net: &mut Network,
    src: Ipv4Addr,
    resolver: Ipv4Addr,
    trust_store: &TrustStore,
    now: DateStamp,
    query: &Message,
) -> Result<QueryReply, QueryError> {
    let doq = DoqClient::new(trust_store.clone(), now, VerifyMode::Opportunistic);
    if let Ok(reply) = doq
        .connect(net, src, resolver, None)
        .and_then(|mut session| session.query(net, query))
    {
        return Ok(reply);
    }
    let mut dot = crate::dot::DotClient::new(tlssim::TlsClientConfig::opportunistic(
        trust_store.clone(),
        now,
    ));
    if let Ok(reply) = dot.query_once(net, src, resolver, None, query) {
        return Ok(reply);
    }
    crate::do53::do53_udp_query(net, src, resolver, query, SimDuration::from_secs(5), 1)
}

impl DoqClient {
    /// Build a client; DoQ uses the same profiles as DoT.
    pub fn new(trust_store: TrustStore, now: DateStamp, verify: VerifyMode) -> Self {
        DoqClient {
            trust_store,
            now,
            verify,
        }
    }

    /// 1-RTT connection setup over UDP.
    pub fn connect(
        &self,
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
        auth_name: Option<&str>,
    ) -> Result<DoqSession, QueryError> {
        let client_random: u64 = net.rng().gen();
        let initial = DoqPacket::Initial { client_random }.encode();
        let reply = net.udp_query(src, resolver, crate::DOQ_PORT, &initial, None)?;
        let packet = DoqPacket::decode(&reply.bytes)
            .ok_or_else(|| QueryError::Protocol("bad DoQ handshake packet".into()))?;
        let (server_random, chain) = match packet {
            DoqPacket::Handshake {
                server_random,
                chain,
            } => (server_random, chain),
            DoqPacket::Reject { reason } => {
                return Err(QueryError::Tls(TlsError::HandshakeFailed(reason)))
            }
            _ => return Err(QueryError::Protocol("unexpected DoQ packet".into())),
        };
        let verify_result = tlssim::verify_chain(&chain, &self.trust_store, self.now, auth_name);
        if self.verify == VerifyMode::Strict {
            if let Err(e) = &verify_result {
                return Err(QueryError::Tls(TlsError::Cert(e.clone())));
            }
        }
        let leaf_key = chain.first().map(|c| c.key.0).unwrap_or_default();
        let key = SessionKey::derive(client_random, server_random, leaf_key);
        Ok(DoqSession {
            resolver,
            src,
            conn_id: client_random ^ server_random,
            key,
            verify_result,
            elapsed: reply.elapsed,
            queries_sent: 0,
        })
    }
}

impl DoqSession {
    /// One query on its own stream (no head-of-line blocking: each
    /// exchange is an independent datagram).
    pub fn query(&mut self, net: &mut Network, query: &Message) -> Result<QueryReply, QueryError> {
        let wire = query.encode()?;
        let packet = DoqPacket::Stream {
            conn_id: self.conn_id,
            payload: seal(self.key, &wire),
        }
        .encode();
        let reply = net.udp_query(self.src, self.resolver, crate::DOQ_PORT, &packet, None)?;
        self.elapsed += reply.elapsed;
        let Some(DoqPacket::Stream { payload, .. }) = DoqPacket::decode(&reply.bytes) else {
            return Err(QueryError::Protocol("bad DoQ stream packet".into()));
        };
        let plaintext = open(self.key, &payload)?;
        let message = Message::decode(&plaintext)?;
        self.queries_sent += 1;
        Ok(QueryReply {
            message,
            latency: reply.elapsed,
            transport: TransportInfo {
                protocol: DnsTransport::Doq,
                verify: Some(self.verify_result.clone()),
                resumed: false,
                connection_reused: self.queries_sent > 1,
            },
        })
    }

    /// Verification outcome.
    pub fn verify_result(&self) -> &Result<(), CertError> {
        &self.verify_result
    }

    /// Total time charged, including setup.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }
}

/// Server-side DoQ over UDP.
pub struct DoqServerService {
    chain: Vec<Certificate>,
    key: KeyId,
    responder: Arc<dyn DnsResponder>,
    // conn_id → session key. DoQ connections are long-lived; the study's
    // sessions are short, so no expiry is modelled.
    sessions: Mutex<HashMap<u64, SessionKey>>,
    secret: u64,
}

impl DoqServerService {
    /// Serve `responder` over DoQ with this identity.
    pub fn new(chain: Vec<Certificate>, key: KeyId, responder: Arc<dyn DnsResponder>) -> Self {
        // Domain-separate the nonce secret from the TLS ticket secret
        // derived from the same key.
        let secret = fnv1a(&key.0.to_be_bytes()) ^ 0xd00f_bead_cafe_f00d;
        DoqServerService {
            chain,
            key,
            responder,
            sessions: Mutex::new(HashMap::new()),
            secret,
        }
    }
}

impl netsim::DatagramService for DoqServerService {
    fn on_datagram(
        &self,
        ctx: &mut ServiceCtx<'_>,
        peer: PeerInfo,
        data: &[u8],
    ) -> Option<Vec<u8>> {
        let packet = DoqPacket::decode(data)?;
        match packet {
            DoqPacket::Initial { client_random } => {
                let mut nonce_input = Vec::with_capacity(16);
                nonce_input.extend_from_slice(&client_random.to_be_bytes());
                nonce_input.extend_from_slice(&self.secret.to_be_bytes());
                let server_random = fnv1a(&nonce_input);
                let key = SessionKey::derive(client_random, server_random, self.key.0);
                self.sessions
                    // doe-lint: allow(D006) — per-connection session table keyed by this
                    // exchange's randoms; no cross-target state, shard layout unobservable
                    .lock()
                    .insert(client_random ^ server_random, key);
                Some(
                    DoqPacket::Handshake {
                        server_random,
                        chain: self.chain.clone(),
                    }
                    .encode(),
                )
            }
            DoqPacket::Stream { conn_id, payload } => {
                // doe-lint: allow(D006) — per-connection session table keyed by this
                // exchange's randoms; no cross-target state, shard layout unobservable
                let key = *self.sessions.lock().get(&conn_id)?;
                let plaintext = open(key, &payload).ok()?;
                let query = Message::decode(&plaintext).ok()?;
                let response = self.responder.respond(ctx, peer, &query);
                let bytes = response.encode().ok()?;
                Some(
                    DoqPacket::Stream {
                        conn_id,
                        payload: seal(key, &bytes),
                    }
                    .encode(),
                )
            }
            _ => Some(
                DoqPacket::Reject {
                    reason: "unexpected packet".into(),
                }
                .encode(),
            ),
        }
    }

    fn protocol(&self) -> &'static str {
        "doq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::AuthoritativeServer;
    use dnswire::zone::Zone;
    use dnswire::{builder, Name, RData, Rcode, RecordType};
    use netsim::{HostMeta, NetworkConfig};
    use tlssim::CaHandle;

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    fn world() -> (Network, Ipv4Addr, Ipv4Addr, TrustStore) {
        let mut net = Network::new(NetworkConfig::default(), 51);
        let resolver: Ipv4Addr = "94.140.14.14".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.5".parse().unwrap();
        net.add_host(HostMeta::new(resolver).country("NL").asn(212772).anycast());
        net.add_host(HostMeta::new(client).country("GB").asn(2856));
        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.9".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
        let ca = CaHandle::new("AdGuard CA", KeyId(1), now() + -100, 3650);
        let leaf = ca.issue(
            "dns.adguard.com",
            vec![],
            KeyId(2),
            1,
            now() + -10,
            now() + 365,
        );
        let mut store = TrustStore::new();
        store.add(ca.authority());
        net.bind_udp(
            resolver,
            crate::DOQ_PORT,
            Arc::new(DoqServerService::new(vec![leaf], KeyId(2), responder)),
        );
        (net, client, resolver, store)
    }

    #[test]
    fn one_rtt_setup_then_queries() {
        let (mut net, client, resolver, store) = world();
        let doq = DoqClient::new(store, now(), VerifyMode::Strict);
        let mut session = doq
            .connect(&mut net, client, resolver, Some("dns.adguard.com"))
            .unwrap();
        assert!(session.verify_result().is_ok());
        let setup = session.elapsed();
        let q = builder::query(1, "a.probe.example", RecordType::A).unwrap();
        let reply = session.query(&mut net, &q).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.transport.protocol, DnsTransport::Doq);
        // Setup took exactly one datagram exchange: comparable to a single
        // query, unlike DoT's TCP+TLS double round trip.
        assert!(setup < reply.latency * 3);
    }

    #[test]
    fn strict_rejects_bad_cert() {
        let (mut net, client, resolver, _store) = world();
        let empty_store = TrustStore::new();
        let doq = DoqClient::new(empty_store, now(), VerifyMode::Strict);
        let err = doq.connect(&mut net, client, resolver, None).unwrap_err();
        assert!(err.is_cert_failure());
    }

    #[test]
    fn fallback_ladder_reaches_dot_when_no_doq() {
        // A resolver with DoT but no DoQ: the ladder lands on DoT.
        let (mut net, client, resolver, store) = world();
        // Also bind a DoT service on the same resolver.
        let ca = CaHandle::new("Fallback CA", KeyId(40), now() + -10, 3650);
        let leaf = ca.issue(
            "dns.adguard.com",
            vec![],
            KeyId(41),
            2,
            now() + -1,
            now() + 90,
        );
        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.9".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
        net.bind_tcp(
            resolver,
            853,
            Arc::new(crate::dot::DotServerService::new(
                tlssim::TlsServerConfig::new(vec![leaf], KeyId(41)),
                responder,
            )),
        );
        // Remove the DoQ service.
        let meta = net.host_meta(resolver).unwrap().clone();
        net.remove_host(resolver);
        net.add_host(meta);
        net.bind_tcp(
            resolver,
            853,
            Arc::new(crate::dot::DotServerService::new(
                tlssim::TlsServerConfig::new(
                    vec![ca.issue(
                        "dns.adguard.com",
                        vec![],
                        KeyId(41),
                        3,
                        now() + -1,
                        now() + 90,
                    )],
                    KeyId(41),
                ),
                {
                    let apex = Name::parse("probe.example").unwrap();
                    let mut zone = Zone::new(apex.clone());
                    zone.add_record(
                        &apex.prepend("*").unwrap(),
                        60,
                        RData::A("203.0.113.9".parse().unwrap()),
                    );
                    Arc::new(AuthoritativeServer::new(vec![zone]))
                },
            )),
        );
        let q = builder::query(5, "fb.probe.example", RecordType::A).unwrap();
        let reply = query_with_fallback(&mut net, client, resolver, &store, now(), &q).unwrap();
        assert_eq!(reply.transport.protocol, DnsTransport::Dot);
        assert_eq!(reply.message.rcode(), Rcode::NoError);
    }

    #[test]
    fn tampered_stream_rejected() {
        let (mut net, client, resolver, store) = world();
        let doq = DoqClient::new(store, now(), VerifyMode::Strict);
        let mut session = doq.connect(&mut net, client, resolver, None).unwrap();
        // Corrupt the session key to simulate stream tampering.
        session.key = SessionKey(session.key.0 ^ 1);
        let q = builder::query(1, "a.probe.example", RecordType::A).unwrap();
        let err = session.query(&mut net, &q).unwrap_err();
        // Server can't open our sealed payload → no response → decode fails
        // or MAC error, depending on direction; either way the query fails.
        assert!(matches!(
            err,
            QueryError::Protocol(_) | QueryError::Tls(_) | QueryError::Udp(_)
        ));
    }
}
