//! DNS over TLS (RFC 7858): port 853, RFC 1035 framing inside TLS.

use crate::error::{DnsTransport, QueryError, QueryReply, TransportInfo, WireReply};
use crate::responder::DnsResponder;
use crate::tap::{FlowTap, TapDirection};
use dnswire::{frame_message, FrameDecoder, Message, PaddingPolicy};
use netsim::{Network, SimDuration};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{TlsClientConfig, TlsConnector, TlsServerConfig, TlsServerService, TlsStream};

/// ALPN token for DoT (RFC 7858 §3.1 suggests "dot").
pub const DOT_ALPN: &str = "dot";

/// A DoT client: wraps a [`TlsConnector`] whose profile (Strict /
/// Opportunistic) decides what happens on authentication failure.
pub struct DotClient {
    connector: TlsConnector,
    /// Query padding policy; the default is the RFC 8467 recommendation
    /// (128-octet query blocks). [`PaddingPolicy::None`] disables padding.
    pub policy: PaddingPolicy,
}

impl DotClient {
    /// Build from a TLS client config (ALPN forced to `dot`).
    pub fn new(mut config: TlsClientConfig) -> Self {
        config.alpn = vec![DOT_ALPN.to_string()];
        DotClient {
            connector: TlsConnector::new(config),
            policy: PaddingPolicy::rfc8467(),
        }
    }

    /// Open a session for multiple queries (connection reuse).
    pub fn session(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
        auth_name: Option<&str>,
    ) -> Result<DotSession, QueryError> {
        let stream = self
            .connector
            .connect(net, src, resolver, crate::DOT_PORT, auth_name)?;
        Ok(DotSession {
            stream,
            decoder: FrameDecoder::new(),
            policy: self.policy,
            tap: None,
            queries_sent: 0,
        })
    }

    /// One-shot query on a fresh session.
    pub fn query_once(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
        auth_name: Option<&str>,
        query: &Message,
    ) -> Result<QueryReply, QueryError> {
        let mut session = self.session(net, src, resolver, auth_name)?;
        let mut reply = session.query(net, query)?;
        // Fold the setup cost into the one-shot latency.
        reply.latency = session.stream.take_elapsed();
        session.close(net);
        Ok(reply)
    }

    /// Sessions cached for resumption.
    pub fn cached_sessions(&self) -> usize {
        self.connector.cached_sessions()
    }
}

/// An established DoT session carrying framed DNS messages.
#[derive(Debug)]
pub struct DotSession {
    stream: TlsStream,
    decoder: FrameDecoder,
    policy: PaddingPolicy,
    tap: Option<FlowTap>,
    queries_sent: u32,
}

impl DotSession {
    /// Start recording (offset, direction, padded size) for every message
    /// the session moves — the observer model of the privacy experiment.
    pub fn enable_tap(&mut self) {
        self.tap = Some(FlowTap::new());
    }

    /// Detach the recorded tap, if one was enabled.
    pub fn take_tap(&mut self) -> Option<FlowTap> {
        self.tap.take()
    }

    /// Send one query over the session.
    pub fn query(&mut self, net: &mut Network, query: &Message) -> Result<QueryReply, QueryError> {
        let mut query = query.clone();
        let key = u64::from(query.header.id) | (u64::from(self.queries_sent) << 16);
        if let Some(block) = self.policy.query_block(key) {
            query.pad_to_block(block)?;
        }
        let framed = frame_message(&query.encode()?)?;
        let before = self.stream.elapsed();
        if let Some(tap) = self.tap.as_mut() {
            tap.record(before, TapDirection::Up, framed.len());
        }
        let resp = self.stream.request(net, &framed)?;
        self.decoder.push(&resp);
        let Some(frame) = self.decoder.next_message() else {
            return Err(QueryError::Protocol(
                "no complete DoT response frame".into(),
            ));
        };
        let message = Message::decode(&frame)?;
        self.queries_sent += 1;
        if let Some(tap) = self.tap.as_mut() {
            // The observer sees the response with its 2-byte length prefix.
            tap.record(self.stream.elapsed(), TapDirection::Down, frame.len() + 2);
        }
        Ok(QueryReply {
            message,
            latency: self.stream.elapsed() - before,
            transport: TransportInfo {
                protocol: DnsTransport::Dot,
                verify: Some(self.stream.verify_result().clone()),
                resumed: self.stream.resumed(),
                connection_reused: self.queries_sent > 1,
            },
        })
    }

    /// Send pre-framed wire bytes over the session, returning the raw
    /// response frame without decoding it.
    ///
    /// This is the scanner's bulk-probe path: the caller stamps a
    /// pre-encoded, pre-padded query template (so no per-query message
    /// build, padding or encode happens here) and classifies the reply
    /// through `dnswire`'s borrowing [`MessageView`](dnswire::MessageView)
    /// instead of the owned decoder. Padding must already be baked into
    /// `framed`; [`Self::query`] remains the convenient owned-message API.
    pub fn query_wire(
        &mut self,
        net: &mut Network,
        framed: &[u8],
    ) -> Result<WireReply, QueryError> {
        let before = self.stream.elapsed();
        if let Some(tap) = self.tap.as_mut() {
            tap.record(before, TapDirection::Up, framed.len());
        }
        let resp = self.stream.request(net, framed)?;
        self.decoder.push(&resp);
        let Some(frame) = self.decoder.next_message() else {
            return Err(QueryError::Protocol(
                "no complete DoT response frame".into(),
            ));
        };
        self.queries_sent += 1;
        if let Some(tap) = self.tap.as_mut() {
            tap.record(self.stream.elapsed(), TapDirection::Down, frame.len() + 2);
        }
        Ok(WireReply {
            frame,
            latency: self.stream.elapsed() - before,
        })
    }

    /// Verification outcome for the session's certificate.
    pub fn verify_result(&self) -> &Result<(), tlssim::CertError> {
        self.stream.verify_result()
    }

    /// The certificate chain presented by the server.
    pub fn server_chain(&self) -> &[tlssim::Certificate] {
        self.stream.server_chain()
    }

    /// Total time charged.
    pub fn elapsed(&self) -> SimDuration {
        self.stream.elapsed()
    }

    /// Read-and-reset the session clock.
    pub fn take_elapsed(&mut self) -> SimDuration {
        self.stream.take_elapsed()
    }

    /// Close the session.
    pub fn close(self, net: &mut Network) {
        self.stream.close(net);
    }
}

/// Build the TLS-wrapped DoT service for a resolver.
pub fn dot_service(tls: TlsServerConfig, responder: Arc<dyn DnsResponder>) -> DotServerService {
    DotServerService::new(tls, responder)
}

/// Server-side DoT: TLS termination around DNS stream framing.
pub struct DotServerService {
    inner: TlsServerService,
}

impl DotServerService {
    /// Wrap `responder` behind TLS with `tls` parameters.
    pub fn new(mut tls: TlsServerConfig, responder: Arc<dyn DnsResponder>) -> Self {
        if tls.alpn.is_empty() {
            tls.alpn = vec![DOT_ALPN.to_string()];
        }
        let dns = Arc::new(crate::do53::Do53TcpService::new(responder));
        DotServerService {
            inner: TlsServerService::new(tls, dns),
        }
    }
}

impl netsim::Service for DotServerService {
    fn open_stream(&self, peer: netsim::PeerInfo) -> Box<dyn netsim::StreamHandler> {
        self.inner.open_stream(peer)
    }

    fn protocol(&self) -> &'static str {
        "dot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::AuthoritativeServer;
    use dnswire::zone::Zone;
    use dnswire::{builder, Name, RData, Rcode, RecordType};
    use netsim::{HostMeta, NetworkConfig};
    use tlssim::{CaHandle, DateStamp, KeyId, TrustStore};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    fn world() -> (Network, Ipv4Addr, Ipv4Addr, TrustStore) {
        let mut net = Network::new(NetworkConfig::default(), 31);
        let resolver: Ipv4Addr = "1.1.1.1".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.3".parse().unwrap();
        net.add_host(HostMeta::new(resolver).country("US").asn(13335).anycast());
        net.add_host(HostMeta::new(client).country("BR").asn(27699));

        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.5".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));

        let ca = CaHandle::new("DigiCert Global Root", KeyId(1), now() + -700, 3650);
        let leaf = ca.issue(
            "cloudflare-dns.com",
            vec!["*.cloudflare-dns.com".into(), "one.one.one.one".into()],
            KeyId(2),
            1,
            now() + -30,
            now() + 365,
        );
        let mut store = TrustStore::new();
        store.add(ca.authority());
        net.bind_tcp(
            resolver,
            853,
            Arc::new(DotServerService::new(
                TlsServerConfig::new(vec![leaf], KeyId(2)),
                responder,
            )),
        );
        (net, client, resolver, store)
    }

    #[test]
    fn strict_dot_query_succeeds() {
        let (mut net, client, resolver, store) = world();
        let mut dot = DotClient::new(TlsClientConfig::strict(store, now()));
        let q = builder::query(1, "a1.probe.example", RecordType::A).unwrap();
        let reply = dot
            .query_once(&mut net, client, resolver, Some("cloudflare-dns.com"), &q)
            .unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.message.answers.len(), 1);
        assert_eq!(reply.transport.protocol, DnsTransport::Dot);
        assert_eq!(reply.transport.verify, Some(Ok(())));
    }

    #[test]
    fn session_reuse_charges_one_rtt_per_query() {
        let (mut net, client, resolver, store) = world();
        let mut dot = DotClient::new(TlsClientConfig::strict(store, now()));
        let mut session = dot
            .session(&mut net, client, resolver, Some("cloudflare-dns.com"))
            .unwrap();
        let setup = session.take_elapsed();
        let mut latencies = Vec::new();
        for id in 0..20u16 {
            let q = builder::query(id, &format!("q{id}.probe.example"), RecordType::A).unwrap();
            let reply = session.query(&mut net, &q).unwrap();
            assert_eq!(reply.message.answers.len(), 1);
            latencies.push(reply.latency);
        }
        // Reused queries are cheaper than session setup (which has 2 RTTs).
        let max_query = latencies.iter().max().unwrap();
        assert!(setup > *max_query, "setup {setup} vs max query {max_query}");
        assert!(latencies[5] < setup);
        session.close(&mut net);
    }

    #[test]
    fn queries_are_padded() {
        let (mut net, client, resolver, store) = world();
        let mut dot = DotClient::new(TlsClientConfig::strict(store, now()));
        let mut session = dot
            .session(&mut net, client, resolver, Some("cloudflare-dns.com"))
            .unwrap();
        let q = builder::query(7, "pad.probe.example", RecordType::A).unwrap();
        let reply = session.query(&mut net, &q).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        // The response echoes the (padded) question; verify padding landed
        // on the wire by checking the query the client *would* send.
        let mut padded = q.clone();
        padded.pad_to_block(128).unwrap();
        assert_eq!(padded.encode().unwrap().len() % 128, 0);
        session.close(&mut net);
    }

    #[test]
    fn resumption_on_second_session() {
        let (mut net, client, resolver, store) = world();
        let mut dot = DotClient::new(TlsClientConfig::strict(store, now()));
        let s1 = dot
            .session(&mut net, client, resolver, Some("cloudflare-dns.com"))
            .unwrap();
        s1.close(&mut net);
        assert_eq!(dot.cached_sessions(), 1);
        let mut s2 = dot
            .session(&mut net, client, resolver, Some("cloudflare-dns.com"))
            .unwrap();
        let q = builder::query(9, "r.probe.example", RecordType::A).unwrap();
        let reply = s2.query(&mut net, &q).unwrap();
        assert!(reply.transport.resumed);
        assert_eq!(reply.message.answers.len(), 1);
        s2.close(&mut net);
    }

    #[test]
    fn dead_port_fails_with_transport_error() {
        let (mut net, client, resolver, store) = world();
        net.unbind_tcp(resolver, 853);
        let mut dot = DotClient::new(TlsClientConfig::strict(store, now()));
        let q = builder::query(2, "x.probe.example", RecordType::A).unwrap();
        let err = dot
            .query_once(&mut net, client, resolver, None, &q)
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::Tls(tlssim::TlsError::Transport(_))
        ));
    }
}
