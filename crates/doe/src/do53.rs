//! Clear-text DNS: Do53 over UDP (with truncation fallback) and over TCP
//! (RFC 1035 §4.2.2 framing, reusable connections).
//!
//! Do53/TCP is the study's clear-text baseline: the proxy platforms only
//! relay TCP, and §4.1 argues (citing Zhu et al.) that with connection
//! reuse TCP latency is equivalent to UDP.

use crate::error::{DnsTransport, QueryError, QueryReply, TransportInfo};
use crate::responder::DnsResponder;
use dnswire::{frame_message, FrameDecoder, Message};
use netsim::{Conn, Network, PeerInfo, Service, ServiceCtx, SimDuration, StreamHandler};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Maximum response size a Do53/UDP server sends without truncation when
/// the client advertises no EDNS buffer.
const PLAIN_UDP_LIMIT: usize = 512;

/// One-shot clear-text UDP query with `retries` retransmissions.
///
/// A truncated (`TC`) response is retried over TCP automatically, per
/// standard stub behaviour.
pub fn do53_udp_query(
    net: &mut Network,
    src: Ipv4Addr,
    resolver: Ipv4Addr,
    query: &Message,
    timeout: SimDuration,
    retries: u32,
) -> Result<QueryReply, QueryError> {
    let bytes = query.encode()?;
    let mut total = SimDuration::ZERO;
    let mut last_err: Option<QueryError> = None;
    for _attempt in 0..=retries {
        match net.udp_query(src, resolver, crate::DO53_PORT, &bytes, Some(timeout)) {
            Ok(reply) => {
                total += reply.elapsed;
                let message = Message::decode(&reply.bytes)?;
                if message.header.truncated {
                    // Fall back to TCP for the full answer.
                    let mut tcp = do53_tcp_query(net, src, resolver, query, timeout)?;
                    tcp.latency += total;
                    return Ok(tcp);
                }
                return Ok(QueryReply {
                    message,
                    latency: total,
                    transport: TransportInfo::clear(DnsTransport::Do53Udp),
                });
            }
            Err(e) => {
                total += e.elapsed();
                last_err = Some(e.into());
            }
        }
    }
    match last_err {
        Some(QueryError::Udp(netsim::UdpError::Timeout { rule, .. })) => {
            Err(QueryError::Udp(netsim::UdpError::Timeout {
                elapsed: total,
                rule,
            }))
        }
        Some(e) => Err(e),
        None => Err(QueryError::Timeout { elapsed: total }),
    }
}

/// One-shot clear-text TCP query (fresh connection).
pub fn do53_tcp_query(
    net: &mut Network,
    src: Ipv4Addr,
    resolver: Ipv4Addr,
    query: &Message,
    timeout: SimDuration,
) -> Result<QueryReply, QueryError> {
    let mut conn = Do53TcpConn::connect(net, src, resolver, timeout)?;
    let mut reply = conn.query(net, query)?;
    reply.latency = conn.take_elapsed();
    conn.close(net);
    Ok(reply)
}

/// A reusable clear-text DNS/TCP connection — the baseline the performance
/// test reuses for its 20 queries per vantage (§4.1).
#[derive(Debug)]
pub struct Do53TcpConn {
    conn: Conn,
    decoder: FrameDecoder,
}

impl Do53TcpConn {
    /// Open a connection to `resolver:53`.
    pub fn connect(
        net: &mut Network,
        src: Ipv4Addr,
        resolver: Ipv4Addr,
        timeout: SimDuration,
    ) -> Result<Self, QueryError> {
        let conn = net.connect_with_timeout(src, resolver, crate::DO53_PORT, timeout)?;
        Ok(Do53TcpConn {
            conn,
            decoder: FrameDecoder::new(),
        })
    }

    /// Send one query, reusing the connection.
    pub fn query(&mut self, net: &mut Network, query: &Message) -> Result<QueryReply, QueryError> {
        let framed = frame_message(&query.encode()?)?;
        let before = self.conn.elapsed();
        let resp = self.conn.request(net, &framed)?;
        self.decoder.push(&resp);
        let Some(frame) = self.decoder.next_message() else {
            return Err(QueryError::Protocol("no complete response frame".into()));
        };
        let message = Message::decode(&frame)?;
        Ok(QueryReply {
            message,
            latency: self.conn.elapsed() - before,
            transport: TransportInfo {
                connection_reused: self.conn.round_trips() > 2,
                ..TransportInfo::clear(DnsTransport::Do53Tcp)
            },
        })
    }

    /// Total time charged to the connection so far.
    pub fn elapsed(&self) -> SimDuration {
        self.conn.elapsed()
    }

    /// Read-and-reset the connection clock.
    pub fn take_elapsed(&mut self) -> SimDuration {
        self.conn.take_elapsed()
    }

    /// Close the connection.
    pub fn close(self, net: &mut Network) {
        self.conn.close(net);
    }
}

/// UDP-side Do53 service wrapping a responder.
pub struct Do53UdpService {
    responder: Arc<dyn DnsResponder>,
}

impl Do53UdpService {
    /// Serve `responder` over UDP.
    pub fn new(responder: Arc<dyn DnsResponder>) -> Self {
        Do53UdpService { responder }
    }
}

impl netsim::DatagramService for Do53UdpService {
    fn on_datagram(
        &self,
        ctx: &mut ServiceCtx<'_>,
        peer: PeerInfo,
        data: &[u8],
    ) -> Option<Vec<u8>> {
        let query = Message::decode(data).ok()?;
        let limit = query
            .opt()
            .map(|o| o.udp_payload as usize)
            .unwrap_or(PLAIN_UDP_LIMIT)
            .max(PLAIN_UDP_LIMIT);
        let response = self.responder.respond(ctx, peer, &query);
        let bytes = response.encode().ok()?;
        if bytes.len() > limit {
            // Truncate: empty the answer sections, set TC.
            let mut truncated = response;
            truncated.header.truncated = true;
            truncated.answers.clear();
            truncated.authority.clear();
            truncated.additional.clear();
            return truncated.encode().ok();
        }
        Some(bytes)
    }

    fn protocol(&self) -> &'static str {
        "do53-udp"
    }
}

/// TCP-side Do53 service wrapping a responder (2-byte length framing,
/// multiple queries per connection).
pub struct Do53TcpService {
    responder: Arc<dyn DnsResponder>,
}

impl Do53TcpService {
    /// Serve `responder` over TCP.
    pub fn new(responder: Arc<dyn DnsResponder>) -> Self {
        Do53TcpService { responder }
    }
}

struct Do53TcpHandler {
    responder: Arc<dyn DnsResponder>,
    peer: PeerInfo,
    decoder: FrameDecoder,
}

impl StreamHandler for Do53TcpHandler {
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
        self.decoder.push(data);
        let mut out = Vec::new();
        while let Some(frame) = self.decoder.next_message() {
            let Ok(query) = Message::decode(&frame) else {
                continue; // garbage frame: drop silently, like most servers
            };
            let response = self.responder.respond(ctx, self.peer, &query);
            if let Ok(bytes) = response.encode() {
                if let Ok(framed) = frame_message(&bytes) {
                    out.extend_from_slice(&framed);
                }
            }
        }
        out
    }
}

impl Service for Do53TcpService {
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        Box::new(Do53TcpHandler {
            responder: Arc::clone(&self.responder),
            peer,
            decoder: FrameDecoder::new(),
        })
    }

    fn protocol(&self) -> &'static str {
        "do53-tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::AuthoritativeServer;
    use dnswire::zone::Zone;
    use dnswire::{builder, Name, RData, Rcode, RecordType};
    use netsim::{HostMeta, NetworkConfig};

    fn world() -> (Network, Ipv4Addr, Ipv4Addr) {
        let mut net = Network::new(NetworkConfig::default(), 11);
        let server: Ipv4Addr = "192.0.2.53".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.9".parse().unwrap();
        net.add_host(HostMeta::new(server).country("US").asn(64500));
        net.add_host(HostMeta::new(client).country("FR").asn(64501));
        let apex = Name::parse("zone.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("www").unwrap(),
            60,
            RData::A("203.0.113.1".parse().unwrap()),
        );
        // A fat TXT record that cannot fit in 512 bytes.
        zone.add_record(
            &apex.prepend("big").unwrap(),
            60,
            RData::Txt(vec![vec![b'x'; 255], vec![b'y'; 255], vec![b'z'; 255]]),
        );
        let auth: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));
        net.bind_udp(server, 53, Arc::new(Do53UdpService::new(Arc::clone(&auth))));
        net.bind_tcp(server, 53, Arc::new(Do53TcpService::new(auth)));
        (net, client, server)
    }

    #[test]
    fn udp_query_round_trip() {
        let (mut net, client, server) = world();
        let q = builder::query(1, "www.zone.example", RecordType::A).unwrap();
        let reply =
            do53_udp_query(&mut net, client, server, &q, SimDuration::from_secs(5), 0).unwrap();
        assert_eq!(reply.message.rcode(), Rcode::NoError);
        assert_eq!(reply.message.answers.len(), 1);
        assert_eq!(reply.transport.protocol, DnsTransport::Do53Udp);
        assert!(reply.latency > SimDuration::ZERO);
    }

    #[test]
    fn oversize_answer_truncates_then_tcp_retries() {
        let (mut net, client, server) = world();
        let q = builder::query(2, "big.zone.example", RecordType::Txt).unwrap();
        let reply =
            do53_udp_query(&mut net, client, server, &q, SimDuration::from_secs(5), 0).unwrap();
        // Fallback delivered the full answer over TCP.
        assert_eq!(reply.transport.protocol, DnsTransport::Do53Tcp);
        assert_eq!(reply.message.answers.len(), 1);
        assert!(!reply.message.header.truncated);
    }

    #[test]
    fn edns_payload_avoids_truncation() {
        let (mut net, client, server) = world();
        let q = builder::edns_query(3, "big.zone.example", RecordType::Txt).unwrap();
        let reply =
            do53_udp_query(&mut net, client, server, &q, SimDuration::from_secs(5), 0).unwrap();
        assert_eq!(reply.transport.protocol, DnsTransport::Do53Udp);
        assert_eq!(reply.message.answers.len(), 1);
    }

    #[test]
    fn tcp_connection_reuse_single_rtt_per_query() {
        let (mut net, client, server) = world();
        let mut conn =
            Do53TcpConn::connect(&mut net, client, server, SimDuration::from_secs(5)).unwrap();
        conn.take_elapsed(); // discard handshake
        for id in 0..5u16 {
            let q = builder::query(id, "www.zone.example", RecordType::A).unwrap();
            let reply = conn.query(&mut net, &q).unwrap();
            assert_eq!(reply.message.id(), id);
            assert_eq!(reply.message.answers.len(), 1);
        }
        // connect (1) + 5 queries = 6 round trips total.
        assert_eq!(conn.conn.round_trips(), 6);
        conn.close(&mut net);
    }

    #[test]
    fn udp_to_dead_resolver_times_out_after_retries() {
        let (mut net, client, _server) = world();
        let dead: Ipv4Addr = "203.0.113.254".parse().unwrap();
        let q = builder::query(4, "www.zone.example", RecordType::A).unwrap();
        let err =
            do53_udp_query(&mut net, client, dead, &q, SimDuration::from_secs(2), 2).unwrap_err();
        // 3 attempts x 2s.
        assert_eq!(err.elapsed(), SimDuration::from_secs(6));
    }

    #[test]
    fn tcp_query_against_closed_port_fails() {
        let (mut net, client, server) = world();
        net.unbind_tcp(server, 53);
        let q = builder::query(5, "www.zone.example", RecordType::A).unwrap();
        let err =
            do53_tcp_query(&mut net, client, server, &q, SimDuration::from_secs(2)).unwrap_err();
        assert!(matches!(err, QueryError::Connect(_)));
    }
}
