//! DNS over HTTPS (RFC 8484): URI templates, GET/POST forms, bootstrap
//! resolution, Strict-profile-only TLS.

use crate::error::{DnsTransport, QueryError, QueryReply, TransportInfo, WireReply};
use crate::responder::DnsResponder;
use crate::tap::{FlowTap, TapDirection};
use dnswire::{builder, Message, PaddingPolicy, Rcode, RecordType};
use httpsim::{base64url_decode, base64url_encode, Request, Response, UriTemplate};
use netsim::{Network, PeerInfo, Service, ServiceCtx, SimDuration, StreamHandler};
use rand::Rng;
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{
    TlsClientConfig, TlsConnector, TlsServerConfig, TlsServerService, TlsStream, VerifyMode,
};

/// The RFC 8484 media type.
pub const DNS_MESSAGE_TYPE: &str = "application/dns-message";

/// Which HTTP form the client uses (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DohMethod {
    /// `GET /dns-query?dns=<base64url>`.
    Get,
    /// `POST /dns-query` with the wire message as body.
    Post,
}

/// How a DoH client learns the resolver's address — the bootstrap step
/// whose passive-DNS footprint Section 5.3 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bootstrap {
    /// Address configured out of band.
    Static(Ipv4Addr),
    /// Resolve the template hostname via clear-text DNS at this resolver.
    Do53 {
        /// The clear-text resolver to bootstrap through.
        resolver: Ipv4Addr,
    },
}

/// A DoH client bound to one URI template.
pub struct DohClient {
    connector: TlsConnector,
    template: UriTemplate,
    method: DohMethod,
    bootstrap: Bootstrap,
    bootstrap_cache: Option<Ipv4Addr>,
    /// Query padding policy. Defaults to [`PaddingPolicy::None`]: the
    /// in-the-wild DoH clients the paper measured did not pad, so the
    /// discovery and performance legs keep that behavior; the privacy
    /// experiment opts in per client.
    pub policy: PaddingPolicy,
}

impl DohClient {
    /// Build a client. DoH requires the Strict profile (RFC 8484); any
    /// other verify mode in `config` is overridden.
    pub fn new(
        mut config: TlsClientConfig,
        template: UriTemplate,
        method: DohMethod,
        bootstrap: Bootstrap,
    ) -> Self {
        config.verify = VerifyMode::Strict;
        if config.alpn.is_empty() {
            config.alpn = vec!["h2".to_string(), "http/1.1".to_string()];
        }
        DohClient {
            connector: TlsConnector::new(config),
            template,
            method,
            bootstrap,
            bootstrap_cache: None,
            policy: PaddingPolicy::None,
        }
    }

    /// The template in use.
    pub fn template(&self) -> &UriTemplate {
        &self.template
    }

    /// Resolve (and cache) the service address. The bootstrap latency is
    /// returned so sessions can charge it.
    fn bootstrap_addr(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
    ) -> Result<(Ipv4Addr, SimDuration), QueryError> {
        if let Some(addr) = self.bootstrap_cache {
            return Ok((addr, SimDuration::ZERO));
        }
        match self.bootstrap {
            Bootstrap::Static(addr) => {
                self.bootstrap_cache = Some(addr);
                Ok((addr, SimDuration::ZERO))
            }
            Bootstrap::Do53 { resolver } => {
                let id = net.rng().gen();
                let q = builder::query(id, self.template.host(), RecordType::A)
                    .map_err(QueryError::Wire)?;
                let reply = crate::do53::do53_udp_query(
                    net,
                    src,
                    resolver,
                    &q,
                    SimDuration::from_secs(5),
                    1,
                )?;
                let addr = reply
                    .message
                    .answers
                    .iter()
                    .find_map(|rr| match &rr.rdata {
                        dnswire::RData::A(a) => Some(*a),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        QueryError::Protocol(format!(
                            "bootstrap for {} returned no address",
                            self.template.host()
                        ))
                    })?;
                self.bootstrap_cache = Some(addr);
                Ok((addr, reply.latency))
            }
        }
    }

    /// Open a session (bootstraps if needed, then TLS with SNI).
    pub fn session(&mut self, net: &mut Network, src: Ipv4Addr) -> Result<DohSession, QueryError> {
        let (addr, bootstrap_time) = self.bootstrap_addr(net, src)?;
        let host = self.template.host().to_string();
        let stream = self
            .connector
            .connect(net, src, addr, self.template.port(), Some(&host))?;
        Ok(DohSession {
            stream,
            template: self.template.clone(),
            method: self.method,
            host,
            pending_extra: bootstrap_time,
            policy: self.policy,
            tap: None,
            queries_sent: 0,
        })
    }

    /// One-shot query on a fresh session.
    pub fn query_once(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        query: &Message,
    ) -> Result<QueryReply, QueryError> {
        let mut session = self.session(net, src)?;
        let mut reply = session.query(net, query)?;
        reply.latency = session.take_elapsed();
        session.close(net);
        Ok(reply)
    }

    /// One-shot query on a fresh session, returning the raw DNS payload
    /// (see [`DohSession::query_wire`]).
    pub fn query_once_wire(
        &mut self,
        net: &mut Network,
        src: Ipv4Addr,
        query: &Message,
    ) -> Result<WireReply, QueryError> {
        let mut session = self.session(net, src)?;
        let mut reply = session.query_wire(net, query)?;
        reply.latency = session.take_elapsed();
        session.close(net);
        Ok(reply)
    }

    /// Drop the cached bootstrap address (e.g. to re-resolve).
    pub fn clear_bootstrap(&mut self) {
        self.bootstrap_cache = None;
    }
}

/// An established DoH session.
#[derive(Debug)]
pub struct DohSession {
    stream: TlsStream,
    template: UriTemplate,
    method: DohMethod,
    host: String,
    /// Bootstrap time not yet folded into a query latency.
    pending_extra: SimDuration,
    policy: PaddingPolicy,
    tap: Option<FlowTap>,
    queries_sent: u32,
}

impl DohSession {
    /// Start recording (offset, direction, padded size) for every DNS
    /// payload the session moves — the observer model of the privacy
    /// experiment (HTTP framing overhead is constant per method and
    /// excluded).
    pub fn enable_tap(&mut self) {
        self.tap = Some(FlowTap::new());
    }

    /// Detach the recorded tap, if one was enabled.
    pub fn take_tap(&mut self) -> Option<FlowTap> {
        self.tap.take()
    }

    /// Send one query.
    pub fn query(&mut self, net: &mut Network, query: &Message) -> Result<QueryReply, QueryError> {
        let reply = self.query_wire(net, query)?;
        let message = Message::decode(&reply.frame)?;
        Ok(QueryReply {
            message,
            latency: reply.latency,
            transport: TransportInfo {
                protocol: DnsTransport::Doh,
                verify: Some(self.stream.verify_result().clone()),
                resumed: self.stream.resumed(),
                connection_reused: self.queries_sent > 1,
            },
        })
    }

    /// Send one query, returning the raw DNS payload from the HTTP body
    /// without decoding it.
    ///
    /// The discovery scanner classifies the reply through `dnswire`'s
    /// borrowing [`MessageView`](dnswire::MessageView) instead of the owned
    /// decoder, so it only needs the bytes.
    pub fn query_wire(
        &mut self,
        net: &mut Network,
        query: &Message,
    ) -> Result<WireReply, QueryError> {
        let key = u64::from(query.header.id) | (u64::from(self.queries_sent) << 16);
        let wire = match self.policy.query_block(key) {
            Some(block) => {
                let mut padded = query.clone();
                padded.pad_to_block(block)?;
                padded.encode()?
            }
            None => query.encode()?,
        };
        let up_len = wire.len();
        let request = match self.method {
            DohMethod::Get => Request::get(&self.template.expand_get(&base64url_encode(&wire)))
                .with_header("Host", &self.host)
                .with_header("Accept", DNS_MESSAGE_TYPE),
            DohMethod::Post => Request::post(&self.template.post_target(), DNS_MESSAGE_TYPE, wire)
                .with_header("Host", &self.host)
                .with_header("Accept", DNS_MESSAGE_TYPE),
        };
        let before = self.stream.elapsed();
        if let Some(tap) = self.tap.as_mut() {
            tap.record(before, TapDirection::Up, up_len);
        }
        let raw = self.stream.request(net, &request.encode())?;
        let response = Response::decode(&raw)
            .map_err(|e| QueryError::Protocol(format!("bad http response: {e}")))?;
        let latency = self.stream.elapsed() - before + std::mem::take(&mut self.pending_extra);
        if response.status != 200 {
            return Err(QueryError::Http {
                status: response.status,
                elapsed: latency,
            });
        }
        self.queries_sent += 1;
        if let Some(tap) = self.tap.as_mut() {
            tap.record(
                self.stream.elapsed(),
                TapDirection::Down,
                response.body.len(),
            );
        }
        Ok(WireReply {
            frame: response.body,
            latency,
        })
    }

    /// Total time charged (TLS + TCP + pending bootstrap).
    pub fn elapsed(&self) -> SimDuration {
        self.stream.elapsed() + self.pending_extra
    }

    /// Read-and-reset the session clock (incl. pending bootstrap time).
    pub fn take_elapsed(&mut self) -> SimDuration {
        self.stream.take_elapsed() + std::mem::take(&mut self.pending_extra)
    }

    /// The certificate chain presented.
    pub fn server_chain(&self) -> &[tlssim::Certificate] {
        self.stream.server_chain()
    }

    /// Close the session.
    pub fn close(self, net: &mut Network) {
        self.stream.close(net);
    }
}

/// What answers DoH queries behind the front-end.
pub enum DohBackend {
    /// Answer in-process.
    Local(Arc<dyn DnsResponder>),
    /// Forward to a clear-text DNS back-end over UDP with a hard timeout —
    /// Quad9's architecture, whose 2-second timeout is the Finding 2.4
    /// misconfiguration.
    ForwardUdp {
        /// Back-end address.
        backend: Ipv4Addr,
        /// Back-end port.
        port: u16,
        /// Give-up threshold; on expiry the front-end answers SERVFAIL.
        timeout: SimDuration,
    },
}

/// Server-side DoH: TLS termination around an HTTP handler that speaks
/// RFC 8484.
pub struct DohServerService {
    inner: TlsServerService,
}

struct DohHttpService {
    paths: Vec<String>,
    backend: DohBackend,
}

impl DohHttpService {
    fn answer(&self, ctx: &mut ServiceCtx<'_>, peer: PeerInfo, req: &Request) -> Response {
        if !self.paths.iter().any(|p| p == req.path()) {
            return Response::not_found();
        }
        let wire: Vec<u8> = match req.method {
            httpsim::Method::Get => match req.query_param("dns").and_then(base64url_decode) {
                Some(w) => w,
                None => return Response::bad_request("missing or bad dns parameter"),
            },
            httpsim::Method::Post => req.body.clone(),
            _ => return Response::status(405, "Method Not Allowed"),
        };
        let Ok(query) = Message::decode(&wire) else {
            return Response::bad_request("bad dns message");
        };
        let response_msg = match &self.backend {
            DohBackend::Local(responder) => responder.respond(ctx, peer, &query),
            DohBackend::ForwardUdp {
                backend,
                port,
                timeout,
            } => {
                let local = ctx.local_addr();
                match ctx
                    .network()
                    .udp_query(local, *backend, *port, &wire, Some(*timeout))
                {
                    Ok(reply) if reply.elapsed <= *timeout => {
                        ctx.charge(reply.elapsed);
                        match Message::decode(&reply.bytes) {
                            Ok(m) => m,
                            Err(_) => builder::error_response(&query, Rcode::ServFail),
                        }
                    }
                    Ok(_slow) => {
                        // Back-end answered after the deadline: the
                        // front-end already gave up at `timeout`.
                        ctx.charge(*timeout);
                        builder::error_response(&query, Rcode::ServFail)
                    }
                    Err(_) => {
                        ctx.charge(*timeout);
                        builder::error_response(&query, Rcode::ServFail)
                    }
                }
            }
        };
        match response_msg.encode() {
            Ok(bytes) => {
                Response::ok(DNS_MESSAGE_TYPE, bytes).with_header("Cache-Control", "max-age=60")
            }
            Err(_) => Response::status(500, "Internal Server Error"),
        }
    }
}

impl Service for DohHttpService {
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        struct H {
            svc: Arc<DohHttpService>,
            peer: PeerInfo,
        }
        impl StreamHandler for H {
            fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
                match Request::decode(data) {
                    Ok(req) => self.svc.answer(ctx, self.peer, &req).encode(),
                    Err(e) => Response::bad_request(&e.to_string()).encode(),
                }
            }
        }
        // `open_stream` takes &self; reconstruct a shared handle.
        Box::new(H {
            svc: Arc::new(DohHttpService {
                paths: self.paths.clone(),
                backend: match &self.backend {
                    DohBackend::Local(r) => DohBackend::Local(Arc::clone(r)),
                    DohBackend::ForwardUdp {
                        backend,
                        port,
                        timeout,
                    } => DohBackend::ForwardUdp {
                        backend: *backend,
                        port: *port,
                        timeout: *timeout,
                    },
                },
            }),
            peer,
        })
    }

    fn protocol(&self) -> &'static str {
        "doh-http"
    }
}

impl DohServerService {
    /// Serve RFC 8484 at the given paths behind TLS.
    pub fn new(mut tls: TlsServerConfig, paths: Vec<String>, backend: DohBackend) -> Self {
        if tls.alpn.is_empty() {
            tls.alpn = vec!["h2".to_string(), "http/1.1".to_string()];
        }
        let http = Arc::new(DohHttpService { paths, backend });
        DohServerService {
            inner: TlsServerService::new(tls, http),
        }
    }
}

impl Service for DohServerService {
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        self.inner.open_stream(peer)
    }

    fn protocol(&self) -> &'static str {
        "doh"
    }
}

impl std::fmt::Debug for DohBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DohBackend::Local(_) => write!(f, "DohBackend::Local"),
            DohBackend::ForwardUdp {
                backend,
                port,
                timeout,
            } => f
                .debug_struct("DohBackend::ForwardUdp")
                .field("backend", backend)
                .field("port", port)
                .field("timeout", timeout)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::do53::Do53UdpService;
    use crate::responder::AuthoritativeServer;
    use dnswire::zone::Zone;
    use dnswire::{Name, RData};
    use netsim::{HostMeta, NetworkConfig};
    use tlssim::{CaHandle, DateStamp, KeyId, TrustStore};

    fn now() -> DateStamp {
        DateStamp::from_ymd(2019, 2, 1)
    }

    struct DohWorld {
        net: Network,
        client: Ipv4Addr,
        store: TrustStore,
        template: UriTemplate,
        bootstrap_resolver: Ipv4Addr,
    }

    fn world(backend_kind: &str) -> DohWorld {
        let mut net = Network::new(NetworkConfig::default(), 41);
        let client: Ipv4Addr = "198.51.100.4".parse().unwrap();
        let doh_front: Ipv4Addr = "104.16.248.249".parse().unwrap();
        let bootstrap_resolver: Ipv4Addr = "192.0.2.53".parse().unwrap();
        net.add_host(HostMeta::new(client).country("NL").asn(1136));
        net.add_host(HostMeta::new(doh_front).country("US").asn(13335).anycast());
        net.add_host(
            HostMeta::new(bootstrap_resolver)
                .country("US")
                .asn(64500)
                .anycast(),
        );

        // Probe zone served by the DoH resolver locally.
        let apex = Name::parse("probe.example").unwrap();
        let mut zone = Zone::new(apex.clone());
        zone.add_record(
            &apex.prepend("*").unwrap(),
            60,
            RData::A("203.0.113.7".parse().unwrap()),
        );
        let responder: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![zone]));

        // Bootstrap zone: cloudflare-dns.com → the front-end address.
        let boot_apex = Name::parse("cloudflare-dns.com").unwrap();
        let mut boot_zone = Zone::new(boot_apex.clone());
        boot_zone.add_record(&boot_apex, 300, RData::A(doh_front));
        let boot: Arc<dyn DnsResponder> = Arc::new(AuthoritativeServer::new(vec![boot_zone]));
        net.bind_udp(bootstrap_resolver, 53, Arc::new(Do53UdpService::new(boot)));

        let ca = CaHandle::new("DigiCert", KeyId(1), now() + -700, 3650);
        let leaf = ca.issue(
            "cloudflare-dns.com",
            vec!["*.cloudflare-dns.com".into()],
            KeyId(2),
            1,
            now() + -30,
            now() + 365,
        );
        let mut store = TrustStore::new();
        store.add(ca.authority());

        let backend = match backend_kind {
            "local" => DohBackend::Local(responder),
            "forward" => {
                // Back-end Do53 on the same host, fed by a congested
                // recursive resolver.
                let recursive = Arc::new(crate::recursive::RecursiveResolver::new(
                    crate::recursive::UpstreamMap::new(),
                    crate::recursive::RecursiveConfig {
                        servfail_rate: 0.0,
                        miss_delay: crate::recursive::MissDelay::congested(),
                        ..Default::default()
                    },
                ));
                net.bind_udp(doh_front, 53, Arc::new(Do53UdpService::new(recursive)));
                DohBackend::ForwardUdp {
                    backend: doh_front,
                    port: 53,
                    timeout: SimDuration::from_secs(2),
                }
            }
            other => panic!("unknown backend {other}"),
        };
        net.bind_tcp(
            doh_front,
            443,
            Arc::new(DohServerService::new(
                TlsServerConfig::new(vec![leaf], KeyId(2)),
                vec!["/dns-query".to_string()],
                backend,
            )),
        );
        DohWorld {
            net,
            client,
            store,
            template: UriTemplate::parse("https://cloudflare-dns.com/dns-query{?dns}").unwrap(),
            bootstrap_resolver,
        }
    }

    #[test]
    fn get_and_post_both_work() {
        for method in [DohMethod::Get, DohMethod::Post] {
            let mut w = world("local");
            let mut doh = DohClient::new(
                TlsClientConfig::strict(w.store.clone(), now()),
                w.template.clone(),
                method,
                Bootstrap::Do53 {
                    resolver: w.bootstrap_resolver,
                },
            );
            let q = builder::query(0, "m1.probe.example", RecordType::A).unwrap();
            let reply = doh.query_once(&mut w.net, w.client, &q).unwrap();
            assert_eq!(reply.message.rcode(), Rcode::NoError, "{method:?}");
            assert_eq!(reply.message.answers.len(), 1);
            assert_eq!(reply.transport.protocol, DnsTransport::Doh);
        }
    }

    #[test]
    fn session_reuse_works() {
        let mut w = world("local");
        let mut doh = DohClient::new(
            TlsClientConfig::strict(w.store.clone(), now()),
            w.template.clone(),
            DohMethod::Post,
            Bootstrap::Static("104.16.248.249".parse().unwrap()),
        );
        let mut session = doh.session(&mut w.net, w.client).unwrap();
        let setup = session.take_elapsed();
        for id in 0..5u16 {
            let q = builder::query(id, &format!("s{id}.probe.example"), RecordType::A).unwrap();
            let reply = session.query(&mut w.net, &q).unwrap();
            assert_eq!(reply.message.answers.len(), 1);
            assert!(reply.latency < setup);
        }
        session.close(&mut w.net);
    }

    #[test]
    fn unknown_path_is_404() {
        let mut w = world("local");
        let template = UriTemplate::parse("https://cloudflare-dns.com/wrong-path{?dns}").unwrap();
        let mut doh = DohClient::new(
            TlsClientConfig::strict(w.store.clone(), now()),
            template,
            DohMethod::Get,
            Bootstrap::Static("104.16.248.249".parse().unwrap()),
        );
        let q = builder::query(1, "x.probe.example", RecordType::A).unwrap();
        let err = doh.query_once(&mut w.net, w.client, &q).unwrap_err();
        assert!(matches!(err, QueryError::Http { status: 404, .. }));
    }

    #[test]
    fn quad9_style_forwarding_servfails_on_slow_backend() {
        let mut w = world("forward");
        let mut doh = DohClient::new(
            TlsClientConfig::strict(w.store.clone(), now()),
            w.template.clone(),
            DohMethod::Post,
            Bootstrap::Static("104.16.248.249".parse().unwrap()),
        );
        let mut servfail = 0usize;
        let mut ok = 0usize;
        let n = 150;
        let mut session = doh.session(&mut w.net, w.client).unwrap();
        for id in 0..n {
            let q = builder::query(
                id as u16,
                &format!("t{id}.unique-miss.example"),
                RecordType::A,
            )
            .unwrap();
            match session.query(&mut w.net, &q) {
                Ok(reply) if reply.message.rcode() == Rcode::ServFail => servfail += 1,
                Ok(_) => ok += 1,
                Err(e) => panic!("unexpected transport error: {e}"),
            }
        }
        let frac = servfail as f64 / n as f64;
        assert!(ok > 0);
        assert!(
            (0.05..=0.25).contains(&frac),
            "SERVFAIL fraction {frac}, want ~0.13"
        );
        session.close(&mut w.net);
    }

    #[test]
    fn bootstrap_failure_surfaces() {
        let mut w = world("local");
        // Point bootstrap at a dead resolver.
        let mut doh = DohClient::new(
            TlsClientConfig::strict(w.store.clone(), now()),
            w.template.clone(),
            DohMethod::Get,
            Bootstrap::Do53 {
                resolver: "203.0.113.250".parse().unwrap(),
            },
        );
        let q = builder::query(1, "x.probe.example", RecordType::A).unwrap();
        assert!(doh.query_once(&mut w.net, w.client, &q).is_err());
    }

    #[test]
    fn figure2_shapes_on_the_wire() {
        // The two request forms of Figure 2, as actual bytes.
        let q = builder::query(0, "example.com", RecordType::A).unwrap();
        let wire = q.encode().unwrap();
        let template = UriTemplate::parse("https://dns.example.com/dns-query{?dns}").unwrap();
        let get = Request::get(&template.expand_get(&base64url_encode(&wire)))
            .with_header("Host", "dns.example.com")
            .with_header("Accept", DNS_MESSAGE_TYPE);
        let text = String::from_utf8(get.encode()).unwrap();
        assert!(text.starts_with("GET /dns-query?dns="));
        assert!(text.contains("Accept: application/dns-message"));
        let post = Request::post(&template.post_target(), DNS_MESSAGE_TYPE, wire.clone());
        let bytes = post.encode();
        assert!(
            bytes.windows(wire.len()).any(|w| w == &wire[..]),
            "body carries wire query"
        );
    }
}
