//! # doe-protocols — DNS transports, encrypted and not
//!
//! Everything that moves DNS messages in the study:
//!
//! * [`do53`] — classic clear-text DNS over UDP (with TC→TCP retry) and
//!   over TCP (RFC 1035 framing, reusable connections: the paper's
//!   clear-text baseline, §4.1),
//! * [`dot`] — DNS over TLS (RFC 7858, port 853) with the Strict and
//!   Opportunistic usage profiles of RFC 8310 and connection reuse,
//! * [`doh`] — DNS over HTTPS (RFC 8484, GET and POST forms, URI
//!   templates, bootstrap resolution; Strict-profile-only by design),
//! * [`doq`] — DNS over QUIC (draft-huitema-quic-dnsoquic: port 784,
//!   1-RTT setup over UDP, DoT fallback) — the paper found *no* real-world
//!   implementation, so ours demonstrates the protocol's properties for
//!   the Table 1 comparison,
//! * [`dnscrypt`] — DNSCrypt v2 (port 443, non-TLS construction,
//!   certificate via TXT bootstrap),
//! * [`responder`] / [`recursive`] — server-side: authoritative servers
//!   (with query ground-truth logs), recursive resolvers with caches,
//!   fixed-answer filters, and flaky back-ends,
//! * [`stub`] — a user-facing stub resolver that composes the above with
//!   profile-driven fallback, the public API a downstream client would
//!   embed.
//!
//! All transports run over [`netsim`] and charge honest round trips, so
//! latency comparisons between them are meaningful (§4.3 of the paper).
//!
//! ```
//! use dnswire::{builder, Rcode, RecordType};
//! use doe_protocols::responder::AuthoritativeServer;
//! use doe_protocols::{do53_udp_query, Do53UdpService};
//! use dnswire::zone::Zone;
//! use dnswire::{Name, RData};
//! use netsim::{HostMeta, Network, NetworkConfig, SimDuration};
//! use std::sync::Arc;
//!
//! // A resolver serving one zone, queried over clear-text UDP.
//! let mut net = Network::new(NetworkConfig::default(), 1);
//! let server = "192.0.2.53".parse().unwrap();
//! let client = "198.51.100.1".parse().unwrap();
//! net.add_host(HostMeta::new(server));
//! net.add_host(HostMeta::new(client));
//! let apex = Name::parse("example.org").unwrap();
//! let mut zone = Zone::new(apex.clone());
//! zone.add_record(&apex.prepend("www").unwrap(), 60, RData::A("203.0.113.1".parse().unwrap()));
//! net.bind_udp(server, 53, Arc::new(Do53UdpService::new(
//!     Arc::new(AuthoritativeServer::new(vec![zone])),
//! )));
//!
//! let q = builder::query(1, "www.example.org", RecordType::A).unwrap();
//! let reply = do53_udp_query(&mut net, client, server, &q, SimDuration::from_secs(5), 1).unwrap();
//! assert_eq!(reply.message.rcode(), Rcode::NoError);
//! ```

pub mod dnscrypt;
pub mod do53;
pub mod doh;
pub mod doq;
pub mod dot;
pub mod error;
pub mod machine;
pub mod recursive;
pub mod responder;
pub mod stub;
pub mod tap;

pub use do53::{do53_tcp_query, do53_udp_query, Do53TcpConn, Do53TcpService, Do53UdpService};
pub use doh::{Bootstrap, DohBackend, DohClient, DohMethod, DohServerService, DohSession};
pub use dot::{DotClient, DotServerService, DotSession};
pub use error::{DnsTransport, QueryError, QueryReply, TransportInfo, WireReply};
pub use machine::{StubMachine, StubMachineStats, StubPacing};
pub use recursive::{RecursiveConfig, RecursiveResolver, UpstreamMap};
pub use responder::{
    AuthoritativeServer, DnsResponder, FixedAnswerResponder, PaddedResponder, QueryLog,
    QueryLogEntry,
};
pub use stub::{StubConfig, StubProfile, StubResolver};
pub use tap::{FlowTap, TapDirection, TapMessage};

/// IANA port for DNS over TLS (RFC 7858).
pub const DOT_PORT: u16 = 853;

/// Port shared by DoH and HTTPS.
pub const DOH_PORT: u16 = 443;

/// Port the DNS-over-QUIC draft planned to use.
pub const DOQ_PORT: u16 = 784;

/// Clear-text DNS port.
pub const DO53_PORT: u16 = 53;

/// Port used by DNSCrypt (shared with HTTPS).
pub const DNSCRYPT_PORT: u16 = 443;
