//! The sequence tap: what an on-path observer of an *encrypted* DNS
//! session still sees.
//!
//! A [`FlowTap`] attached to a [`DotSession`](crate::dot::DotSession) or
//! [`DohSession`](crate::doh::DohSession) records, for every message the
//! session moves, the virtual-clock offset, the direction and the padded
//! on-wire DNS payload size — exactly the (gap, direction, size) triple
//! the FOCI '20 sequence-fingerprinting adversary consumes. Plaintext
//! never enters the tap: the observer model sees ciphertext lengths and
//! timing only.

use netsim::SimDuration;

/// Which way a tapped message travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TapDirection {
    /// Client → resolver (a query).
    Up,
    /// Resolver → client (a response).
    Down,
}

/// One message as seen on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapMessage {
    /// Session-clock offset at which the message was observed.
    pub offset: SimDuration,
    /// Direction of travel.
    pub dir: TapDirection,
    /// Padded on-wire DNS payload length (for DoT this includes the
    /// 2-byte RFC 1035 length prefix; for DoH it is the HTTP body).
    pub wire_len: u32,
}

/// An enabled tap: the ordered observation record of one session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowTap {
    /// Observed messages, in session order.
    pub messages: Vec<TapMessage>,
}

impl FlowTap {
    /// An empty tap.
    pub fn new() -> Self {
        FlowTap::default()
    }

    /// Record one observed message.
    pub fn record(&mut self, offset: SimDuration, dir: TapDirection, wire_len: usize) {
        self.messages.push(TapMessage {
            offset,
            dir,
            // Wire frames are bounded well under u32 by the DNS message
            // size limits; saturate rather than wrap on adversarial input.
            wire_len: u32::try_from(wire_len).unwrap_or(u32::MAX),
        });
    }

    /// Total observed bytes in both directions.
    pub fn wire_bytes(&self) -> u64 {
        self.messages.iter().map(|m| u64::from(m.wire_len)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_records_in_order() {
        let mut tap = FlowTap::new();
        tap.record(SimDuration::from_micros(10), TapDirection::Up, 128);
        tap.record(SimDuration::from_micros(250), TapDirection::Down, 468);
        assert_eq!(tap.messages.len(), 2);
        assert_eq!(tap.messages[0].dir, TapDirection::Up);
        assert_eq!(tap.messages[1].wire_len, 468);
        assert_eq!(tap.wire_bytes(), 596);
        assert!(tap.messages[0].offset < tap.messages[1].offset);
    }
}
