//! HTTP/1.1 request and response framing.

use std::fmt;

/// HTTP request methods used by the study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// DoH GET (`?dns=` parameter, Figure 2 top).
    Get,
    /// DoH POST (wire-format body, Figure 2 bottom).
    Post,
    /// Anything else, preserved verbatim.
    Other(String),
}

impl Method {
    fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Other(s) => s,
        }
    }

    fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => Method::Other(other.to_string()),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// HTTP framing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Missing or malformed request/status line.
    BadStartLine(String),
    /// A header line without a colon.
    BadHeader(String),
    /// Body shorter than Content-Length.
    TruncatedBody {
        /// Declared length.
        expected: usize,
        /// Bytes present.
        found: usize,
    },
    /// Message is not valid UTF-8 in its head section.
    BadEncoding,
    /// No blank line terminating the header block.
    MissingHeaderTerminator,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadStartLine(l) => write!(f, "bad start line {l:?}"),
            HttpError::BadHeader(l) => write!(f, "bad header {l:?}"),
            HttpError::TruncatedBody { expected, found } => {
                write!(f, "body truncated: {found}/{expected} bytes")
            }
            HttpError::BadEncoding => write!(f, "head is not UTF-8"),
            HttpError::MissingHeaderTerminator => write!(f, "missing CRLFCRLF"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Split raw bytes into (head, body) at the first CRLFCRLF.
fn split_head(data: &[u8]) -> Result<(&str, &[u8]), HttpError> {
    let pos = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(HttpError::MissingHeaderTerminator)?;
    let head = std::str::from_utf8(&data[..pos]).map_err(|_| HttpError::BadEncoding)?;
    Ok((head, &data[pos + 4..]))
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_string()))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

fn header_get<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn body_with_length(headers: &[(String, String)], body: &[u8]) -> Result<Vec<u8>, HttpError> {
    match header_get(headers, "content-length") {
        Some(len_str) => {
            let expected: usize = len_str
                .parse()
                .map_err(|_| HttpError::BadHeader(format!("Content-Length: {len_str}")))?;
            if body.len() < expected {
                return Err(HttpError::TruncatedBody {
                    expected,
                    found: body.len(),
                });
            }
            Ok(body[..expected].to_vec())
        }
        None => Ok(body.to_vec()),
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Origin-form target: path plus optional query string.
    pub target: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request for `target`.
    pub fn get(target: &str) -> Self {
        Request {
            method: Method::Get,
            target: target.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(target: &str, content_type: &str, body: Vec<u8>) -> Self {
        Request {
            method: Method::Post,
            target: target.to_string(),
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// Append a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_get(&self.headers, name)
    }

    /// The path component of the target (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Look up a query-string parameter (no percent-decoding; DoH's
    /// base64url values never need it).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.target.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Serialise with a correct `Content-Length`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.target).into_bytes();
        let mut has_length = false;
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("content-length") {
                has_length = true;
            }
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !has_length && !self.body.is_empty() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a complete request.
    pub fn decode(data: &[u8]) -> Result<Self, HttpError> {
        let (head, body) = split_head(data)?;
        let mut lines = head.lines();
        let start = lines
            .next()
            .ok_or_else(|| HttpError::BadStartLine(String::new()))?;
        let mut parts = start.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::BadStartLine(start.into()))?;
        let target = parts
            .next()
            .ok_or_else(|| HttpError::BadStartLine(start.into()))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::BadStartLine(start.into()))?;
        if !version.starts_with("HTTP/") {
            return Err(HttpError::BadStartLine(start.into()));
        }
        let headers = parse_headers(lines)?;
        let body = body_with_length(&headers, body)?;
        Ok(Request {
            method: Method::parse(method),
            target: target.to_string(),
            headers,
            body,
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers in order.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a typed body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Self {
        Response {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// An empty response with `status`.
    pub fn status(status: u16, reason: &str) -> Self {
        Response {
            status,
            reason: reason.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// 404 with a plain-text body.
    pub fn not_found() -> Self {
        let mut r = Response::status(404, "Not Found");
        r.headers.push(("Content-Type".into(), "text/plain".into()));
        r.body = b"not found".to_vec();
        r
    }

    /// 400 with a reason.
    pub fn bad_request(msg: &str) -> Self {
        let mut r = Response::status(400, "Bad Request");
        r.headers.push(("Content-Type".into(), "text/plain".into()));
        r.body = msg.as_bytes().to_vec();
        r
    }

    /// Append a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_get(&self.headers, name)
    }

    /// Serialise with a correct `Content-Length`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).into_bytes();
        let mut has_length = false;
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("content-length") {
                has_length = true;
            }
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !has_length {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a complete response.
    pub fn decode(data: &[u8]) -> Result<Self, HttpError> {
        let (head, body) = split_head(data)?;
        let mut lines = head.lines();
        let start = lines
            .next()
            .ok_or_else(|| HttpError::BadStartLine(String::new()))?;
        let mut parts = start.splitn(3, ' ');
        let version = parts
            .next()
            .ok_or_else(|| HttpError::BadStartLine(start.into()))?;
        if !version.starts_with("HTTP/") {
            return Err(HttpError::BadStartLine(start.into()));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::BadStartLine(start.into()))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        let body = body_with_length(&headers, body)?;
        Ok(Response {
            status,
            reason,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_round_trip() {
        let req = Request::get("/dns-query?dns=AAAB")
            .with_header("Host", "dns.example.com")
            .with_header("Accept", "application/dns-message");
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.method, Method::Get);
        assert_eq!(back.path(), "/dns-query");
        assert_eq!(back.query_param("dns"), Some("AAAB"));
        assert_eq!(back.header("host"), Some("dns.example.com"));
        assert_eq!(back.header("HOST"), Some("dns.example.com"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn post_round_trip_with_binary_body() {
        let body = vec![0u8, 1, 2, 255, 254];
        let req = Request::post("/dns-query", "application/dns-message", body.clone());
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.body, body);
        assert_eq!(back.header("content-type"), Some("application/dns-message"));
        assert_eq!(back.header("content-length"), Some("5"));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok("application/dns-message", vec![9, 8, 7])
            .with_header("Cache-Control", "max-age=60");
        let back = Response::decode(&resp.encode()).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.body, vec![9, 8, 7]);
        assert_eq!(back.header("cache-control"), Some("max-age=60"));
    }

    #[test]
    fn error_helpers() {
        assert_eq!(Response::not_found().status, 404);
        assert_eq!(Response::bad_request("nope").status, 400);
        let r = Response::status(502, "Bad Gateway");
        let back = Response::decode(&r.encode()).unwrap();
        assert_eq!(back.status, 502);
        assert_eq!(back.reason, "Bad Gateway");
    }

    #[test]
    fn truncated_body_detected() {
        let mut bytes = Request::post("/x", "text/plain", b"full body".to_vec()).encode();
        bytes.truncate(bytes.len() - 4);
        assert!(matches!(
            Request::decode(&bytes),
            Err(HttpError::TruncatedBody { .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(b"not http at all").is_err());
        assert!(Request::decode(b"GET\r\n\r\n").is_err());
        assert!(Response::decode(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(Request::decode(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
    }

    #[test]
    fn extra_bytes_beyond_content_length_ignored() {
        let mut bytes = Response::ok("text/plain", b"12345".to_vec()).encode();
        bytes.extend_from_slice(b"trailing junk");
        let back = Response::decode(&bytes).unwrap();
        assert_eq!(back.body, b"12345");
    }

    #[test]
    fn query_param_edge_cases() {
        let req = Request::get("/resolve?name=example.com&type=A");
        assert_eq!(req.query_param("name"), Some("example.com"));
        assert_eq!(req.query_param("type"), Some("A"));
        assert_eq!(req.query_param("dns"), None);
        let no_query = Request::get("/dns-query");
        assert_eq!(no_query.query_param("dns"), None);
        assert_eq!(no_query.path(), "/dns-query");
    }
}
