//! base64url without padding (RFC 4648 §5), as required by RFC 8484 for
//! the `dns` query parameter of DoH GET requests.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encode bytes as unpadded base64url.
pub fn base64url_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3f] as char);
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3f] as char);
        }
    }
    out
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'-' => Some(62),
        b'_' => Some(63),
        _ => None,
    }
}

/// Decode unpadded base64url; `None` on any invalid character or length.
pub fn base64url_decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if bytes.len() % 4 == 1 {
        return None; // impossible length
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    for chunk in bytes.chunks(4) {
        let mut acc: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            acc |= decode_char(c)? << (18 - 6 * i);
        }
        out.push((acc >> 16) as u8);
        if chunk.len() > 2 {
            out.push((acc >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(acc as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 4648 test vectors, translated to the url-safe alphabet.
        assert_eq!(base64url_encode(b""), "");
        assert_eq!(base64url_encode(b"f"), "Zg");
        assert_eq!(base64url_encode(b"fo"), "Zm8");
        assert_eq!(base64url_encode(b"foo"), "Zm9v");
        assert_eq!(base64url_encode(b"foob"), "Zm9vYg");
        assert_eq!(base64url_encode(b"fooba"), "Zm9vYmE");
        assert_eq!(base64url_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn url_safe_alphabet_used() {
        // 0xfb 0xff encodes to characters that would be +/ in plain base64.
        let enc = base64url_encode(&[0xfb, 0xff, 0xbf]);
        assert!(enc.contains('-') || enc.contains('_'));
        assert!(!enc.contains('+') && !enc.contains('/'));
        assert_eq!(base64url_decode(&enc).unwrap(), vec![0xfb, 0xff, 0xbf]);
    }

    #[test]
    fn round_trip_all_lengths() {
        let data: Vec<u8> = (0u8..=255).collect();
        for len in 0..data.len() {
            let enc = base64url_encode(&data[..len]);
            assert!(!enc.contains('='), "no padding allowed");
            assert_eq!(base64url_decode(&enc).unwrap(), &data[..len], "len {len}");
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(base64url_decode("Zg=").is_none(), "padding rejected");
        assert!(base64url_decode("a").is_none(), "length 1 mod 4");
        assert!(base64url_decode("ab c").is_none(), "space rejected");
        assert!(base64url_decode("ab+c").is_none(), "plus rejected");
    }
}
