//! HTTP services for the simulated network: a generic handler adapter and
//! static sites.

use crate::message::{Request, Response};
use netsim::{PeerInfo, Service, ServiceCtx, StreamHandler};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Adapt a request handler into a [`netsim::Service`].
///
/// Each TCP flight is expected to carry one complete HTTP request
/// (keep-alive across flights is supported; pipelining is not — the study's
/// clients are strictly request/response).
pub struct HttpHandlerService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &Request) -> Response + Send + Sync + 'static,
{
    handler: Arc<F>,
}

impl<F> HttpHandlerService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &Request) -> Response + Send + Sync + 'static,
{
    /// Wrap a handler function.
    pub fn new(handler: F) -> Self {
        HttpHandlerService {
            handler: Arc::new(handler),
        }
    }
}

struct HttpHandler<F> {
    handler: Arc<F>,
    peer: PeerInfo,
}

impl<F> StreamHandler for HttpHandler<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &Request) -> Response + Send + Sync + 'static,
{
    fn on_bytes(&mut self, ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
        match Request::decode(data) {
            Ok(req) => (self.handler)(ctx, self.peer, &req).encode(),
            Err(e) => Response::bad_request(&e.to_string()).encode(),
        }
    }
}

impl<F> Service for HttpHandlerService<F>
where
    F: Fn(&mut ServiceCtx<'_>, PeerInfo, &Request) -> Response + Send + Sync + 'static,
{
    fn open_stream(&self, peer: PeerInfo) -> Box<dyn StreamHandler> {
        Box::new(HttpHandler {
            handler: Arc::clone(&self.handler),
            peer,
        })
    }

    fn protocol(&self) -> &'static str {
        "http"
    }
}

/// A static website: path → (content type, body).
///
/// Used for the webpages the forensics step fetches from 1.1.1.1 squatters
/// ("MikroTik Router", "Powerbox Gvt Modem", coin-mining injections) and
/// for the scanner's opt-out page.
#[derive(Debug, Clone, Default)]
pub struct StaticSite {
    pages: BTreeMap<String, (String, Vec<u8>)>,
}

impl StaticSite {
    /// An empty site (every request 404s).
    pub fn new() -> Self {
        Self::default()
    }

    /// A one-page site serving `html` at `/`.
    pub fn single_page(html: &str) -> Self {
        let mut site = StaticSite::new();
        site.add_page("/", "text/html", html.as_bytes().to_vec());
        site
    }

    /// Register a page.
    pub fn add_page(&mut self, path: &str, content_type: &str, body: Vec<u8>) {
        self.pages
            .insert(path.to_string(), (content_type.to_string(), body));
    }

    /// Look up a page (exact path match).
    pub fn page(&self, path: &str) -> Option<&(String, Vec<u8>)> {
        self.pages.get(path)
    }
}

impl Service for StaticSite {
    fn open_stream(&self, _peer: PeerInfo) -> Box<dyn StreamHandler> {
        struct SiteHandler {
            pages: BTreeMap<String, (String, Vec<u8>)>,
        }
        impl StreamHandler for SiteHandler {
            fn on_bytes(&mut self, _ctx: &mut ServiceCtx<'_>, data: &[u8]) -> Vec<u8> {
                match Request::decode(data) {
                    Ok(req) => match self.pages.get(req.path()) {
                        Some((ctype, body)) => Response::ok(ctype, body.clone()).encode(),
                        None => Response::not_found().encode(),
                    },
                    Err(e) => Response::bad_request(&e.to_string()).encode(),
                }
            }
        }
        Box::new(SiteHandler {
            pages: self.pages.clone(),
        })
    }

    fn protocol(&self) -> &'static str {
        "http-static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostMeta, Network, NetworkConfig};
    use std::net::Ipv4Addr;

    fn world() -> (Network, Ipv4Addr, Ipv4Addr) {
        let mut net = Network::new(NetworkConfig::default(), 5);
        let server: Ipv4Addr = "192.0.2.80".parse().unwrap();
        let client: Ipv4Addr = "198.51.100.80".parse().unwrap();
        net.add_host(HostMeta::new(server));
        net.add_host(HostMeta::new(client));
        (net, client, server)
    }

    #[test]
    fn handler_service_end_to_end() {
        let (mut net, client, server) = world();
        net.bind_tcp(
            server,
            80,
            Arc::new(HttpHandlerService::new(|_ctx, _peer, req: &Request| {
                Response::ok(
                    "text/plain",
                    format!("you asked {}", req.path()).into_bytes(),
                )
            })),
        );
        let mut conn = net.connect(client, server, 80).unwrap();
        let raw = conn
            .request(&mut net, &Request::get("/hello").encode())
            .unwrap();
        let resp = Response::decode(&raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"you asked /hello");
    }

    #[test]
    fn static_site_serves_and_404s() {
        let (mut net, client, server) = world();
        let mut site = StaticSite::new();
        site.add_page("/", "text/html", b"<h1>MikroTik Router</h1>".to_vec());
        net.bind_tcp(server, 80, Arc::new(site));
        let mut conn = net.connect(client, server, 80).unwrap();
        let raw = conn.request(&mut net, &Request::get("/").encode()).unwrap();
        let resp = Response::decode(&raw).unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("MikroTik"));
        let raw = conn
            .request(&mut net, &Request::get("/missing").encode())
            .unwrap();
        assert_eq!(Response::decode(&raw).unwrap().status, 404);
    }

    #[test]
    fn malformed_request_gets_400() {
        let (mut net, client, server) = world();
        net.bind_tcp(server, 80, Arc::new(StaticSite::single_page("x")));
        let mut conn = net.connect(client, server, 80).unwrap();
        let raw = conn.request(&mut net, b"garbage bytes").unwrap();
        assert_eq!(Response::decode(&raw).unwrap().status, 400);
    }

    #[test]
    fn keep_alive_across_flights() {
        let (mut net, client, server) = world();
        net.bind_tcp(server, 80, Arc::new(StaticSite::single_page("page")));
        let mut conn = net.connect(client, server, 80).unwrap();
        for _ in 0..3 {
            let raw = conn.request(&mut net, &Request::get("/").encode()).unwrap();
            assert_eq!(Response::decode(&raw).unwrap().status, 200);
        }
        assert_eq!(conn.round_trips(), 4); // connect + 3 requests
    }
}
