//! # httpsim — a small HTTP layer for the simulated web
//!
//! DoH (RFC 8484) rides on HTTPS, so the study needs just enough HTTP:
//! request/response framing, the `GET {?dns}` / `POST` encodings of Figure
//! 2, URI templates to *locate* DoH services, and static sites (the
//! webpages the forensics step fetches from devices squatting on 1.1.1.1,
//! and the scanner's opt-out page).
//!
//! The codec speaks HTTP/1.1 text framing. Real DoH prefers HTTP/2; the
//! study's findings don't depend on multiplexing (each vantage point issues
//! sequential queries), so h2 is represented by the ALPN token only —
//! DESIGN.md records this simplification.
//!
//! ```
//! use httpsim::{Request, Method};
//!
//! let req = Request::get("/dns-query?dns=AAABAAABAAAAAAAA")
//!     .with_header("Host", "dns.example.com")
//!     .with_header("Accept", "application/dns-message");
//! let bytes = req.encode();
//! let back = Request::decode(&bytes).unwrap();
//! assert_eq!(back.method, Method::Get);
//! assert_eq!(back.query_param("dns").unwrap(), "AAABAAABAAAAAAAA");
//! ```

pub mod b64;
pub mod message;
pub mod server;
pub mod uri;

pub use b64::{base64url_decode, base64url_encode};
pub use message::{HttpError, Method, Request, Response};
pub use server::{HttpHandlerService, StaticSite};
pub use uri::{UriTemplate, Url};
