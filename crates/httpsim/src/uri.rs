//! URLs and the DoH URI templates of RFC 8484.
//!
//! A DoH service is *located* by a URI template such as
//! `https://dns.example.com/dns-query{?dns}`; the hostname must be resolved
//! (bootstrapped) before DoH can be used — the property Section 5.3 of the
//! paper exploits to estimate DoH usage from passive DNS.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed absolute URL (scheme, host, port, path, query).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Hostname (not resolved here).
    pub host: String,
    /// Port, defaulted from the scheme when absent.
    pub port: u16,
    /// Path, always starting with `/`.
    pub path: String,
    /// Raw query string without the `?`, if any.
    pub query: Option<String>,
}

impl Url {
    /// Parse an absolute URL. Returns `None` for anything unusable.
    pub fn parse(s: &str) -> Option<Url> {
        let (scheme, rest) = s.split_once("://")?;
        if scheme != "http" && scheme != "https" {
            return None;
        }
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return None;
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (h, p.parse::<u16>().ok()?),
            None => (authority, if scheme == "https" { 443 } else { 80 }),
        };
        if host.is_empty() {
            return None;
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path_query.to_string(), None),
        };
        Some(Url {
            scheme: scheme.to_string(),
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
        })
    }

    /// Path plus query (the HTTP request target).
    pub fn target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let default_port = if self.scheme == "https" { 443 } else { 80 };
        write!(f, "{}://{}", self.scheme, self.host)?;
        if self.port != default_port {
            write!(f, ":{}", self.port)?;
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

/// A DoH URI template: a base URL whose path may end in `{?dns}`.
///
/// Only the RFC 8484 level of templating is supported — the single
/// form-style query continuation used by every resolver in the study's
/// public lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UriTemplate {
    base: Url,
    has_dns_var: bool,
}

impl UriTemplate {
    /// Parse a template like `https://dns.example.com/dns-query{?dns}`.
    pub fn parse(s: &str) -> Option<UriTemplate> {
        let (stripped, has_dns_var) = match s.strip_suffix("{?dns}") {
            Some(prefix) => (prefix, true),
            None => (s, false),
        };
        let base = Url::parse(stripped)?;
        if base.query.is_some() && has_dns_var {
            return None; // `{?dns}` after an existing query is malformed
        }
        Some(UriTemplate { base, has_dns_var })
    }

    /// The service hostname that must be bootstrap-resolved.
    pub fn host(&self) -> &str {
        &self.base.host
    }

    /// The service port.
    pub fn port(&self) -> u16 {
        self.base.port
    }

    /// The service path (e.g. `/dns-query`).
    pub fn path(&self) -> &str {
        &self.base.path
    }

    /// Expand for a GET carrying `dns_b64u` (unpadded base64url message).
    pub fn expand_get(&self, dns_b64u: &str) -> String {
        format!("{}?dns={}", self.base.path, dns_b64u)
    }

    /// The request target for a POST (no query parameter).
    pub fn post_target(&self) -> String {
        self.base.target()
    }
}

impl fmt::Display for UriTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if self.has_dns_var {
            write!(f, "{{?dns}}")?;
        }
        Ok(())
    }
}

/// The well-known DoH path suffixes the scanner greps the URL corpus for
/// (§3.1: "the DoH RFC and large resolvers have specified several common
/// path templates (e.g. /dns-query and /resolve)").
pub const COMMON_DOH_PATHS: [&str; 4] = ["/dns-query", "/resolve", "/query", "/doh"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_defaults_ports() {
        let u = Url::parse("https://dns.example.com/dns-query").unwrap();
        assert_eq!(u.port, 443);
        assert_eq!(u.path, "/dns-query");
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.port, 80);
        assert_eq!(u.path, "/");
    }

    #[test]
    fn url_with_port_and_query() {
        let u = Url::parse("https://dns.example.com:8443/q?dns=AAAA&x=1").unwrap();
        assert_eq!(u.port, 8443);
        assert_eq!(u.query.as_deref(), Some("dns=AAAA&x=1"));
        assert_eq!(u.target(), "/q?dns=AAAA&x=1");
        assert_eq!(u.to_string(), "https://dns.example.com:8443/q?dns=AAAA&x=1");
    }

    #[test]
    fn url_host_lowercased_and_display_hides_default_port() {
        let u = Url::parse("https://DNS.Example.COM/dns-query").unwrap();
        assert_eq!(u.host, "dns.example.com");
        assert_eq!(u.to_string(), "https://dns.example.com/dns-query");
    }

    #[test]
    fn bad_urls_rejected() {
        assert!(Url::parse("ftp://x/").is_none());
        assert!(Url::parse("https://").is_none());
        assert!(Url::parse("no scheme").is_none());
        assert!(Url::parse("https://host:notaport/").is_none());
    }

    #[test]
    fn template_round_trip() {
        let t = UriTemplate::parse("https://cloudflare-dns.com/dns-query{?dns}").unwrap();
        assert_eq!(t.host(), "cloudflare-dns.com");
        assert_eq!(t.path(), "/dns-query");
        assert_eq!(t.expand_get("AAAB"), "/dns-query?dns=AAAB");
        assert_eq!(t.post_target(), "/dns-query");
        assert_eq!(t.to_string(), "https://cloudflare-dns.com/dns-query{?dns}");
    }

    #[test]
    fn template_without_var_still_works() {
        let t = UriTemplate::parse("https://dns.google/resolve").unwrap();
        assert_eq!(t.expand_get("Zm9v"), "/resolve?dns=Zm9v");
    }

    #[test]
    fn template_with_query_plus_var_rejected() {
        assert!(UriTemplate::parse("https://x.example/q?a=1{?dns}").is_none());
    }

    #[test]
    fn common_paths_include_rfc_and_google_styles() {
        assert!(COMMON_DOH_PATHS.contains(&"/dns-query"));
        assert!(COMMON_DOH_PATHS.contains(&"/resolve"));
    }
}
