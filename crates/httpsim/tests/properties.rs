//! Property-based tests for the HTTP codec and base64url.

use httpsim::{base64url_decode, base64url_encode, Request, Response, Url};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9-]{0,12}").expect("regex")
}

fn arb_header_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&&[^:\r\n]]{0,30}").expect("regex")
}

proptest! {
    #[test]
    fn base64url_round_trips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = base64url_encode(&data);
        prop_assert!(enc.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
        prop_assert_eq!(base64url_decode(&enc).unwrap(), data);
    }

    #[test]
    fn base64url_decode_never_panics(s in "\\PC{0,64}") {
        let _ = base64url_decode(&s);
    }

    #[test]
    fn request_round_trips(
        path in proptest::string::string_regex("/[a-z0-9/._-]{0,30}").expect("regex"),
        raw_headers in proptest::collection::vec((arb_token(), arb_header_value()), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..300),
        post in any::<bool>(),
    ) {
        // Header lookup returns the first match, so keep names unique
        // (and away from the length/type headers the codec manages).
        let mut seen = std::collections::HashSet::new();
        let headers: Vec<(String, String)> = raw_headers
            .into_iter()
            .filter(|(n, _)| {
                let key = n.to_ascii_lowercase();
                key != "content-length" && key != "content-type" && seen.insert(key)
            })
            .collect();
        let mut req = if post {
            Request::post(&path, "application/octet-stream", body.clone())
        } else {
            let mut r = Request::get(&path);
            r.body = body.clone();
            r
        };
        for (name, value) in &headers {
            req = req.with_header(name, value.trim());
        }
        let back = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(&back.method, &req.method);
        prop_assert_eq!(&back.target, &req.target);
        prop_assert_eq!(&back.body, &body);
        for (name, value) in &headers {
            prop_assert_eq!(back.header(name), Some(value.trim()));
        }
    }

    #[test]
    fn response_round_trips(
        status in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let resp = Response {
            status,
            reason: "Reason".into(),
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: body.clone(),
        };
        let back = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(back.status, status);
        prop_assert_eq!(back.body, body);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn url_display_reparses(
        host in proptest::string::string_regex("[a-z0-9.-]{1,20}\\.[a-z]{2,4}").expect("regex"),
        path in proptest::string::string_regex("/[a-z0-9/._-]{0,20}").expect("regex"),
        port in prop_oneof![Just(None), (1u16..65535).prop_map(Some)],
    ) {
        let raw = match port {
            Some(p) => format!("https://{host}:{p}{path}"),
            None => format!("https://{host}{path}"),
        };
        let url = Url::parse(&raw).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url, reparsed);
    }
}
