//! End-to-end smoke tests over a scaled-down world: the full stack from
//! vantage client through middleboxes to resolvers and the authoritative
//! ground truth.

use dnswire::{builder, Rcode, RecordType};
use doe_protocols::dot::DotClient;
use doe_protocols::{Bootstrap, DohClient, DohMethod};
use tlssim::TlsClientConfig;
use worldgen::{Affliction, World, WorldConfig};

fn test_world() -> World {
    World::build(WorldConfig::test_scale(42))
}

#[test]
fn world_builds_with_expected_inventory() {
    let w = test_world();
    assert!(
        w.online_dot_resolvers() >= 1_400,
        "{}",
        w.online_dot_resolvers()
    );
    assert_eq!(w.deployment.doh_services.len(), 17);
    assert!(w.proxyrack.clients.len() > 400);
    assert!(w.zhima.clients.len() > 1_000);
    assert!(w.scan_space_size() > 500_000);
    assert!(w.corpus.urls.len() > 2_000);
    assert_eq!(w.scanner_sources.len(), 3);
}

#[test]
fn clean_client_full_stack_dot_query() {
    let mut w = test_world();
    let client = w
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == Affliction::None && c.country.as_str() == "US")
        .expect("clean US client")
        .clone();
    let mut dot = DotClient::new(TlsClientConfig::opportunistic(
        w.trust_store.clone(),
        w.epoch(),
    ));
    let q = builder::query(7, "smoke1.probe.dnsmeasure.example", RecordType::A).unwrap();
    let reply = dot
        .query_once(
            &mut w.net,
            client.ip,
            worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
            None,
            &q,
        )
        .unwrap();
    assert_eq!(reply.message.rcode(), Rcode::NoError);
    // The answer matches the wildcard ground truth.
    match &reply.message.answers[0].rdata {
        dnswire::RData::A(a) => assert_eq!(*a, w.probe.expected_a),
        other => panic!("expected A, got {other:?}"),
    }
    // The authoritative server saw Cloudflare's resolver, not the client.
    let log = w.probe.auth_log.lock();
    let entry = log
        .iter()
        .find(|e| e.qname.to_string().starts_with("smoke1"))
        .expect("query reached authoritative");
    assert_ne!(entry.observed_src, client.ip);
}

#[test]
fn conflicted_client_fails_cloudflare_dot_but_not_doh() {
    let mut w = test_world();
    let client = w
        .proxyrack
        .clients
        .iter()
        .find(|c| matches!(c.affliction, Affliction::Conflict(_)))
        .expect("conflicted client")
        .clone();
    // DoT to 1.1.1.1 fails: the squatter owns the address.
    let mut dot = DotClient::new(TlsClientConfig::opportunistic(
        w.trust_store.clone(),
        w.epoch(),
    ));
    let q = builder::query(8, "smoke2.probe.dnsmeasure.example", RecordType::A).unwrap();
    let result = dot.query_once(
        &mut w.net,
        client.ip,
        worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
        None,
        &q,
    );
    assert!(result.is_err(), "squatted 1.1.1.1 must not answer DoT");
    // DoH via cloudflare-dns.com works: different front address.
    let mut doh = DohClient::new(
        TlsClientConfig::strict(w.trust_store.clone(), w.epoch()),
        w.deployment.doh_services[0].template.clone(),
        DohMethod::Post,
        Bootstrap::Do53 {
            resolver: w.bootstrap_resolver,
        },
    );
    let reply = doh.query_once(&mut w.net, client.ip, &q).unwrap();
    assert_eq!(reply.message.rcode(), Rcode::NoError);
}

#[test]
fn intercepted_client_leaks_queries_opportunistically() {
    let mut w = test_world();
    let client = w
        .proxyrack
        .clients
        .iter()
        .find(|c| {
            matches!(
                &c.affliction,
                Affliction::Intercepted {
                    intercepts_853: true,
                    ..
                }
            )
        })
        .expect("intercepted client")
        .clone();
    let Affliction::Intercepted { ca_cn, .. } = &client.affliction else {
        unreachable!()
    };
    let mut dot = DotClient::new(TlsClientConfig::opportunistic(
        w.trust_store.clone(),
        w.epoch(),
    ));
    let q = builder::query(9, "smoke3.probe.dnsmeasure.example", RecordType::A).unwrap();
    let reply = dot
        .query_once(
            &mut w.net,
            client.ip,
            worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
            None,
            &q,
        )
        .expect("opportunistic DoT proceeds through the interceptor");
    assert_eq!(reply.message.rcode(), Rcode::NoError);
    // Verification failed with the device's CA name.
    match &reply.transport.verify {
        Some(Err(tlssim::CertError::UntrustedCa { ca_cn: seen })) => {
            assert_eq!(seen, ca_cn);
        }
        other => panic!("expected untrusted CA, got {other:?}"),
    }
    // The device logged the plaintext.
    let log = w
        .intercept_logs
        .iter()
        .find(|(cn, _)| cn == ca_cn)
        .map(|(_, log)| log)
        .expect("device log");
    assert!(!log.lock().is_empty(), "interceptor saw the query");
}

#[test]
fn cn_client_blocked_from_google_doh() {
    let mut w = test_world();
    let client = w.zhima.clients[0].clone();
    let google = w
        .deployment
        .doh_services
        .iter()
        .find(|s| s.hostname == "dns.google.com")
        .unwrap()
        .clone();
    let mut doh = DohClient::new(
        TlsClientConfig::strict(w.trust_store.clone(), w.epoch()),
        google.template.clone(),
        DohMethod::Post,
        Bootstrap::Do53 {
            resolver: w.bootstrap_resolver,
        },
    );
    let q = builder::query(10, "smoke4.probe.dnsmeasure.example", RecordType::A).unwrap();
    let err = doh.query_once(&mut w.net, client.ip, &q).unwrap_err();
    // Bootstrap resolves, but the TCP connection to the front blackholes.
    assert!(
        matches!(
            err,
            doe_protocols::QueryError::Tls(tlssim::TlsError::Transport(_))
        ),
        "{err:?}"
    );
}

#[test]
fn quad9_doh_servfails_at_double_digit_rate() {
    let mut w = test_world();
    let client = w
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == Affliction::None)
        .unwrap()
        .clone();
    let quad9 = w
        .deployment
        .doh_services
        .iter()
        .find(|s| s.hostname == "dns.quad9.net")
        .unwrap()
        .clone();
    let mut doh = DohClient::new(
        TlsClientConfig::strict(w.trust_store.clone(), w.epoch()),
        quad9.template.clone(),
        DohMethod::Post,
        Bootstrap::Static(quad9.front),
    );
    let mut session = doh.session(&mut w.net, client.ip).unwrap();
    let mut servfail = 0;
    let n = 120;
    for i in 0..n {
        let q = builder::query(
            i as u16,
            &format!("q9u{i}.probe.dnsmeasure.example"),
            RecordType::A,
        )
        .unwrap();
        let reply = session.query(&mut w.net, &q).unwrap();
        if reply.message.rcode() == Rcode::ServFail {
            servfail += 1;
        }
    }
    let frac = servfail as f64 / n as f64;
    assert!(
        (0.05..0.25).contains(&frac),
        "Quad9 DoH SERVFAIL {frac} (paper: ~13%)"
    );
}

#[test]
fn scan_epoch_changes_online_population() {
    let mut w = test_world();
    let feb = w.online_dot_resolvers();
    let cfg = w.config.clone();
    w.set_epoch(cfg.scan_date(9));
    let may = w.online_dot_resolvers();
    assert!(may > feb, "growth: feb {feb} may {may}");
    // CN cloud shutdown visible in the network itself.
    let cn_online = w
        .deployment
        .dot_resolvers
        .iter()
        .filter(|r| r.country.as_str() == "CN" && r.online_at(cfg.scan_date(9)))
        .count();
    assert!(cn_online <= 45, "CN at May: {cn_online}");
}

#[test]
fn self_built_resolver_serves_all_three_transports() {
    let mut w = test_world();
    let client = w
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == Affliction::None)
        .unwrap()
        .clone();
    let q = builder::query(11, "smoke5.probe.dnsmeasure.example", RecordType::A).unwrap();
    // Do53/UDP.
    let reply = doe_protocols::do53_udp_query(
        &mut w.net,
        client.ip,
        w.self_built.addr,
        &q,
        netsim::SimDuration::from_secs(5),
        1,
    )
    .unwrap();
    assert_eq!(reply.message.rcode(), Rcode::NoError);
    // DoT, strict, with the auth name.
    let mut dot = DotClient::new(TlsClientConfig::strict(w.trust_store.clone(), w.epoch()));
    let auth_name = w.self_built.auth_name.clone();
    let reply = dot
        .query_once(
            &mut w.net,
            client.ip,
            w.self_built.addr,
            Some(&auth_name),
            &q,
        )
        .unwrap();
    assert_eq!(reply.message.rcode(), Rcode::NoError);
    // DoH.
    let mut doh = DohClient::new(
        TlsClientConfig::strict(w.trust_store.clone(), w.epoch()),
        w.self_built.doh_template.clone(),
        DohMethod::Get,
        Bootstrap::Do53 {
            resolver: w.bootstrap_resolver,
        },
    );
    let reply = doh.query_once(&mut w.net, client.ip, &q).unwrap();
    assert_eq!(reply.message.rcode(), Rcode::NoError);
}

#[test]
fn doq_has_no_real_world_deployment() {
    // Table 1/Table 8: no resolver in the world binds port 784.
    let w = test_world();
    for r in &w.deployment.dot_resolvers {
        assert!(w.net.host_meta(r.addr).is_none() || !w.net.open_tcp_ports(r.addr).contains(&784));
    }
}
