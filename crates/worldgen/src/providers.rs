//! Generates the DoT/DoH resolver deployment: who serves, where, since
//! when, and with what certificate hygiene.

use crate::config::{WorldConfig, DOT_COUNTRY_COUNTS, DOT_TAIL_COUNTRY_COUNTS, SCAN_EPOCHS};
use crate::types::{CertProfile, ProviderClass, ResolverBehavior, ResolverDeployment};
use httpsim::UriTemplate;
use netsim::{Asn, CountryCode};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tlssim::DateStamp;

/// A deployed DoH service (separate from the DoT list; fronts share
/// providers but not necessarily addresses).
#[derive(Debug, Clone)]
pub struct DohServiceSpec {
    /// Bootstrap hostname.
    pub hostname: String,
    /// Locator template.
    pub template: UriTemplate,
    /// Front-end address.
    pub front: Ipv4Addr,
    /// Provider key.
    pub provider: String,
    /// Hosting country.
    pub country: CountryCode,
    /// Hosting AS.
    pub asn: Asn,
    /// Anycast front.
    pub anycast: bool,
    /// Quad9-style forwarding front-end: timeout in ms.
    pub backend_timeout_ms: Option<u64>,
    /// Whether the Do53 back-end behind the front is congested.
    pub congested_backend: bool,
    /// Whether the template is in the public curl-wiki list.
    pub in_public_list: bool,
    /// Whether the front address is blocked from CN (Google's case).
    pub blocked_in_cn: bool,
}

/// Everything the provider generator emits.
#[derive(Debug, Clone)]
pub struct ProviderDeployment {
    /// All DoT resolver addresses ever online during the study.
    pub dot_resolvers: Vec<ResolverDeployment>,
    /// The 17 DoH services.
    pub doh_services: Vec<DohServiceSpec>,
    /// Addresses in public DoT lists (the dnsprivacy.org-style roster).
    pub public_dot_list: Vec<Ipv4Addr>,
}

/// Well-known anchor addresses.
pub mod anchors {
    use std::net::Ipv4Addr;

    /// Cloudflare primary.
    pub const CLOUDFLARE_PRIMARY: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);
    /// Cloudflare secondary.
    pub const CLOUDFLARE_SECONDARY: Ipv4Addr = Ipv4Addr::new(1, 0, 0, 1);
    /// Google clear-text primary (Do53 only at study time).
    pub const GOOGLE_PRIMARY: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
    /// Quad9 primary.
    pub const QUAD9_PRIMARY: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);
    /// Quad9 DoH front.
    pub const QUAD9_DOH_FRONT: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 10);
    /// Cloudflare DoH front (cloudflare-dns.com).
    pub const CLOUDFLARE_DOH_FRONT: Ipv4Addr = Ipv4Addr::new(104, 16, 248, 249);
    /// Cloudflare DoH front (mozilla.cloudflare-dns.com).
    pub const MOZILLA_DOH_FRONT: Ipv4Addr = Ipv4Addr::new(104, 16, 249, 249);
    /// Google DoH front — carries other Google services, hence blocked
    /// from CN (Finding 2.2).
    pub const GOOGLE_DOH_FRONT: Ipv4Addr = Ipv4Addr::new(216, 58, 192, 10);
    /// The study's self-built resolver (§4.1): clean-history address.
    pub const SELF_BUILT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 77);
    /// Authoritative server for the probe domain.
    pub const PROBE_AUTH: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 250);
    /// Neutral open bootstrap resolver used by DoH clients.
    pub const BOOTSTRAP_RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 53);
}

fn cc(code: &str) -> CountryCode {
    CountryCode::new(code)
}

/// Deterministic per-country server /16: `(5 + i).(37).0.0/16`-style.
fn server_block_base(index: usize) -> Ipv4Addr {
    Ipv4Addr::new(5 + (index / 200) as u8, (index % 200) as u8 + 1, 0, 0)
}

/// Hands out server addresses per country.
///
/// Ordered maps keep [`ServerAllocator::blocks`] — the scanner's target
/// space — deterministic at the source instead of relying on a
/// downstream sort.
pub struct ServerAllocator {
    country_index: BTreeMap<CountryCode, usize>,
    next_host: BTreeMap<CountryCode, u32>,
    next_index: usize,
}

impl ServerAllocator {
    /// Fresh allocator.
    pub fn new() -> Self {
        ServerAllocator {
            country_index: BTreeMap::new(),
            next_host: BTreeMap::new(),
            next_index: 0,
        }
    }

    /// Allocate a unique server address in `country`'s block.
    pub fn alloc(&mut self, country: CountryCode) -> Ipv4Addr {
        let idx = *self.country_index.entry(country).or_insert_with(|| {
            let i = self.next_index;
            self.next_index += 1;
            i
        });
        let n = self.next_host.entry(country).or_insert(1);
        let base = u32::from(server_block_base(idx));
        let addr = Ipv4Addr::from(base + *n);
        *n += 1;
        assert!(*n < 65_000, "country {country} server block exhausted");
        addr
    }

    /// The /16 blocks allocated so far (the scanner's target space).
    pub fn blocks(&self) -> Vec<netsim::Netblock> {
        self.country_index
            .values()
            .map(|&i| netsim::Netblock::new(server_block_base(i), 16))
            .collect()
    }

    /// AS number for a country's server block (one hosting AS per
    /// country keeps reporting simple).
    pub fn asn(&self, country: CountryCode) -> Asn {
        let idx = self.country_index.get(&country).copied().unwrap_or(0);
        Asn(64_600 + idx as u32)
    }
}

impl Default for ServerAllocator {
    fn default() -> Self {
        Self::new()
    }
}

const SMALL_WORDS: &[&str] = &[
    "qq", "zap", "privacy", "shield", "nimbus", "copper", "falcon", "quiet", "helio", "sparrow",
    "tundra", "ferret", "brook", "ridge", "comet", "ember", "frost", "gadget", "harbor", "iris",
    "jasper", "karma", "lumen", "mantis", "noble", "onyx", "plume", "quark", "raven", "sable",
];
const SMALL_TLDS: &[&str] = &[
    "dog", "zone", "eu", "net", "org", "io", "de", "info", "sh", "cz",
];

fn small_provider_name(rng: &mut SmallRng, serial: usize) -> String {
    let word = SMALL_WORDS[rng.gen_range(0..SMALL_WORDS.len())];
    let tld = SMALL_TLDS[rng.gen_range(0..SMALL_TLDS.len())];
    format!("{word}{serial}.{tld}")
}

struct ResolverSpec {
    provider: String,
    class: ProviderClass,
    cert: CertProfile,
    behavior: ResolverBehavior,
    advertised: bool,
    anycast: bool,
}

/// Generate the full DoT + DoH deployment.
pub fn generate(cfg: &WorldConfig, rng: &mut SmallRng) -> (ProviderDeployment, ServerAllocator) {
    let mut alloc = ServerAllocator::new();
    let mut resolvers: Vec<ResolverDeployment> = Vec::new();
    let first = cfg.first_scan;

    // Helper to push a resolver with explicit fields.
    let push = |alloc: &mut ServerAllocator,
                resolvers: &mut Vec<ResolverDeployment>,
                country: CountryCode,
                spec: ResolverSpec,
                addr: Option<Ipv4Addr>,
                online_from: DateStamp,
                online_until: Option<DateStamp>| {
        let addr = addr.unwrap_or_else(|| alloc.alloc(country));
        let asn = alloc.asn(country);
        resolvers.push(ResolverDeployment {
            addr,
            provider: spec.provider,
            class: spec.class,
            country,
            asn,
            online_from,
            online_until,
            dot: true,
            doh: None,
            cert: spec.cert,
            behavior: spec.behavior,
            advertised: spec.advertised,
            anycast: spec.anycast,
        });
    };

    // ---- Large providers with fixed anchor addresses -------------------
    push(
        &mut alloc,
        &mut resolvers,
        cc("US"),
        ResolverSpec {
            provider: "cloudflare-dns.com".into(),
            class: ProviderClass::Large,
            cert: CertProfile::Valid,
            behavior: ResolverBehavior::Recursive,
            advertised: true,
            anycast: true,
        },
        Some(anchors::CLOUDFLARE_PRIMARY),
        first + -400,
        None,
    );
    push(
        &mut alloc,
        &mut resolvers,
        cc("US"),
        ResolverSpec {
            provider: "cloudflare-dns.com".into(),
            class: ProviderClass::Large,
            cert: CertProfile::Valid,
            behavior: ResolverBehavior::Recursive,
            advertised: true,
            anycast: true,
        },
        Some(anchors::CLOUDFLARE_SECONDARY),
        first + -400,
        None,
    );
    push(
        &mut alloc,
        &mut resolvers,
        cc("US"),
        ResolverSpec {
            provider: "quad9.net".into(),
            class: ProviderClass::Large,
            cert: CertProfile::Valid,
            behavior: ResolverBehavior::Recursive,
            advertised: true,
            anycast: true,
        },
        Some(anchors::QUAD9_PRIMARY),
        first + -700,
        None,
    );

    // ---- Country fill plan ---------------------------------------------
    // Per-country (feb, may) targets; the three anchors above count
    // against the US quota.
    let mut counts: Vec<(CountryCode, u32, u32)> = DOT_COUNTRY_COUNTS
        .iter()
        .chain(DOT_TAIL_COUNTRY_COUNTS.iter())
        .map(|(code, feb, may)| (cc(code), *feb, *may))
        .collect();
    if let Some(us) = counts.iter_mut().find(|(code, _, _)| code.as_str() == "US") {
        us.1 = us.1.saturating_sub(3);
        us.2 = us.2.saturating_sub(3);
    }

    // Large-provider share of generic slots, by weight (the paper: a few
    // large providers own >75% of addresses).
    let large_fill: &[(&str, u32, bool)] = &[
        // (provider, weight, anycast)
        ("cleanbrowsing.org", 5, true),
        ("cloudflare-dns.com", 2, true),
        ("quad9.net", 1, true),
    ];
    let large_total_weight: u32 = large_fill.iter().map(|f| f.1).sum();

    // Sloppy medium providers that hold the clustered invalid certs
    // (Finding 1.2: 122 invalid resolvers across 62 providers — 47
    // appliances plus ~15 careless providers).
    struct Sloppy {
        name: &'static str,
        country: &'static str,
        total: u32,
        invalid: u32,
        kind: u8, // 0 expired, 1 self-signed, 2 broken chain
    }
    let sloppy: &[Sloppy] = &[
        Sloppy {
            name: "dnsfilter.com",
            country: "US",
            total: 10,
            invalid: 6,
            kind: 0,
        },
        Sloppy {
            name: "oldcert-resolver.net",
            country: "DE",
            total: 7,
            invalid: 6,
            kind: 0,
        },
        Sloppy {
            name: "lapsed-dns.org",
            country: "FR",
            total: 6,
            invalid: 5,
            kind: 0,
        },
        Sloppy {
            name: "stale-resolver.io",
            country: "US",
            total: 6,
            invalid: 5,
            kind: 0,
        },
        Sloppy {
            name: "forgotten-dns.eu",
            country: "NL",
            total: 6,
            invalid: 5,
            kind: 0,
        },
        Sloppy {
            name: "perfect-privacy.com",
            country: "DE",
            total: 15,
            invalid: 2,
            kind: 1,
        },
        Sloppy {
            name: "selfsign-dns.net",
            country: "RU",
            total: 7,
            invalid: 6,
            kind: 1,
        },
        Sloppy {
            name: "homelab-dns.org",
            country: "US",
            total: 6,
            invalid: 5,
            kind: 1,
        },
        Sloppy {
            name: "hobby-resolver.de",
            country: "DE",
            total: 5,
            invalid: 4,
            kind: 1,
        },
        Sloppy {
            name: "diy-dns.cz",
            country: "GB",
            total: 4,
            invalid: 3,
            kind: 1,
        },
        Sloppy {
            name: "tenta.io",
            country: "US",
            total: 8,
            invalid: 7,
            kind: 2,
        },
        Sloppy {
            name: "chainless-dns.com",
            country: "JP",
            total: 8,
            invalid: 7,
            kind: 2,
        },
        Sloppy {
            name: "brokenpki.net",
            country: "BR",
            total: 8,
            invalid: 7,
            kind: 2,
        },
        Sloppy {
            name: "no-intermediate.org",
            country: "RU",
            total: 8,
            invalid: 7,
            kind: 2,
        },
    ];
    // Expired: 6+6+5+5+5 = 27. Self-signed: 2+6+5+4+3 = 20 (+47 FG = 67).
    // Broken: 7+7+7+7 = 28. Invalid providers: 14 + 47 FG = 61 (~62).

    let mut consumed: BTreeMap<CountryCode, (u32, u32)> = BTreeMap::new(); // (feb_used, may_used)
    for s in sloppy {
        let country = cc(s.country);
        for i in 0..s.total {
            let is_invalid = i < s.invalid;
            let cert = if !is_invalid {
                CertProfile::Valid
            } else {
                match s.kind {
                    0 => CertProfile::Expired {
                        // A third lapsed back in 2018 (like 185.56.24.52).
                        expired_on: if i % 3 == 0 {
                            first + -200
                        } else {
                            first + -20
                        },
                    },
                    1 => CertProfile::SelfSigned,
                    _ => CertProfile::BrokenChain,
                }
            };
            let behavior = if s.name == "dnsfilter.com" {
                ResolverBehavior::FixedAnswer(Ipv4Addr::new(203, 0, 170, 1))
            } else {
                ResolverBehavior::Recursive
            };
            push(
                &mut alloc,
                &mut resolvers,
                country,
                ResolverSpec {
                    provider: s.name.to_string(),
                    class: ProviderClass::Medium,
                    cert,
                    behavior,
                    advertised: s.name == "dnsfilter.com" || s.name == "tenta.io",
                    anycast: false,
                },
                None,
                first + -100,
                None,
            );
            let e = consumed.entry(country).or_insert((0, 0));
            e.0 += 1;
            e.1 += 1;
        }
    }

    // FortiGate DoT proxies: 47 by the last scan, ~30 already at the
    // first. Each has a unique device CN, so each is its own "provider".
    let fg_countries = ["US", "DE", "JP", "BR", "FR", "GB", "NL", "RU", "IT", "KR"];
    for i in 0..47u32 {
        let country = cc(fg_countries[(i as usize) % fg_countries.len()]);
        let online_from = if i < 30 {
            first + -50
        } else {
            // Appear over the scan window.
            first + ((i - 30) as i64 * 5 + 3)
        };
        push(
            &mut alloc,
            &mut resolvers,
            country,
            ResolverSpec {
                provider: format!("FGT60D{:010}", 3_916_800_000u64 + i as u64),
                class: ProviderClass::Appliance,
                cert: CertProfile::SelfSigned,
                behavior: ResolverBehavior::DotProxy {
                    upstream: anchors::CLOUDFLARE_PRIMARY,
                },
                advertised: false,
                anycast: false,
            },
            None,
            online_from,
            None,
        );
        let e = consumed.entry(country).or_insert((0, 0));
        if online_from <= first {
            e.0 += 1;
        }
        e.1 += 1;
    }

    // The CN cloud provider that shuts down mid-study (Table 2's -84%).
    {
        let country = cc("CN");
        let (feb, may) = (257u32, 40u32);
        let dying = feb - may; // 217 resolvers die around scan 3-4
        for i in 0..dying {
            let until = cfg.scan_date(3) + (i % 10) as i64;
            push(
                &mut alloc,
                &mut resolvers,
                country,
                ResolverSpec {
                    provider: "cn-cloud-dns.cn".into(),
                    class: ProviderClass::Large,
                    cert: CertProfile::Valid,
                    behavior: ResolverBehavior::Recursive,
                    advertised: false,
                    anycast: false,
                },
                None,
                first + -30,
                Some(until),
            );
        }
        let e = consumed.entry(country).or_insert((0, 0));
        e.0 += dying; // online at Feb, gone by May
    }

    // ---- Generic fill to hit the per-country trajectories ---------------
    let mut small_serial = 0usize;
    let mut large_rr = 0u32;
    // Small providers own 1-3 addresses; most own exactly one (Figure 4).
    #[allow(unused_assignments)]
    let mut small_current: Option<(String, u32)> = None;
    for (country, feb_target, may_target) in counts {
        small_current = None; // small providers don't span countries
        let (feb_used, may_used) = consumed.get(&country).copied().unwrap_or((0, 0));
        let feb_needed = feb_target.saturating_sub(feb_used);
        let may_needed = may_target.saturating_sub(may_used);

        let stable = feb_needed.min(may_needed);
        let growth = may_needed.saturating_sub(feb_needed);
        let decline = feb_needed.saturating_sub(may_needed);

        let emit = |rng: &mut SmallRng,
                    alloc: &mut ServerAllocator,
                    resolvers: &mut Vec<ResolverDeployment>,
                    online_from: DateStamp,
                    online_until: Option<DateStamp>,
                    large_rr: &mut u32,
                    small_serial: &mut usize,
                    small_current: &mut Option<(String, u32)>| {
            // ~90% of generic capacity belongs to the big players — the
            // paper: a few large providers own >75% of addresses.
            let spec = if rng.gen_bool(0.90) {
                let mut pick = *large_rr % large_total_weight;
                *large_rr += 1;
                let mut chosen = large_fill[0];
                for f in large_fill {
                    if pick < f.1 {
                        chosen = *f;
                        break;
                    }
                    pick -= f.1;
                }
                ResolverSpec {
                    provider: chosen.0.to_string(),
                    class: ProviderClass::Large,
                    cert: CertProfile::Valid,
                    behavior: ResolverBehavior::Recursive,
                    advertised: false, // unadvertised extra addresses
                    anycast: chosen.2,
                }
            } else {
                let name = match small_current {
                    Some((ref name, ref mut remaining)) if *remaining > 0 => {
                        *remaining -= 1;
                        name.clone()
                    }
                    _ => {
                        *small_serial += 1;
                        let name = small_provider_name(rng, *small_serial);
                        // 60% single-address; the rest hold 2-3.
                        let extra = if rng.gen_bool(0.6) {
                            0
                        } else {
                            rng.gen_range(1..=2)
                        };
                        *small_current = Some((name.clone(), extra));
                        name
                    }
                };
                ResolverSpec {
                    provider: name,
                    class: ProviderClass::Small,
                    cert: CertProfile::Valid,
                    behavior: ResolverBehavior::Recursive,
                    advertised: false,
                    anycast: false,
                }
            };
            push(
                alloc,
                resolvers,
                country,
                spec,
                None,
                online_from,
                online_until,
            );
        };

        for _ in 0..stable {
            emit(
                rng,
                &mut alloc,
                &mut resolvers,
                first + -60,
                None,
                &mut large_rr,
                &mut small_serial,
                &mut small_current,
            );
        }
        for i in 0..growth {
            // New deployments spread across the window (IE/US quadrupling).
            let epoch = 1 + (i as usize * (SCAN_EPOCHS - 1)) / growth.max(1) as usize;
            let from = cfg.scan_date(epoch.min(SCAN_EPOCHS - 1)) + -2;
            emit(
                rng,
                &mut alloc,
                &mut resolvers,
                from,
                None,
                &mut large_rr,
                &mut small_serial,
                &mut small_current,
            );
        }
        for i in 0..decline {
            let epoch = 1 + (i as usize * (SCAN_EPOCHS - 1)) / decline.max(1) as usize;
            let until = cfg.scan_date(epoch.min(SCAN_EPOCHS - 1)) + -1;
            emit(
                rng,
                &mut alloc,
                &mut resolvers,
                first + -60,
                Some(until),
                &mut large_rr,
                &mut small_serial,
                &mut small_current,
            );
        }
    }

    // ---- DoH services (17: 15 public-listed + 2 discovered) -------------
    let mut doh_services = Vec::new();
    let mut doh = |hostname: &str,
                   path: &str,
                   front: Ipv4Addr,
                   provider: &str,
                   country: &str,
                   anycast: bool,
                   backend_timeout_ms: Option<u64>,
                   congested_backend: bool,
                   in_public_list: bool,
                   blocked_in_cn: bool| {
        let template = UriTemplate::parse(&format!("https://{hostname}{path}{{?dns}}"))
            .expect("static templates parse");
        doh_services.push(DohServiceSpec {
            hostname: hostname.to_string(),
            template,
            front,
            provider: provider.to_string(),
            country: cc(country),
            asn: Asn(64_500),
            anycast,
            backend_timeout_ms,
            congested_backend,
            in_public_list,
            blocked_in_cn,
        });
    };
    doh(
        "cloudflare-dns.com",
        "/dns-query",
        anchors::CLOUDFLARE_DOH_FRONT,
        "cloudflare-dns.com",
        "US",
        true,
        None,
        false,
        true,
        false,
    );
    doh(
        "mozilla.cloudflare-dns.com",
        "/dns-query",
        anchors::MOZILLA_DOH_FRONT,
        "cloudflare-dns.com",
        "US",
        true,
        None,
        false,
        true,
        false,
    );
    doh(
        "dns.google.com",
        "/resolve",
        anchors::GOOGLE_DOH_FRONT,
        "dns.google.com",
        "US",
        false,
        None,
        false,
        true,
        true,
    );
    doh(
        "dns.quad9.net",
        "/dns-query",
        anchors::QUAD9_DOH_FRONT,
        "quad9.net",
        "US",
        true,
        Some(2_000),
        true,
        true,
        false,
    );
    doh(
        "doh.cleanbrowsing.org",
        "/doh",
        Ipv4Addr::new(185, 228, 168, 10),
        "cleanbrowsing.org",
        "IE",
        true,
        None,
        false,
        true,
        false,
    );
    doh(
        "doh.crypto.sx",
        "/dns-query",
        Ipv4Addr::new(104, 18, 44, 44),
        "crypto.sx",
        "US",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "doh.securedns.eu",
        "/dns-query",
        Ipv4Addr::new(146, 185, 167, 43),
        "securedns.eu",
        "NL",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "doh-jp.blahdns.com",
        "/dns-query",
        Ipv4Addr::new(108, 61, 201, 119),
        "blahdns.com",
        "JP",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "dns.adguard.com",
        "/dns-query",
        Ipv4Addr::new(176, 103, 130, 130),
        "adguard.com",
        "RU",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "doh.appliedprivacy.net",
        "/query",
        Ipv4Addr::new(146, 255, 56, 98),
        "appliedprivacy.net",
        "DE",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "odvr.nic.cz",
        "/doh",
        Ipv4Addr::new(193, 17, 47, 1),
        "nic.cz",
        "CZ",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "dns.dnsoverhttps.net",
        "/dns-query",
        Ipv4Addr::new(45, 77, 124, 64),
        "dnsoverhttps.net",
        "US",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "dns.dns-over-https.com",
        "/dns-query",
        Ipv4Addr::new(104, 236, 178, 232),
        "dns-over-https.com",
        "US",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "commons.host",
        "/dns-query",
        Ipv4Addr::new(51, 15, 124, 208),
        "commons.host",
        "FR",
        false,
        None,
        false,
        true,
        false,
    );
    doh(
        "doh.powerdns.org",
        "/dns-query",
        Ipv4Addr::new(136, 144, 215, 158),
        "powerdns.org",
        "NL",
        false,
        None,
        false,
        true,
        false,
    );
    // The two resolvers the URL corpus surfaced beyond the public list.
    doh(
        "dns.rubyfish.cn",
        "/dns-query",
        Ipv4Addr::new(118, 89, 110, 78),
        "rubyfish.cn",
        "CN",
        false,
        None,
        false,
        false,
        false,
    );
    doh(
        "dns.233py.com",
        "/dns-query",
        Ipv4Addr::new(47, 96, 179, 163),
        "233py.com",
        "CN",
        false,
        None,
        false,
        false,
        false,
    );

    // ---- Public DoT list: primaries of the advertised providers ---------
    let public_dot_list = resolvers
        .iter()
        .filter(|r| r.advertised)
        .map(|r| r.addr)
        .collect();

    (
        ProviderDeployment {
            dot_resolvers: resolvers,
            doh_services,
            public_dot_list,
        },
        alloc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen() -> ProviderDeployment {
        let cfg = WorldConfig::default();
        let mut rng = SmallRng::seed_from_u64(7);
        generate(&cfg, &mut rng).0
    }

    fn online_count(dep: &ProviderDeployment, date: DateStamp, country: Option<&str>) -> usize {
        dep.dot_resolvers
            .iter()
            .filter(|r| r.online_at(date))
            .filter(|r| country.is_none_or(|c| r.country.as_str() == c))
            .count()
    }

    #[test]
    fn feb_and_may_country_totals_match_table2() {
        let cfg = WorldConfig::default();
        let dep = gen();
        let feb = cfg.scan_date(0);
        let may = cfg.scan_date(SCAN_EPOCHS - 1);
        for (code, feb_n, may_n) in DOT_COUNTRY_COUNTS {
            let got_feb = online_count(&dep, feb, Some(code)) as i64;
            let got_may = online_count(&dep, may, Some(code)) as i64;
            assert!(
                (got_feb - *feb_n as i64).abs() <= 3,
                "{code} Feb: got {got_feb}, want {feb_n}"
            );
            assert!(
                (got_may - *may_n as i64).abs() <= 3,
                "{code} May: got {got_may}, want {may_n}"
            );
        }
    }

    #[test]
    fn overall_scale_above_1500_per_scan() {
        let cfg = WorldConfig::default();
        let dep = gen();
        for epoch in 0..SCAN_EPOCHS {
            let n = online_count(&dep, cfg.scan_date(epoch), None);
            assert!(n >= 1400, "epoch {epoch}: {n} resolvers");
        }
    }

    #[test]
    fn invalid_cert_buckets_near_paper() {
        let cfg = WorldConfig::default();
        let dep = gen();
        let may = cfg.scan_date(SCAN_EPOCHS - 1);
        let mut expired = 0;
        let mut selfsigned = 0;
        let mut chain = 0;
        for r in dep.dot_resolvers.iter().filter(|r| r.online_at(may)) {
            match r.cert {
                CertProfile::Expired { .. } => expired += 1,
                CertProfile::SelfSigned => selfsigned += 1,
                CertProfile::BrokenChain => chain += 1,
                CertProfile::Valid => {}
            }
        }
        assert!(
            (25..=30).contains(&expired),
            "expired {expired} (paper: 27)"
        );
        assert!(
            (60..=70).contains(&selfsigned),
            "self-signed {selfsigned} (paper: 67)"
        );
        assert!((26..=30).contains(&chain), "chain {chain} (paper: 28)");
    }

    #[test]
    fn provider_long_tail_and_large_share() {
        let cfg = WorldConfig::default();
        let dep = gen();
        let may = cfg.scan_date(SCAN_EPOCHS - 1);
        let mut per_provider: BTreeMap<&str, usize> = BTreeMap::new();
        for r in dep.dot_resolvers.iter().filter(|r| r.online_at(may)) {
            *per_provider.entry(r.provider.as_str()).or_default() += 1;
        }
        let total: usize = per_provider.values().sum();
        let singles = per_provider.values().filter(|&&n| n == 1).count();
        // 70% of providers operate a single address (Figure 4).
        assert!(
            singles as f64 / per_provider.len() as f64 > 0.55,
            "singles {singles}/{}",
            per_provider.len()
        );
        // Large providers own most addresses (paper: >75%).
        let large: usize = dep
            .dot_resolvers
            .iter()
            .filter(|r| r.online_at(may) && r.class == ProviderClass::Large)
            .count();
        assert!(
            large as f64 / total as f64 > 0.7,
            "large share {large}/{total}"
        );
    }

    #[test]
    fn seventeen_doh_services_two_unlisted() {
        let dep = gen();
        assert_eq!(dep.doh_services.len(), 17);
        let unlisted = dep
            .doh_services
            .iter()
            .filter(|s| !s.in_public_list)
            .count();
        assert_eq!(unlisted, 2);
        let quad9 = dep
            .doh_services
            .iter()
            .find(|s| s.hostname == "dns.quad9.net")
            .unwrap();
        assert_eq!(quad9.backend_timeout_ms, Some(2_000));
        assert!(quad9.congested_backend);
        let google = dep
            .doh_services
            .iter()
            .find(|s| s.hostname == "dns.google.com")
            .unwrap();
        assert!(google.blocked_in_cn);
    }

    #[test]
    fn anchors_present_and_unique_addresses() {
        let dep = gen();
        let addrs: Vec<Ipv4Addr> = dep.dot_resolvers.iter().map(|r| r.addr).collect();
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(unique.len(), addrs.len(), "duplicate resolver addresses");
        assert!(addrs.contains(&anchors::CLOUDFLARE_PRIMARY));
        assert!(addrs.contains(&anchors::QUAD9_PRIMARY));
        assert!(
            !addrs.contains(&anchors::GOOGLE_PRIMARY),
            "Google DoT unannounced"
        );
    }

    #[test]
    fn determinism() {
        let cfg = WorldConfig::default();
        let a = {
            let mut rng = SmallRng::seed_from_u64(9);
            generate(&cfg, &mut rng).0
        };
        let b = {
            let mut rng = SmallRng::seed_from_u64(9);
            generate(&cfg, &mut rng).0
        };
        assert_eq!(a.dot_resolvers.len(), b.dot_resolvers.len());
        for (x, y) in a.dot_resolvers.iter().zip(&b.dot_resolvers) {
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.provider, y.provider);
        }
    }

    #[test]
    fn fortigate_proxies_counted() {
        let cfg = WorldConfig::default();
        let dep = gen();
        let may = cfg.scan_date(SCAN_EPOCHS - 1);
        let fg: Vec<_> = dep
            .dot_resolvers
            .iter()
            .filter(|r| r.class == ProviderClass::Appliance && r.online_at(may))
            .collect();
        assert_eq!(fg.len(), 47);
        assert!(fg
            .iter()
            .all(|r| matches!(r.behavior, ResolverBehavior::DotProxy { .. })));
        assert!(fg.iter().all(|r| r.cert == CertProfile::SelfSigned));
        let feb_fg = dep
            .dot_resolvers
            .iter()
            .filter(|r| r.class == ProviderClass::Appliance && r.online_at(cfg.scan_date(0)))
            .count();
        assert!((25..=35).contains(&feb_fg), "feb FG {feb_fg}");
    }
}
