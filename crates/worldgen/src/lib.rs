//! # worldgen — the calibrated world the study measures
//!
//! Builds a deterministic simulated Internet whose *causes* are set at the
//! rates the IMC'19 paper reports, so the measurement pipeline (scanner,
//! vantage tests, traffic analysis) has to *recover* those rates end to
//! end — validating the pipeline rather than hard-coding its outputs.
//!
//! What gets generated (see DESIGN.md for the full inventory):
//!
//! * the DoT/DoH **resolver deployment**: large providers (Cloudflare,
//!   Google, Quad9, CleanBrowsing, ...), a long tail of single-address
//!   providers, per-country counts evolving across the ten scan epochs
//!   (Table 2 / Figure 3), certificate health (Figure 4's 25% invalid:
//!   expired / self-signed / broken chains / FortiGate proxies), and the
//!   17 DoH services with their URI templates;
//! * **client populations** for the vantage studies: a global
//!   ProxyRack-like pool (~166 countries) and a censored CN-only
//!   Zhima-like pool, with per-AS middlebox afflictions — port-53
//!   filtering, 1.1.1.1-squatting devices (Table 5), TLS interceptors
//!   (Table 6), GFW-style address blocking;
//! * the **probe infrastructure**: our registered domain, its
//!   authoritative server (whose query log is the interception ground
//!   truth), the self-built resolver, scanner source hosts with opt-out
//!   pages, and the neutral bootstrap resolver;
//! * the **URL corpus** a DoH-discovery pass greps (Section 3.1);
//! * RIPE-Atlas-like **probes** with ISP local resolvers (§3.1's 0.3%
//!   DoT-capable finding).
//!
//! Everything flows from `WorldConfig { seed, scale, .. }`; identical
//! configs build byte-identical worlds.

pub mod calendar;
pub mod clients;
pub mod config;
pub mod corpus;
pub mod devices;
pub mod providers;
pub mod types;
pub mod world;

pub use calendar::Calendar;
pub use config::{CountrySpec, WorldConfig, COUNTRY_TABLE, SCAN_EPOCHS, TAIL_COUNTRIES};
pub use types::{
    Affliction, AtlasProbe, CertProfile, ClientInfo, ClientPool, DeviceKind, DohDeployment,
    InterceptorSpec, ProviderClass, ResolverBehavior, ResolverDeployment,
};
pub use world::{ProbeInfra, World};
