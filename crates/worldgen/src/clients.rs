//! Client-population generation: the ProxyRack-like global pool and the
//! Zhima-like censored pool, with per-AS middlebox afflictions.

use crate::config::{CountrySpec, WorldConfig, COUNTRY_TABLE, TAIL_COUNTRIES};
use crate::types::{Affliction, ClientInfo, ClientPool, DeviceKind, InterceptorSpec};
use netsim::{Asn, CountryCode, Netblock};
use rand::rngs::SmallRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Default spec applied to tail countries.
fn tail_spec(cc: &'static str) -> CountrySpec {
    CountrySpec {
        cc,
        proxyrack_clients: 25,
        filter53_rate: 0.075,
        conflict_rate: 0.006,
        access_ms: 5.0,
        jitter: 0.09,
        loss: 0.003,
        penalty_53_ms: 0.0,
        penalty_853_ms: 0.0,
    }
}

/// All country specs: calibrated table plus the tail.
pub fn all_country_specs() -> Vec<CountrySpec> {
    COUNTRY_TABLE
        .iter()
        .copied()
        .chain(TAIL_COUNTRIES.iter().map(|cc| tail_spec(cc)))
        .collect()
}

/// Where clients live: sequential /24 allocation inside `64.0.0.0/4`
/// (disjoint from the 5.x server space and every anchor address).
pub struct ClientAllocator {
    next_block: u32,
}

const CLIENT_SPACE_BASE: u32 = 64 << 24;
const CLIENT_SPACE_BLOCKS: u32 = 16 << 16; // /24s inside 64.0.0.0/4

impl ClientAllocator {
    /// Fresh allocator.
    pub fn new() -> Self {
        ClientAllocator { next_block: 0 }
    }

    /// Allocate `n` consecutive /24 blocks.
    pub fn alloc_blocks(&mut self, n: u32) -> Vec<Netblock> {
        assert!(
            self.next_block + n <= CLIENT_SPACE_BLOCKS,
            "client space exhausted"
        );
        let start = self.next_block;
        self.next_block += n;
        (start..start + n)
            .map(|i| Netblock::new(Ipv4Addr::from(CLIENT_SPACE_BASE + (i << 8)), 24))
            .collect()
    }
}

impl Default for ClientAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// What the device installer (devices.rs) must build.
#[derive(Debug, Clone, Default)]
pub struct MiddleboxPlan {
    /// Client blocks whose port-53 path to prominent resolvers is filtered.
    pub filtered_blocks: Vec<Netblock>,
    /// Client blocks with a device squatting on 1.1.1.1.
    pub conflict_sites: Vec<(Netblock, DeviceKind)>,
    /// Client blocks behind TLS interceptors.
    pub interceptor_sites: Vec<(Netblock, InterceptorSpec)>,
    /// CN blocks whose 53+853 path to Cloudflare fails (Zhima, Table 4).
    pub cn_cloudflare_blocks: Vec<Netblock>,
    /// CN blocks whose 53 path to 8.8.8.8 fails.
    pub cn_google_dns_blocks: Vec<Netblock>,
}

/// Everything the client generator emits.
pub struct GeneratedClients {
    /// The global residential pool (Table 3, ProxyRack row).
    pub proxyrack: ClientPool,
    /// The censored CN pool (Table 3, Zhima row).
    pub zhima: ClientPool,
    /// Device/policy work orders.
    pub plan: MiddleboxPlan,
    /// Per-client-block geo attribution to register.
    pub geo_entries: Vec<(Netblock, CountryCode, Asn)>,
}

/// The six concretely-named interceptor devices of Table 6.
pub fn named_interceptors() -> Vec<InterceptorSpec> {
    vec![
        InterceptorSpec {
            ca_cn: "SonicWall Firewall DPI-SSL".into(),
            country: "LA",
            as_label: "AS44725 Sinam LLC",
            intercepts_853: true,
        },
        InterceptorSpec {
            ca_cn: "None".into(),
            country: "US",
            as_label: "AS17488 Hathway IP Over Cable Internet",
            intercepts_853: true,
        },
        InterceptorSpec {
            ca_cn: "Sample CA 2".into(),
            country: "BR",
            as_label: "AS24835 Vodafone Data",
            intercepts_853: true,
        },
        InterceptorSpec {
            ca_cn: "NThmYzgyYT".into(),
            country: "RU",
            as_label: "AS4713 NTT Communications Corporation",
            intercepts_853: true,
        },
        InterceptorSpec {
            ca_cn: "c41618c762bf890f".into(),
            country: "MY",
            as_label: "AS52532 Speednet Telecomunicacoes Ldta",
            intercepts_853: false,
        },
        InterceptorSpec {
            ca_cn: "FortiGate CA".into(),
            country: "BR",
            as_label: "AS27699 Telefonica Brazil S.A",
            intercepts_853: true,
        },
    ]
}

/// Device mix for 1.1.1.1 squatters, weighted to reproduce Table 5's port
/// histogram (many conflicted addresses answer nothing; HTTP management
/// pages dominate among those that do).
fn sample_device(rng: &mut SmallRng) -> DeviceKind {
    let roll: f64 = rng.gen();
    if roll < 0.42 {
        DeviceKind::Blackhole
    } else if roll < 0.62 {
        DeviceKind::MikroTikRouter {
            crypto_hijacked: rng.gen_bool(0.18),
        }
    } else if roll < 0.80 {
        DeviceKind::PowerboxModem
    } else if roll < 0.86 {
        DeviceKind::BgpRouter
    } else if roll < 0.90 {
        DeviceKind::NtpSnmpAppliance
    } else if roll < 0.93 {
        DeviceKind::DhcpRelay
    } else if roll < 0.95 {
        DeviceKind::SmbBox
    } else {
        DeviceKind::AuthPortal
    }
}

/// Build both pools.
pub fn generate(
    cfg: &WorldConfig,
    rng: &mut SmallRng,
    alloc: &mut ClientAllocator,
) -> GeneratedClients {
    let mut proxyrack = ClientPool::default();
    let mut plan = MiddleboxPlan::default();
    let mut geo_entries = Vec::new();
    let mut next_asn = 100_000u32;

    // ---- ProxyRack-like global pool -------------------------------------
    for spec in all_country_specs() {
        let country = CountryCode::new(spec.cc);
        let clients = cfg.scaled(spec.proxyrack_clients, 1);
        // ~11 clients per AS reproduces Table 3's 2,597 ASes.
        let n_as = ((clients as f64 / 11.4).round() as u32).max(1);
        let mut remaining = clients;
        for as_i in 0..n_as {
            let as_clients = if as_i == n_as - 1 {
                remaining
            } else {
                (clients / n_as).max(1).min(remaining)
            };
            if as_clients == 0 {
                break;
            }
            remaining -= as_clients;
            let asn = Asn(next_asn);
            next_asn += 1;
            let n_blocks = as_clients.div_ceil(200).max(1);
            let blocks = alloc.alloc_blocks(n_blocks);
            for b in &blocks {
                geo_entries.push((*b, country, asn));
            }

            // Per-AS afflictions: conflicts first, then filtering.
            let affliction = if rng.gen_bool(spec.conflict_rate) {
                let device = sample_device(rng);
                plan.conflict_sites.push((blocks[0], device));
                // Conflicted ASes usually sit behind the same broken edge
                // network; their port-53 path to 1.1.1.1 dies with it.
                Affliction::Conflict(device)
            } else if rng.gen_bool(spec.filter53_rate) {
                for b in &blocks {
                    plan.filtered_blocks.push(*b);
                }
                Affliction::Port53Filter
            } else {
                Affliction::None
            };
            // Diversion rules match whole blocks; conflicts must cover
            // every block of the AS.
            if matches!(affliction, Affliction::Conflict(_)) {
                for b in blocks.iter().skip(1) {
                    let device = match affliction {
                        Affliction::Conflict(d) => d,
                        _ => unreachable!(),
                    };
                    plan.conflict_sites.push((*b, device));
                }
            }

            for i in 0..as_clients {
                let block = &blocks[(i / 200) as usize];
                let ip = block.addr(1 + (i % 200) as u64);
                proxyrack.clients.push(ClientInfo {
                    ip,
                    country,
                    asn,
                    affliction: affliction.clone(),
                    in_perf_subset: rng.gen_bool(cfg.perf_subset),
                });
            }
        }
    }

    // ---- Named conflict sites (the paper's concrete §4.2 examples) ------
    // A crypto-hijacked MikroTik router and a Powerbox Gvt Modem squat on
    // 1.1.1.1 for their networks at every scale.
    for (country_code, asn_raw, device) in [
        (
            "ID",
            17_974u32,
            DeviceKind::MikroTikRouter {
                crypto_hijacked: true,
            },
        ),
        ("BR", 27_699, DeviceKind::PowerboxModem),
    ] {
        let country = CountryCode::new(country_code);
        let asn = Asn(asn_raw);
        let blocks = alloc.alloc_blocks(1);
        geo_entries.push((blocks[0], country, asn));
        plan.conflict_sites.push((blocks[0], device));
        for i in 0..6u64 {
            proxyrack.clients.push(ClientInfo {
                ip: blocks[0].addr(1 + i),
                country,
                asn,
                affliction: Affliction::Conflict(device),
                in_perf_subset: false,
            });
        }
    }

    // ---- TLS-intercepted clients (Finding 2.3 / Table 6) ----------------
    let mut interceptor_specs = named_interceptors();
    let n_interceptors = cfg.scaled(cfg.interceptor_clients, 6).max(6) as usize;
    while interceptor_specs.len() < n_interceptors {
        let i = interceptor_specs.len();
        interceptor_specs.push(InterceptorSpec {
            ca_cn: format!("{:016x}", 0xc416_18c7_62bf_0000u64 + i as u64),
            country: ["US", "BR", "RU", "TR", "MX", "PH", "EG"][i % 7],
            as_label: "AS0 Generated Access Network",
            intercepts_853: i % 5 != 4, // keep ~3 of 17 as 443-only
        });
    }
    interceptor_specs.truncate(n_interceptors);
    for spec in interceptor_specs {
        let country = CountryCode::new(spec.country);
        let asn = Asn(next_asn);
        next_asn += 1;
        let blocks = alloc.alloc_blocks(1);
        geo_entries.push((blocks[0], country, asn));
        let ip = blocks[0].addr(10);
        proxyrack.clients.push(ClientInfo {
            ip,
            country,
            asn,
            affliction: Affliction::Intercepted {
                ca_cn: spec.ca_cn.clone(),
                intercepts_853: spec.intercepts_853,
            },
            in_perf_subset: false,
        });
        plan.interceptor_sites.push((blocks[0], spec));
    }

    // ---- Zhima-like censored pool ---------------------------------------
    let mut zhima = ClientPool::default();
    let zhima_total = cfg.scaled(cfg.zhima_total, 50);
    let cn = CountryCode::new("CN");
    let zhima_asns = [4134u32, 4837, 4808, 9808, 4812];
    let per_as = zhima_total / zhima_asns.len() as u32;
    let mut cf_acc = 0.8f64; // bias so the first block is censored
    let mut gdns_acc = 0.0f64;
    for (i, asn_raw) in zhima_asns.iter().enumerate() {
        let asn = Asn(*asn_raw);
        let as_clients = if i == zhima_asns.len() - 1 {
            zhima_total - per_as * (zhima_asns.len() as u32 - 1)
        } else {
            per_as
        };
        let n_blocks = as_clients.div_ceil(200).max(1);
        let blocks = alloc.alloc_blocks(n_blocks);
        for b in &blocks {
            geo_entries.push((*b, cn, asn));
        }
        for (bi, block) in blocks.iter().enumerate() {
            // Per-/24 censorship afflictions, assigned by error diffusion
            // so the configured rates hold exactly at every scale.
            cf_acc += cfg.cn_cloudflare_filter_rate;
            gdns_acc += cfg.cn_google_dns_filter_rate;
            let affliction = if cf_acc >= 1.0 {
                cf_acc -= 1.0;
                plan.cn_cloudflare_blocks.push(*block);
                Affliction::CensoredCloudflare
            } else if gdns_acc >= 1.0 {
                gdns_acc -= 1.0;
                plan.cn_google_dns_blocks.push(*block);
                Affliction::CensoredGoogleDns
            } else {
                Affliction::None
            };
            let in_block = if bi as u32 == n_blocks - 1 {
                as_clients - 200 * (n_blocks - 1)
            } else {
                200
            };
            for j in 0..in_block {
                zhima.clients.push(ClientInfo {
                    ip: block.addr(1 + j as u64),
                    country: cn,
                    asn,
                    affliction: affliction.clone(),
                    in_perf_subset: false,
                });
            }
        }
    }

    GeneratedClients {
        proxyrack,
        zhima,
        plan,
        geo_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn build(scale: f64) -> GeneratedClients {
        let cfg = WorldConfig {
            scale,
            ..WorldConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(13);
        let mut alloc = ClientAllocator::new();
        generate(&cfg, &mut rng, &mut alloc)
    }

    #[test]
    fn full_scale_pool_shapes_match_table3() {
        let g = build(1.0);
        let n = g.proxyrack.clients.len();
        assert!(
            (29_000..31_000).contains(&n),
            "proxyrack {n} (paper: 29,622)"
        );
        let countries = g.proxyrack.country_count();
        assert!(countries >= 166, "countries {countries} (paper: 166)");
        let ases = g.proxyrack.as_count();
        assert!((2_300..3_100).contains(&ases), "ASes {ases} (paper: 2,597)");
        let z = g.zhima.clients.len();
        assert!((84_000..86_500).contains(&z), "zhima {z} (paper: 85,112)");
        assert_eq!(g.zhima.country_count(), 1);
        assert_eq!(g.zhima.as_count(), 5);
        // Performance subset ~28% of the global pool.
        let perf = g.proxyrack.perf_subset().count();
        let frac = perf as f64 / n as f64;
        assert!((0.25..0.32).contains(&frac), "perf subset {frac}");
    }

    #[test]
    fn affliction_rates_near_calibration() {
        let g = build(1.0);
        let n = g.proxyrack.clients.len() as f64;
        let filtered = g
            .proxyrack
            .clients
            .iter()
            .filter(|c| c.affliction == Affliction::Port53Filter)
            .count() as f64;
        let conflicted = g
            .proxyrack
            .clients
            .iter()
            .filter(|c| matches!(c.affliction, Affliction::Conflict(_)))
            .count() as f64;
        // Conflicts also break port 53 to 1.1.1.1; together they target
        // the paper's ~16% clear-text failure to prominent resolvers.
        let broken53 = (filtered + conflicted) / n;
        assert!(
            (0.11..0.22).contains(&broken53),
            "broken-53 fraction {broken53}"
        );
        let conflict_rate = conflicted / n;
        assert!(
            (0.004..0.025).contains(&conflict_rate),
            "conflict rate {conflict_rate} (paper: ~1.1%)"
        );
        let intercepted = g
            .proxyrack
            .clients
            .iter()
            .filter(|c| matches!(c.affliction, Affliction::Intercepted { .. }))
            .count();
        assert_eq!(intercepted, 17);
    }

    #[test]
    fn id_vn_in_dominate_filtering() {
        let g = build(1.0);
        let affected: Vec<_> = g
            .proxyrack
            .clients
            .iter()
            .filter(|c| c.affliction == Affliction::Port53Filter)
            .collect();
        let idvnin = affected
            .iter()
            .filter(|c| ["ID", "VN", "IN"].contains(&c.country.as_str()))
            .count();
        let frac = idvnin as f64 / affected.len() as f64;
        assert!(frac > 0.5, "ID/VN/IN carry {frac} of filtered clients");
    }

    #[test]
    fn zhima_censorship_rates() {
        let g = build(1.0);
        let n = g.zhima.clients.len() as f64;
        let cf = g
            .zhima
            .clients
            .iter()
            .filter(|c| c.affliction == Affliction::CensoredCloudflare)
            .count() as f64;
        assert!(
            (0.12..0.19).contains(&(cf / n)),
            "CN cloudflare-filter rate {}",
            cf / n
        );
    }

    #[test]
    fn named_interceptors_present() {
        let g = build(1.0);
        let cns: Vec<&str> = g
            .plan
            .interceptor_sites
            .iter()
            .map(|(_, s)| s.ca_cn.as_str())
            .collect();
        assert!(cns.contains(&"SonicWall Firewall DPI-SSL"));
        assert!(cns.contains(&"Sample CA 2"));
        let only_443 = g
            .plan
            .interceptor_sites
            .iter()
            .filter(|(_, s)| !s.intercepts_853)
            .count();
        assert_eq!(only_443, 3, "3 of 17 devices only handle 443");
    }

    #[test]
    fn small_scale_still_covers_all_countries() {
        let g = build(0.02);
        assert!(g.proxyrack.country_count() >= 166);
        assert!(g.proxyrack.clients.len() < 2_000);
    }

    #[test]
    fn blocks_are_disjoint_and_in_client_space() {
        let g = build(0.05);
        let mut seen = std::collections::HashSet::new();
        for (block, _, _) in &g.geo_entries {
            assert!(seen.insert(block.network()), "duplicate block {block}");
            let first_octet = block.network().octets()[0];
            assert!(
                (64..80).contains(&first_octet),
                "block {block} outside space"
            );
        }
    }

    #[test]
    fn determinism() {
        let a = build(0.05);
        let b = build(0.05);
        assert_eq!(a.proxyrack.clients.len(), b.proxyrack.clients.len());
        for (x, y) in a.proxyrack.clients.iter().zip(&b.proxyrack.clients) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.affliction, y.affliction);
        }
    }
}
