//! Ground-truth types: what the world *actually* contains, against which
//! the measurement pipeline's recoveries are checked.

use httpsim::UriTemplate;
use netsim::{Asn, CountryCode, Netblock};
use std::net::Ipv4Addr;
use tlssim::DateStamp;

/// Size class of a provider (drives Figure 4's long tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProviderClass {
    /// Many addresses, advertised in public lists.
    Large,
    /// A handful of addresses.
    Medium,
    /// One (occasionally two) addresses, typically absent from lists.
    Small,
    /// A TLS-inspection appliance acting as a DoT proxy (each device is
    /// its own "provider" because its default certificate CN is unique).
    Appliance,
}

/// Certificate health of a deployed resolver (Finding 1.2's taxonomy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertProfile {
    /// CA-signed, current, covers the provider name.
    Valid,
    /// CA-signed but past `not_after`.
    Expired {
        /// When it expired.
        expired_on: DateStamp,
    },
    /// Self-signed (hobbyist or appliance default).
    SelfSigned,
    /// Leaf presented with a wrong/missing intermediate.
    BrokenChain,
}

/// What the resolver does with queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverBehavior {
    /// Normal caching recursive service.
    Recursive,
    /// Answers every A query with one fixed address (dnsfilter.com-style
    /// non-subscriber handling, §3.2).
    FixedAnswer(Ipv4Addr),
    /// Refuses strangers (ISP resolvers, subscriber-only services).
    RefusesExternal {
        /// The subnet it serves.
        allowed: Netblock,
    },
    /// FortiGate-style DoT proxy: terminates TLS with its device
    /// certificate and forwards plaintext to `upstream` (counted among the
    /// self-signed resolvers of Finding 1.2).
    DotProxy {
        /// Where decrypted queries are forwarded.
        upstream: Ipv4Addr,
    },
}

/// A DoH service attached to a deployment.
#[derive(Debug, Clone)]
pub struct DohDeployment {
    /// Locator template (e.g. `https://dns.quad9.net/dns-query{?dns}`).
    pub template: UriTemplate,
    /// Whether the front-end forwards to a Do53 back-end with a hard
    /// timeout (Quad9's architecture) instead of answering in-process.
    pub forward_backend_timeout_ms: Option<u64>,
    /// Whether this template appears in the public curl-wiki-style list
    /// (15 of the 17 did).
    pub in_public_list: bool,
}

/// One deployed resolver address and everything true about it.
#[derive(Debug, Clone)]
pub struct ResolverDeployment {
    /// The service address.
    pub addr: Ipv4Addr,
    /// Provider key (certificate CN or its SLD — how §3.2 groups).
    pub provider: String,
    /// Provider size class.
    pub class: ProviderClass,
    /// Hosting country.
    pub country: CountryCode,
    /// Hosting AS.
    pub asn: Asn,
    /// First date the address serves DoT.
    pub online_from: DateStamp,
    /// Last date (inclusive) it serves, if it ever goes away.
    pub online_until: Option<DateStamp>,
    /// Serves DoT on 853.
    pub dot: bool,
    /// DoH service, if any.
    pub doh: Option<DohDeployment>,
    /// Certificate health on port 853.
    pub cert: CertProfile,
    /// Query-handling behaviour.
    pub behavior: ResolverBehavior,
    /// Whether the address appears in public DoT resolver lists.
    pub advertised: bool,
    /// Whether the address is anycast.
    pub anycast: bool,
}

impl ResolverDeployment {
    /// Whether the resolver is online on `date`.
    pub fn online_at(&self, date: DateStamp) -> bool {
        self.online_from <= date && self.online_until.is_none_or(|until| date <= until)
    }
}

/// The middlebox a client population suffers, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Affliction {
    /// Clean path.
    None,
    /// Port 53 to prominent resolver addresses is reset/dropped.
    Port53Filter,
    /// A device squats on 1.1.1.1 (and 1.0.0.1).
    Conflict(DeviceKind),
    /// A TLS-terminating middlebox intercepts the listed ports.
    Intercepted {
        /// The device CA's common name (Table 6).
        ca_cn: String,
        /// Whether port 853 is intercepted (3 of the 17 devices only
        /// handled 443).
        intercepts_853: bool,
    },
    /// CN-style censorship: prominent-addr port-53/853 filtering.
    CensoredCloudflare,
    /// CN path to 8.8.8.8:53 broken.
    CensoredGoogleDns,
}

/// The devices found squatting on 1.1.1.1 (Table 5's port profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Address blackholed / used for internal routing — no ports answer.
    Blackhole,
    /// MikroTik router: SSH/Telnet/DNS/HTTP management surface.
    MikroTikRouter {
        /// Whether the router was compromised and serves coin-mining
        /// JavaScript on its 1.1.1.1 page (12 such clients in §4.2).
        crypto_hijacked: bool,
    },
    /// Residential modem exposing HTTP(S) management.
    PowerboxModem,
    /// Carrier router speaking BGP and Telnet.
    BgpRouter,
    /// Appliance exposing NTP/SNMP.
    NtpSnmpAppliance,
    /// DHCP relay device.
    DhcpRelay,
    /// SMB-exposing box.
    SmbBox,
    /// Captive-portal / authentication system on HTTP+HTTPS.
    AuthPortal,
}

impl DeviceKind {
    /// TCP ports the device answers on (the forensic probe set is
    /// `{21..443}`, Figure 7 / Table 5).
    pub fn open_ports(self) -> &'static [u16] {
        match self {
            DeviceKind::Blackhole => &[],
            DeviceKind::MikroTikRouter { .. } => &[22, 23, 53, 80],
            DeviceKind::PowerboxModem => &[80, 443],
            DeviceKind::BgpRouter => &[23, 179],
            DeviceKind::NtpSnmpAppliance => &[123, 161],
            DeviceKind::DhcpRelay => &[67],
            DeviceKind::SmbBox => &[139],
            DeviceKind::AuthPortal => &[80, 443],
        }
    }

    /// The label its webpage (if any) identifies it as.
    pub fn page_title(self) -> Option<&'static str> {
        match self {
            DeviceKind::MikroTikRouter { .. } => Some("RouterOS router configuration page"),
            DeviceKind::PowerboxModem => Some("Powerbox Gvt Modem"),
            DeviceKind::AuthPortal => Some("Web Authentication System"),
            _ => None,
        }
    }
}

/// A named TLS interceptor planted in the client pool (Table 6 rows plus
/// generated ones).
#[derive(Debug, Clone)]
pub struct InterceptorSpec {
    /// CA common name shown in re-signed certificates.
    pub ca_cn: String,
    /// Client country.
    pub country: &'static str,
    /// AS label for reporting.
    pub as_label: &'static str,
    /// Whether 853 is intercepted in addition to 443.
    pub intercepts_853: bool,
}

/// One vantage client.
#[derive(Debug, Clone)]
pub struct ClientInfo {
    /// Client address.
    pub ip: Ipv4Addr,
    /// Country.
    pub country: CountryCode,
    /// AS number.
    pub asn: Asn,
    /// Ground-truth path condition.
    pub affliction: Affliction,
    /// Whether the client is in the performance subset (Table 3).
    pub in_perf_subset: bool,
}

/// A pool of vantage clients (ProxyRack- or Zhima-like).
#[derive(Debug, Clone, Default)]
pub struct ClientPool {
    /// All clients.
    pub clients: Vec<ClientInfo>,
}

impl ClientPool {
    /// Distinct countries represented.
    pub fn country_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for c in &self.clients {
            set.insert(c.country);
        }
        set.len()
    }

    /// Distinct ASes represented.
    pub fn as_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for c in &self.clients {
            set.insert(c.asn);
        }
        set.len()
    }

    /// Clients flagged for the performance subset.
    pub fn perf_subset(&self) -> impl Iterator<Item = &ClientInfo> {
        self.clients.iter().filter(|c| c.in_perf_subset)
    }
}

/// A RIPE-Atlas-like probe with its ISP's local resolver.
#[derive(Debug, Clone)]
pub struct AtlasProbe {
    /// Probe address.
    pub ip: Ipv4Addr,
    /// The ISP resolver it is configured to use.
    pub local_resolver: Ipv4Addr,
    /// Ground truth: does that resolver speak DoT?
    pub resolver_has_dot: bool,
    /// Whether the local resolver is actually a well-known public
    /// resolver (those probes are excluded, §3.1 footnote 1).
    pub uses_public_resolver: bool,
}
