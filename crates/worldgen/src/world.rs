//! Assembles the complete world: network, deployment, populations,
//! middleboxes, probe infrastructure and corpora.

use crate::calendar::Calendar;
use crate::clients::{self, ClientAllocator, GeneratedClients};
use crate::config::WorldConfig;
use crate::corpus::{self, Corpus};
use crate::devices::{self, InstalledDevices};
use crate::providers::{self, anchors, DohServiceSpec, ProviderDeployment};
use crate::types::{
    AtlasProbe, CertProfile, ClientPool, DeviceKind, ProviderClass, ResolverBehavior,
};
use dnswire::zone::Zone;
use dnswire::{Name, RData, RecordType, ResourceRecord};
use doe_protocols::recursive::{MissDelay, RecursiveConfig, RecursiveResolver, UpstreamMap};
use doe_protocols::responder::{AuthoritativeServer, DnsResponder, FixedAnswerResponder, QueryLog};
use doe_protocols::{
    Do53TcpService, Do53UdpService, DohBackend, DohServerService, DotServerService,
};
use httpsim::{StaticSite, UriTemplate};
use netsim::service::FnStreamService;
use netsim::{
    DatagramService, HostMeta, LatencyProfile, Netblock, Network, NetworkConfig, Service,
    SimDuration,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CaHandle, Certificate, DateStamp, InterceptLog, KeyId, TlsServerConfig, TrustStore};

/// The study's own probe domain and its authoritative server.
pub struct ProbeInfra {
    /// Zone apex (`probe.dnsmeasure.example`).
    pub apex: Name,
    /// The wildcard answer every probe resolves to.
    pub expected_a: Ipv4Addr,
    /// Authoritative server address.
    pub auth_addr: Ipv4Addr,
    /// Ground-truth log of queries reaching the authoritative server.
    pub auth_log: QueryLog,
}

/// The self-built resolver of §4.1.
pub struct SelfBuiltInfo {
    /// Its address.
    pub addr: Ipv4Addr,
    /// DoT authentication name.
    pub auth_name: String,
    /// DoH locator.
    pub doh_template: UriTemplate,
}

struct ResolverBundle {
    meta: HostMeta,
    tcp: Vec<(u16, Arc<dyn Service>)>,
    udp: Vec<(u16, Arc<dyn DatagramService>)>,
}

/// The fully-built world. See the crate docs for contents.
/// Address stride between junk-host country bands: a /14 (262,144
/// addresses) holds each country's tenth of the paper-scale 2–3M
/// population with headroom.
const JUNK_BAND_STRIDE: u32 = 1 << 18;

/// Base of the junk-band region. 23.0.0.0 is free in the simulated
/// plan: provider servers live in 5.0.0.0/8, clients in 64.0.0.0/4 and
/// the anchor addresses are scattered well away from it.
const JUNK_BAND_BASE: Ipv4Addr = Ipv4Addr::new(23, 0, 0, 0);

/// First address of junk country band `c`.
fn junk_band_start(c: usize) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(JUNK_BAND_BASE) + c as u32 * JUNK_BAND_STRIDE)
}

/// Exact CIDR cover of `count` consecutive addresses from `start`:
/// greedy largest-aligned-block decomposition, so a band of any size
/// enters the scan space without padding it with unrouted addresses.
fn cover_blocks(start: Ipv4Addr, count: u32) -> Vec<Netblock> {
    let mut blocks = Vec::new();
    let mut cur = u32::from(start);
    let mut left = count;
    while left > 0 {
        let align = if cur == 0 { 31 } else { cur.trailing_zeros() };
        let bits = align.min(31 - left.leading_zeros());
        blocks.push(Netblock::new(Ipv4Addr::from(cur), (32 - bits) as u8));
        cur += 1 << bits;
        left -= 1 << bits;
    }
    blocks
}

pub struct World {
    /// The simulated internet.
    pub net: Network,
    /// Build configuration.
    pub config: WorldConfig,
    /// Virtual-time ↔ civil-date mapping (anchored at the first scan).
    pub calendar: Calendar,
    /// The client-side trust store (Mozilla CA list analog).
    pub trust_store: TrustStore,
    /// Probe-domain infrastructure.
    pub probe: ProbeInfra,
    /// Ground-truth resolver deployment.
    pub deployment: ProviderDeployment,
    /// Global residential vantage pool.
    pub proxyrack: ClientPool,
    /// Censored CN vantage pool.
    pub zhima: ClientPool,
    /// Interceptor decrypted-traffic logs by CA CN.
    pub intercept_logs: Vec<(String, InterceptLog)>,
    /// Conflict devices installed: (client block, device addr, kind).
    pub conflict_devices: Vec<(Netblock, Ipv4Addr, DeviceKind)>,
    /// The scanner's target address space.
    pub scan_space: Vec<Netblock>,
    /// The URL corpus for DoH discovery.
    pub corpus: Corpus,
    /// RIPE-Atlas-like probes.
    pub atlas: Vec<AtlasProbe>,
    /// The public DoH template list (the curl-wiki 15).
    pub known_doh_list: Vec<UriTemplate>,
    /// Neutral open resolver for DoH bootstrap.
    pub bootstrap_resolver: Ipv4Addr,
    /// Scanner source addresses (2 US + 1 CN, §3.1).
    pub scanner_sources: Vec<Ipv4Addr>,
    /// The self-built resolver.
    pub self_built: SelfBuiltInfo,
    epoch: DateStamp,
    deployed: BTreeSet<Ipv4Addr>,
    bundles: BTreeMap<Ipv4Addr, ResolverBundle>,
    probe_serials: u64,
}

impl World {
    /// Build a world from config. Deterministic in `config`.
    pub fn build(config: WorldConfig) -> World {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let first = config.first_scan;
        let mut net = Network::new(
            NetworkConfig {
                trace_capacity: config.trace_capacity,
                metrics: config.metrics,
                ..NetworkConfig::default()
            },
            config.seed ^ 0x6e65_7473_696d,
        );
        let calendar = Calendar::anchored_at(first);

        // ---- Trust anchors ----------------------------------------------
        let mut trust_store = TrustStore::new();
        let ca_names = [
            "Let's Encrypt Authority X3",
            "DigiCert Global Root CA",
            "GlobalSign Root CA",
            "Sectigo RSA CA",
            "GoDaddy Root CA",
        ];
        let cas: Vec<CaHandle> = ca_names
            .iter()
            .enumerate()
            .map(|(i, name)| CaHandle::new(name, KeyId(1 + i as u64), first + -1500, 7300))
            .collect();
        for ca in &cas {
            trust_store.add(ca.authority());
        }
        let web_ca = cas[0].clone();
        // An intermediate nobody presents — broken-chain leaves hang off it.
        let orphan_ca = CaHandle::new("Orphan Intermediate CA", KeyId(900), first + -900, 3650);
        let mut next_key = 1_000u64;
        let mut key = move || {
            let k = KeyId(next_key);
            next_key += 1;
            k
        };

        // ---- Deployment & populations ------------------------------------
        let (deployment, server_alloc) = providers::generate(&config, &mut rng);
        let mut client_alloc = ClientAllocator::new();
        let GeneratedClients {
            proxyrack,
            zhima,
            plan,
            geo_entries,
        } = clients::generate(&config, &mut rng, &mut client_alloc);

        for (block, country, asn) in &geo_entries {
            net.geodb_mut().insert(
                *block,
                netsim::geo::BlockInfo {
                    asn: *asn,
                    country: *country,
                    region: netsim::geo::region_of(*country),
                },
            );
        }
        // Latency personalities and port penalties per country.
        for spec in clients::all_country_specs() {
            let cc = netsim::CountryCode::new(spec.cc);
            net.latency_mut().set_country_profile(
                cc,
                LatencyProfile {
                    access_ms: spec.access_ms,
                    jitter_sigma: spec.jitter,
                    loss: spec.loss,
                },
            );
            if spec.penalty_53_ms > 0.0 {
                net.latency_mut()
                    .set_port_penalty(cc, 53, spec.penalty_53_ms);
            }
            if spec.penalty_853_ms > 0.0 {
                net.latency_mut()
                    .set_port_penalty(cc, 853, spec.penalty_853_ms);
            }
        }

        // ---- Probe infrastructure ----------------------------------------
        let apex = Name::parse("probe.dnsmeasure.example").expect("static name");
        let expected_a = Ipv4Addr::new(203, 0, 113, 99);
        let mut zones = Vec::new();
        {
            let mut zone = Zone::new(apex.clone());
            zone.add_record(&apex, 300, RData::A(anchors::PROBE_AUTH));
            zone.add_record(
                &apex.prepend("*").expect("wildcard"),
                60,
                RData::A(expected_a),
            );
            zones.push(zone);
        }
        // Bootstrap zones: one per DoH hostname, plus the self-built name.
        let self_built_name = "resolver.dnsmeasure.example";
        let mut bootstrap_hosts: Vec<(String, Ipv4Addr)> = deployment
            .doh_services
            .iter()
            .map(|s| (s.hostname.clone(), s.front))
            .collect();
        bootstrap_hosts.push((self_built_name.to_string(), anchors::SELF_BUILT));
        for (hostname, front) in &bootstrap_hosts {
            let host_apex = Name::parse(hostname).expect("hostnames parse");
            let mut zone = Zone::new(host_apex.clone());
            zone.add_record(&host_apex, 300, RData::A(*front));
            zones.push(zone);
        }
        let auth_server = Arc::new(AuthoritativeServer::new(zones));
        let auth_log = auth_server.log();
        net.add_host(
            HostMeta::new(anchors::PROBE_AUTH)
                .country("US")
                .asn(64_501)
                .label("probe-authoritative"),
        );
        net.bind_udp(
            anchors::PROBE_AUTH,
            53,
            Arc::new(Do53UdpService::new(
                Arc::clone(&auth_server) as Arc<dyn DnsResponder>
            )),
        );
        net.bind_tcp(
            anchors::PROBE_AUTH,
            53,
            Arc::new(Do53TcpService::new(auth_server)),
        );

        let mut upstreams = UpstreamMap::new();
        upstreams.add(apex.clone(), anchors::PROBE_AUTH);
        for (hostname, _) in &bootstrap_hosts {
            upstreams.add(Name::parse(hostname).expect("parses"), anchors::PROBE_AUTH);
        }

        // Neutral bootstrap resolver.
        net.add_host(
            HostMeta::new(anchors::BOOTSTRAP_RESOLVER)
                .country("US")
                .asn(64_502)
                .anycast()
                .label("bootstrap-resolver"),
        );
        let bootstrap_responder = Arc::new(RecursiveResolver::new(
            upstreams.clone(),
            RecursiveConfig {
                servfail_rate: 0.0,
                ..RecursiveConfig::default()
            },
        ));
        // Real deployments keep the big DoH front-end hostnames permanently
        // hot, so pin them: every bootstrap lookup is a cache hit no matter
        // which worker asks first or how the clients are sharded.
        for (hostname, front) in &bootstrap_hosts {
            let host_apex = Name::parse(hostname).expect("hostnames parse");
            let answer = ResourceRecord::new(host_apex.clone(), 300, RData::A(*front));
            bootstrap_responder.prewarm(&host_apex, RecordType::A, vec![answer]);
        }
        net.bind_udp(
            anchors::BOOTSTRAP_RESOLVER,
            53,
            Arc::new(Do53UdpService::new(bootstrap_responder)),
        );

        // ---- Middleboxes --------------------------------------------------
        let google_fronts: Vec<Ipv4Addr> = deployment
            .doh_services
            .iter()
            .filter(|s| s.blocked_in_cn)
            .map(|s| s.front)
            .collect();
        let InstalledDevices {
            intercept_logs,
            conflict_devices,
        } = devices::install(&mut net, &plan, &google_fronts, first, 500_000);

        // ---- Resolver bundles ---------------------------------------------
        // Shared per-provider responders (shared cache ≈ anycast backend).
        let mut responders: BTreeMap<String, Arc<dyn DnsResponder>> = BTreeMap::new();
        let mut responder_for = |provider: &str,
                                 behavior: &ResolverBehavior,
                                 upstreams: &UpstreamMap|
         -> Arc<dyn DnsResponder> {
            if let ResolverBehavior::FixedAnswer(addr) = behavior {
                return Arc::new(FixedAnswerResponder::new(*addr));
            }
            responders
                .entry(provider.to_string())
                .or_insert_with(|| {
                    let extra_delay = if provider == "quad9.net" {
                        Some(MissDelay::congested())
                    } else {
                        None
                    };
                    Arc::new(RecursiveResolver::new(
                        upstreams.clone(),
                        RecursiveConfig {
                            servfail_rate: 0.0006,
                            extra_delay,
                            ..RecursiveConfig::default()
                        },
                    ))
                })
                .clone()
        };

        let mut bundles: BTreeMap<Ipv4Addr, ResolverBundle> = BTreeMap::new();
        for r in &deployment.dot_resolvers {
            let meta = {
                let mut m = HostMeta::new(r.addr)
                    .country(r.country.as_str())
                    .asn(r.asn.0)
                    .label(&r.provider);
                if r.anycast {
                    m = m.anycast();
                }
                m
            };
            let mut tcp: Vec<(u16, Arc<dyn Service>)> = Vec::new();
            let mut udp: Vec<(u16, Arc<dyn DatagramService>)> = Vec::new();

            match &r.behavior {
                ResolverBehavior::DotProxy { upstream } => {
                    let device_key = key();
                    let fg_ca = CaHandle::new(&r.provider, key(), first + -400, 3650);
                    let default_cert = CaHandle::self_signed(
                        &r.provider,
                        vec![],
                        device_key,
                        u64::from(u32::from(r.addr)),
                        first + -400,
                        first + 3650,
                    );
                    let proxy = tlssim::TlsInterceptService::fixed_cert_proxy(
                        fg_ca,
                        device_key,
                        vec![default_cert],
                        (*upstream, 853),
                        first,
                    );
                    tcp.push((853, Arc::new(proxy)));
                }
                behavior => {
                    let responder = responder_for(&r.provider, behavior, &upstreams);
                    let leaf_key = key();
                    let chain = build_chain(
                        &web_ca,
                        &orphan_ca,
                        &r.provider,
                        &r.cert,
                        leaf_key,
                        r.addr,
                        first,
                    );
                    let dot = DotServerService::new(
                        TlsServerConfig::new(chain, leaf_key),
                        Arc::clone(&responder),
                    );
                    tcp.push((853, Arc::new(dot)));
                    // Big providers also serve clear-text DNS.
                    if r.class == ProviderClass::Large || r.class == ProviderClass::Medium {
                        udp.push((53, Arc::new(Do53UdpService::new(Arc::clone(&responder)))));
                        tcp.push((53, Arc::new(Do53TcpService::new(Arc::clone(&responder)))));
                    }
                    // The Cloudflare primary also serves a webpage and DoH
                    // (its genuine port profile: 53/80/443, §4.2 footnote).
                    if r.addr == anchors::CLOUDFLARE_PRIMARY {
                        tcp.push((
                            80,
                            Arc::new(StaticSite::single_page(
                                "<title>1.1.1.1 — the free, private DNS resolver</title>",
                            )),
                        ));
                        let doh_key = key();
                        let chain = vec![web_ca.issue(
                            "cloudflare-dns.com",
                            vec!["*.cloudflare-dns.com".into(), "one.one.one.one".into()],
                            doh_key,
                            u32::from(r.addr) as u64 + 7,
                            first + -30,
                            first + 365,
                        )];
                        tcp.push((
                            443,
                            Arc::new(DohServerService::new(
                                TlsServerConfig::new(chain, doh_key),
                                vec!["/dns-query".into()],
                                DohBackend::Local(Arc::clone(&responder)),
                            )),
                        ));
                    }
                }
            }
            bundles.insert(r.addr, ResolverBundle { meta, tcp, udp });
        }

        // ---- DoH fronts ----------------------------------------------------
        for svc in &deployment.doh_services {
            install_doh_front(
                &mut net,
                svc,
                &web_ca,
                &mut key,
                &mut responder_for,
                &upstreams,
                first,
            );
        }

        // Google clear-text (8.8.8.8): Do53 only — DoT unannounced.
        {
            net.add_host(
                HostMeta::new(anchors::GOOGLE_PRIMARY)
                    .country("US")
                    .asn(15_169)
                    .anycast()
                    .label("dns.google.com"),
            );
            let responder =
                responder_for("dns.google.com", &ResolverBehavior::Recursive, &upstreams);
            net.bind_udp(
                anchors::GOOGLE_PRIMARY,
                53,
                Arc::new(Do53UdpService::new(Arc::clone(&responder))),
            );
            net.bind_tcp(
                anchors::GOOGLE_PRIMARY,
                53,
                Arc::new(Do53TcpService::new(responder)),
            );
        }

        // ---- Self-built resolver -------------------------------------------
        let self_built = {
            let responder = responder_for(
                "dnsmeasure.example",
                &ResolverBehavior::Recursive,
                &upstreams,
            );
            net.add_host(
                HostMeta::new(anchors::SELF_BUILT)
                    .country("US")
                    .asn(64_503)
                    .label("self-built resolver"),
            );
            net.bind_udp(
                anchors::SELF_BUILT,
                53,
                Arc::new(Do53UdpService::new(Arc::clone(&responder))),
            );
            net.bind_tcp(
                anchors::SELF_BUILT,
                53,
                Arc::new(Do53TcpService::new(Arc::clone(&responder))),
            );
            let dot_key = key();
            let chain = vec![web_ca.issue(
                self_built_name,
                vec![],
                dot_key,
                4242,
                first + -10,
                first + 365,
            )];
            net.bind_tcp(
                anchors::SELF_BUILT,
                853,
                Arc::new(DotServerService::new(
                    TlsServerConfig::new(chain.clone(), dot_key),
                    Arc::clone(&responder),
                )),
            );
            net.bind_tcp(
                anchors::SELF_BUILT,
                443,
                Arc::new(DohServerService::new(
                    TlsServerConfig::new(chain, dot_key),
                    vec!["/dns-query".into()],
                    DohBackend::Local(responder),
                )),
            );
            SelfBuiltInfo {
                addr: anchors::SELF_BUILT,
                auth_name: self_built_name.to_string(),
                doh_template: UriTemplate::parse(&format!(
                    "https://{self_built_name}/dns-query{{?dns}}"
                ))
                .expect("static template"),
            }
        };

        // ---- Junk port-853 hosts -------------------------------------------
        // The paper's headline sweep surprise: 2–3 million hosts accept
        // TCP/853 yet speak no DNS (§3.2, Table 3). At that scale a
        // registered host per address would dominate world-build time and
        // memory, so each country's share lives in one [`netsim::HostBand`]
        // — a contiguous range sharing a country, an AS and a service.
        //
        // The bands reproduce the old per-host loop exactly: the loop
        // round-robined countries by `i % 10` and services by `i % 2`, and
        // with an even country count that makes every host of country `c`
        // carry parity `c % 2` — so a whole band answers with a garbage
        // banner (even index) or silence (odd index), both of which the
        // scanner classifies as not-TLS.
        let junk = config.scaled(config.junk_853_hosts, 50);
        let junk_countries = ["US", "DE", "CN", "FR", "RU", "BR", "JP", "GB", "NL", "IE"];
        let n_countries = junk_countries.len() as u32;
        for (c, name) in junk_countries.iter().enumerate() {
            // The old round-robin gave country `c` one extra host when
            // `junk` was not a multiple of ten.
            let count = junk / n_countries + u32::from((c as u32) < junk % n_countries);
            if count == 0 {
                continue;
            }
            assert!(
                count <= JUNK_BAND_STRIDE,
                "junk population per country exceeds its /14 band"
            );
            let svc: Arc<dyn Service> = if c % 2 == 0 {
                Arc::new(FnStreamService::new(
                    |_ctx, _peer, _data: &[u8]| b"SSH-2.0-dropbear_2017.75\r\n".to_vec(),
                    "junk-banner",
                ))
            } else {
                Arc::new(FnStreamService::new(
                    |_ctx, _peer, _data: &[u8]| Vec::new(),
                    "junk-silent",
                ))
            };
            net.add_host_band(netsim::HostBand {
                start: junk_band_start(c),
                count,
                country: netsim::CountryCode::new(name),
                asn: netsim::Asn(64_700 + c as u32),
                port: 853,
                service: svc,
            });
        }

        // ---- Atlas probes & ISP resolvers ----------------------------------
        // Exactly the calibrated number of probes (24 of 6,655 at paper
        // scale) sit behind small DoT-pioneer ISPs, like the three ASes the
        // paper's footnote names; everyone else gets a Do53-only resolver.
        let mut atlas = Vec::new();
        let n_probes = config.scaled(config.atlas_probes, 60);
        let probes_per_isp = 50u32;
        let dot_probe_target = (((n_probes as f64) * config.isp_dot_rate).round() as u32).max(1);
        let mut remaining = n_probes;
        let mut dot_remaining = dot_probe_target;
        let mut isp = 0u32;
        while remaining > 0 {
            let isp_has_dot = dot_remaining > 0;
            let in_this_isp = if isp_has_dot {
                dot_remaining.min(8).min(remaining)
            } else {
                probes_per_isp.min(remaining)
            };
            let blocks = client_alloc.alloc_blocks(1);
            let block = blocks[0];
            let country = netsim::CountryCode::new(
                ["DE", "FR", "GB", "NL", "US", "SE", "CZ", "DK", "IT", "JP"][(isp as usize) % 10],
            );
            let asn = netsim::Asn(200_000 + isp);
            net.geodb_mut().insert(
                block,
                netsim::geo::BlockInfo {
                    asn,
                    country,
                    region: netsim::geo::region_of(country),
                },
            );
            let resolver_ip = block.addr(250);
            net.add_host(
                HostMeta::new(resolver_ip)
                    .country(country.as_str())
                    .asn(asn.0)
                    .label("isp-resolver"),
            );
            let responder = responder_for(
                &format!("isp-{isp}.example"),
                &ResolverBehavior::Recursive,
                &upstreams,
            );
            net.bind_udp(
                resolver_ip,
                53,
                Arc::new(Do53UdpService::new(Arc::clone(&responder))),
            );
            net.bind_tcp(
                resolver_ip,
                53,
                Arc::new(Do53TcpService::new(Arc::clone(&responder))),
            );
            if isp_has_dot {
                let k = key();
                let chain = vec![web_ca.issue(
                    &format!("resolver.isp-{isp}.example"),
                    vec![],
                    k,
                    isp as u64,
                    first + -10,
                    first + 365,
                )];
                net.bind_tcp(
                    resolver_ip,
                    853,
                    Arc::new(DotServerService::new(
                        TlsServerConfig::new(chain, k),
                        responder,
                    )),
                );
                dot_remaining -= in_this_isp.min(dot_remaining);
            }
            for p in 0..in_this_isp {
                let ip = block.addr(1 + p as u64);
                atlas.push(AtlasProbe {
                    ip,
                    local_resolver: resolver_ip,
                    resolver_has_dot: isp_has_dot,
                    // DoT-pioneer probes are configured to use their ISP
                    // resolver by definition; others sometimes point at
                    // public resolvers and are excluded by the analysis.
                    uses_public_resolver: !isp_has_dot && rng.gen_bool(0.10),
                });
            }
            remaining -= in_this_isp;
            isp += 1;
        }

        // ---- Scanner sources -------------------------------------------------
        let scanner_sources = vec![
            Ipv4Addr::new(198, 51, 100, 10),
            Ipv4Addr::new(198, 51, 100, 11),
            Ipv4Addr::new(59, 110, 1, 10),
        ];
        for (i, src) in scanner_sources.iter().enumerate() {
            let country = if i < 2 { "US" } else { "CN" };
            net.add_host(
                HostMeta::new(*src)
                    .country(country)
                    .asn(64_510 + i as u32)
                    .label("scanner")
                    .rdns(&format!("scanner-{i}.dnsmeasure.example")),
            );
            net.bind_tcp(
                *src,
                80,
                Arc::new(StaticSite::single_page(
                    "<title>DNS measurement research — opt out</title>\
                     <p>This host scans for DNS-over-Encryption services. \
                     Email [email protected] to opt out.</p>",
                )),
            );
        }

        // ---- Scan space -------------------------------------------------------
        let mut scan_space = server_alloc.blocks();
        for special in [
            Ipv4Addr::new(1, 1, 1, 0),
            Ipv4Addr::new(1, 0, 0, 0),
            Ipv4Addr::new(9, 9, 9, 0),
            Ipv4Addr::new(8, 8, 8, 0),
            Ipv4Addr::new(203, 0, 113, 0),
            Ipv4Addr::new(198, 51, 100, 0),
        ] {
            scan_space.push(Netblock::new(special, 24));
        }
        for svc in &deployment.doh_services {
            scan_space.push(Netblock::slash24(svc.front));
        }
        for band in net.bands() {
            scan_space.extend(cover_blocks(band.start, band.count));
        }
        scan_space.sort_by_key(|b| (u32::from(b.network()), b.len()));
        scan_space.dedup();

        // ---- URL corpus ---------------------------------------------------------
        let corpus = corpus::generate(
            config.scaled(config.corpus_noise_urls, 500),
            &deployment.doh_services,
            &mut rng,
        );

        let known_doh_list = deployment
            .doh_services
            .iter()
            .filter(|s| s.in_public_list)
            .map(|s| s.template.clone())
            .collect();

        let mut world = World {
            net,
            calendar,
            trust_store,
            probe: ProbeInfra {
                apex,
                expected_a,
                auth_addr: anchors::PROBE_AUTH,
                auth_log,
            },
            deployment,
            proxyrack,
            zhima,
            intercept_logs,
            conflict_devices,
            scan_space,
            corpus,
            atlas,
            known_doh_list,
            bootstrap_resolver: anchors::BOOTSTRAP_RESOLVER,
            scanner_sources,
            self_built,
            epoch: first,
            deployed: BTreeSet::new(),
            bundles,
            probe_serials: 0,
            config,
        };
        world.sync_deployment();
        world
    }

    /// The current world date.
    pub fn epoch(&self) -> DateStamp {
        self.epoch
    }

    /// Reserve a block of `n` probe-domain query serials, returning the
    /// first serial in the block.
    ///
    /// Measurement stages build unique query names (`d42.<apex>`) so a
    /// recursive cache can never answer one probe with another's fill —
    /// the "per-target unique" half of the cache-determinism contract
    /// (`RecursiveResolver::cache_get`). That only holds if stages draw
    /// from disjoint serial ranges: two stages restarting at serial 0
    /// would replay each other's names, and whether the replay hits or
    /// misses would depend on which entries FIFO eviction happened to
    /// keep — an order that varies with worker interleaving.
    pub fn take_probe_serials(&mut self, n: u64) -> u64 {
        let base = self.probe_serials;
        self.probe_serials += n;
        base
    }

    /// Advance the world to `date`: the virtual clock moves and resolvers
    /// come online / go away per their deployment windows. Time cannot
    /// move backwards.
    pub fn set_epoch(&mut self, date: DateStamp) {
        assert!(date >= self.epoch, "time runs forward only");
        let target = self.calendar.time_of(date);
        let now = self.net.now();
        if target > now {
            self.net.advance(target.since(now));
        }
        self.epoch = date;
        self.sync_deployment();
    }

    fn sync_deployment(&mut self) {
        let date = self.epoch;
        for r in &self.deployment.dot_resolvers {
            let should = r.online_at(date);
            let is = self.deployed.contains(&r.addr);
            if should && !is {
                let bundle = self.bundles.get(&r.addr).expect("bundle built");
                self.net.add_host(bundle.meta.clone());
                for (port, svc) in &bundle.tcp {
                    self.net.bind_tcp(r.addr, *port, Arc::clone(svc));
                }
                for (port, svc) in &bundle.udp {
                    self.net.bind_udp(r.addr, *port, Arc::clone(svc));
                }
                self.deployed.insert(r.addr);
            } else if !should && is {
                self.net.remove_host(r.addr);
                self.deployed.remove(&r.addr);
            }
        }
    }

    /// Total addresses in the scan space.
    pub fn scan_space_size(&self) -> u64 {
        self.scan_space.iter().map(|b| b.size()).sum()
    }

    /// Ground truth: DoT resolvers online right now.
    pub fn online_dot_resolvers(&self) -> usize {
        self.deployment
            .dot_resolvers
            .iter()
            .filter(|r| r.online_at(self.epoch))
            .count()
    }
}

/// Build a certificate chain for a resolver per its health profile.
fn build_chain(
    web_ca: &CaHandle,
    orphan_ca: &CaHandle,
    provider: &str,
    profile: &CertProfile,
    leaf_key: KeyId,
    addr: Ipv4Addr,
    first: DateStamp,
) -> Vec<Certificate> {
    let serial = u64::from(u32::from(addr));
    let san = vec![provider.to_string(), format!("*.{provider}")];
    match profile {
        CertProfile::Valid => {
            vec![web_ca.issue(provider, san, leaf_key, serial, first + -90, first + 365)]
        }
        CertProfile::Expired { expired_on } => vec![web_ca.issue(
            provider,
            san,
            leaf_key,
            serial,
            *expired_on + -365,
            *expired_on,
        )],
        CertProfile::SelfSigned => vec![CaHandle::self_signed(
            provider,
            san,
            leaf_key,
            serial,
            first + -90,
            first + 3650,
        )],
        CertProfile::BrokenChain => {
            // Leaf signed by an intermediate the server never presents.
            vec![orphan_ca.issue(provider, san, leaf_key, serial, first + -90, first + 365)]
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn install_doh_front(
    net: &mut Network,
    svc: &DohServiceSpec,
    web_ca: &CaHandle,
    key: &mut impl FnMut() -> KeyId,
    responder_for: &mut impl FnMut(&str, &ResolverBehavior, &UpstreamMap) -> Arc<dyn DnsResponder>,
    upstreams: &UpstreamMap,
    first: DateStamp,
) {
    let mut meta = HostMeta::new(svc.front)
        .country(svc.country.as_str())
        .asn(svc.asn.0)
        .label(&svc.hostname);
    if svc.anycast {
        meta = meta.anycast();
    }
    net.add_host(meta);
    let responder = responder_for(&svc.provider, &ResolverBehavior::Recursive, upstreams);
    let backend = match svc.backend_timeout_ms {
        Some(ms) => {
            // Quad9 architecture: the front forwards to the provider's own
            // Do53 (here: bound on the front itself) with a hard timeout.
            net.bind_udp(
                svc.front,
                53,
                Arc::new(Do53UdpService::new(Arc::clone(&responder))),
            );
            DohBackend::ForwardUdp {
                backend: svc.front,
                port: 53,
                timeout: SimDuration::from_millis(ms),
            }
        }
        None => DohBackend::Local(Arc::clone(&responder)),
    };
    let k = key();
    let chain = vec![web_ca.issue(
        &svc.hostname,
        vec![format!("*.{}", svc.hostname)],
        k,
        u64::from(u32::from(svc.front)),
        first + -60,
        first + 365,
    )];
    net.bind_tcp(
        svc.front,
        443,
        Arc::new(DohServerService::new(
            TlsServerConfig::new(chain, k),
            vec![svc.template.path().to_string()],
            backend,
        )),
    );
}
