//! Calibration constants and the world configuration.
//!
//! Every number here traces to a figure the paper reports; the comment on
//! each entry says which. The measurement pipeline must *recover* these
//! rates — tests compare measured against configured within tolerances.

use tlssim::DateStamp;

/// Per-country calibration for client populations.
#[derive(Debug, Clone, Copy)]
pub struct CountrySpec {
    /// ISO code.
    pub cc: &'static str,
    /// ProxyRack-like clients at scale 1.0.
    pub proxyrack_clients: u32,
    /// Fraction of the country's client ASes whose port-53 path to
    /// *prominent* resolver addresses is filtered (§4.2: 16% of global
    /// clients fail Cloudflare/Google clear-text DNS, over 60% of the
    /// affected in ID/VN/IN).
    pub filter53_rate: f64,
    /// Fraction of client ASes with a device squatting on 1.1.1.1
    /// (Finding 2.1: Cloudflare DoT fails for ~1.1% of clients).
    pub conflict_rate: f64,
    /// Last-mile access delay, ms.
    pub access_ms: f64,
    /// Lognormal jitter sigma.
    pub jitter: f64,
    /// Per-exchange loss probability.
    pub loss: f64,
    /// Port-53 shaping penalty, ms (DPI slow-pathing of clear DNS —
    /// what makes DoH *faster* than Do53 in India, Finding 3.2).
    pub penalty_53_ms: f64,
    /// Port-853 shaping penalty, ms (Indonesia's above-average DoT
    /// overhead, Finding 3.2).
    pub penalty_853_ms: f64,
}

#[allow(clippy::too_many_arguments)] // one row of the calibration table
const fn c(
    cc: &'static str,
    clients: u32,
    filter53: f64,
    conflict: f64,
    access: f64,
    jitter: f64,
    loss: f64,
    p53: f64,
    p853: f64,
) -> CountrySpec {
    CountrySpec {
        cc,
        proxyrack_clients: clients,
        filter53_rate: filter53,
        conflict_rate: conflict,
        access_ms: access,
        jitter,
        loss,
        penalty_53_ms: p53,
        penalty_853_ms: p853,
    }
}

/// The explicitly-calibrated countries (others come from
/// [`TAIL_COUNTRIES`]).
pub const COUNTRY_TABLE: &[CountrySpec] = &[
    //  cc    clients fil53 conflict access jitter loss   p53   p853
    c("US", 2300, 0.05, 0.006, 3.0, 0.06, 0.001, 0.0, 0.0),
    c("BR", 2100, 0.08, 0.020, 7.0, 0.12, 0.004, 0.0, 0.0),
    c("VN", 2000, 0.62, 0.008, 9.0, 0.18, 0.006, 15.0, 0.0),
    c("ID", 1800, 0.62, 0.020, 10.0, 0.22, 0.008, 12.0, 35.0),
    c("RU", 1300, 0.07, 0.012, 5.0, 0.10, 0.003, 0.0, 0.0),
    c("IN", 1000, 0.55, 0.008, 9.0, 0.20, 0.006, 100.0, 95.0),
    c("TH", 750, 0.15, 0.008, 7.0, 0.12, 0.004, 5.0, 0.0),
    c("UA", 700, 0.08, 0.006, 5.0, 0.10, 0.003, 0.0, 0.0),
    c("PL", 650, 0.05, 0.006, 4.0, 0.08, 0.002, 0.0, 0.0),
    c("DE", 650, 0.04, 0.004, 3.0, 0.06, 0.001, 0.0, 0.0),
    c("GB", 630, 0.04, 0.004, 3.0, 0.06, 0.001, 0.0, 0.0),
    c("FR", 620, 0.04, 0.004, 3.5, 0.06, 0.001, 0.0, 0.0),
    c("IT", 600, 0.06, 0.015, 4.0, 0.08, 0.002, 0.0, 0.0),
    c("ES", 550, 0.05, 0.006, 4.0, 0.07, 0.002, 0.0, 0.0),
    c("TR", 540, 0.12, 0.008, 6.0, 0.10, 0.003, 4.0, 0.0),
    c("EG", 520, 0.12, 0.008, 8.0, 0.14, 0.005, 5.0, 0.0),
    c("MX", 500, 0.07, 0.008, 6.0, 0.10, 0.003, 0.0, 0.0),
    c("AR", 480, 0.07, 0.006, 6.5, 0.10, 0.003, 0.0, 0.0),
    c("CO", 460, 0.08, 0.008, 7.0, 0.11, 0.003, 0.0, 0.0),
    c("MY", 450, 0.10, 0.015, 6.0, 0.10, 0.003, 4.0, 0.0),
    c("PH", 430, 0.14, 0.008, 9.0, 0.16, 0.005, 6.0, 0.0),
    c("BD", 420, 0.20, 0.008, 10.0, 0.18, 0.006, 8.0, 0.0),
    c("PK", 400, 0.20, 0.008, 9.0, 0.16, 0.006, 8.0, 0.0),
    c("NG", 380, 0.10, 0.008, 11.0, 0.20, 0.008, 0.0, 0.0),
    c("ZA", 370, 0.06, 0.006, 7.0, 0.10, 0.003, 0.0, 0.0),
    c("KR", 350, 0.05, 0.012, 2.5, 0.05, 0.001, 0.0, 0.0),
    c("JP", 350, 0.04, 0.010, 2.5, 0.05, 0.001, 0.0, 0.0),
    c("CA", 340, 0.04, 0.004, 3.0, 0.06, 0.001, 0.0, 0.0),
    c("NL", 330, 0.03, 0.004, 2.5, 0.05, 0.001, 0.0, 0.0),
    c("RO", 320, 0.05, 0.006, 4.0, 0.08, 0.002, 0.0, 0.0),
    c("CZ", 310, 0.04, 0.004, 3.5, 0.07, 0.002, 0.0, 0.0),
    c("HU", 300, 0.05, 0.006, 4.0, 0.08, 0.002, 0.0, 0.0),
    c("GR", 300, 0.06, 0.006, 4.5, 0.08, 0.002, 0.0, 0.0),
    c("PT", 290, 0.05, 0.006, 4.0, 0.07, 0.002, 0.0, 0.0),
    c("SE", 280, 0.03, 0.004, 3.0, 0.06, 0.001, 0.0, 0.0),
    c("BG", 270, 0.05, 0.006, 4.0, 0.08, 0.002, 0.0, 0.0),
    c("RS", 260, 0.06, 0.006, 4.5, 0.08, 0.002, 0.0, 0.0),
    c("CL", 250, 0.06, 0.006, 6.0, 0.09, 0.003, 0.0, 0.0),
    c("PE", 240, 0.08, 0.008, 7.0, 0.11, 0.003, 0.0, 0.0),
    c("VE", 230, 0.10, 0.008, 8.0, 0.14, 0.005, 0.0, 0.0),
    c("AU", 230, 0.04, 0.004, 4.0, 0.07, 0.002, 0.0, 0.0),
    c("TW", 220, 0.04, 0.006, 3.0, 0.06, 0.001, 0.0, 0.0),
    c("HK", 210, 0.04, 0.006, 2.5, 0.05, 0.001, 0.0, 0.0),
    c("SG", 200, 0.03, 0.004, 2.5, 0.05, 0.001, 0.0, 0.0),
    c("IL", 190, 0.05, 0.006, 4.0, 0.07, 0.002, 0.0, 0.0),
    c("SA", 180, 0.10, 0.008, 6.0, 0.10, 0.003, 0.0, 0.0),
    c("AE", 170, 0.09, 0.006, 5.0, 0.09, 0.002, 0.0, 0.0),
    c("KE", 160, 0.08, 0.008, 10.0, 0.16, 0.006, 0.0, 0.0),
    c("MA", 150, 0.08, 0.008, 8.0, 0.13, 0.004, 0.0, 0.0),
    // Few ProxyRack exits inside China (Finding 2.2's global side).
    c("CN", 40, 0.20, 0.008, 6.0, 0.10, 0.003, 0.0, 0.0),
];

/// The remaining countries of the 166-country footprint (Table 3); each
/// receives a small equal share of clients and default middlebox rates.
pub const TAIL_COUNTRIES: &[&str] = &[
    "AF", "AL", "AM", "AO", "AT", "AZ", "BA", "BE", "BF", "BH", "BI", "BJ", "BN", "BO", "BS", "BT",
    "BW", "BY", "BZ", "CD", "CF", "CG", "CH", "CI", "CM", "CR", "CU", "CV", "CY", "DJ", "DK", "DM",
    "DO", "DZ", "EC", "EE", "ER", "ET", "FI", "FJ", "GA", "GD", "GE", "GH", "GM", "GN", "GQ", "GT",
    "GW", "GY", "HN", "HR", "HT", "IE", "IQ", "IR", "IS", "JM", "JO", "KG", "KH", "KM", "KW", "KZ",
    "LA", "LB", "LC", "LI", "LK", "LR", "LS", "LT", "LU", "LV", "LY", "MC", "MD", "ME", "MG", "MK",
    "ML", "MM", "MN", "MR", "MT", "MU", "MV", "MW", "MZ", "NA", "NE", "NI", "NO", "NP", "NZ", "OM",
    "PA", "PG", "PY", "QA", "RW", "SC", "SD", "SI", "SK", "SL", "SM", "SN", "SO", "SR", "SV", "SY",
    "SZ", "TD", "TG", "TJ", "TM", "TN", "TO", "TZ", "UG", "UY", "UZ", "VU", "WS", "YE", "ZM", "ZW",
];

/// Per-country open-DoT-resolver counts at the first and last scan —
/// Table 2 of the paper, verbatim.
pub const DOT_COUNTRY_COUNTS: &[(&str, u32, u32)] = &[
    ("IE", 456, 951),
    ("CN", 257, 40),
    ("US", 100, 531),
    ("DE", 71, 86),
    ("FR", 59, 56),
    ("JP", 34, 27),
    ("NL", 30, 36),
    ("GB", 25, 21),
    ("BR", 22, 49),
    ("RU", 17, 40),
];

/// Countries hosting the long tail of DoT resolvers beyond Table 2's top
/// ten, with (Feb 1, May 1) totals summing to a few hundred.
pub const DOT_TAIL_COUNTRY_COUNTS: &[(&str, u32, u32)] = &[
    ("CA", 21, 30),
    ("AU", 19, 27),
    ("SG", 18, 26),
    ("CH", 17, 23),
    ("SE", 16, 21),
    ("AT", 14, 19),
    ("FI", 14, 19),
    ("PL", 13, 18),
    ("CZ", 12, 16),
    ("IT", 12, 16),
    ("ES", 11, 14),
    ("HK", 11, 16),
    ("KR", 10, 14),
    ("IN", 10, 16),
    ("ZA", 9, 12),
    ("TW", 9, 12),
    ("NO", 8, 11),
    ("DK", 8, 11),
    ("RO", 7, 10),
    ("BG", 7, 9),
    ("UA", 7, 10),
    ("MX", 6, 9),
    ("AR", 6, 8),
    ("TH", 6, 8),
    ("MY", 5, 7),
    ("VN", 5, 7),
    ("ID", 5, 8),
    ("TR", 5, 7),
    ("IL", 4, 6),
    ("NZ", 4, 6),
    ("GR", 4, 5),
    ("PT", 4, 5),
    ("HU", 3, 5),
    ("SK", 3, 4),
    ("EE", 3, 4),
    ("LT", 3, 4),
    ("LV", 3, 4),
    ("SI", 2, 3),
    ("HR", 2, 3),
    ("RS", 2, 3),
    ("CL", 2, 3),
    ("CO", 2, 3),
    ("PE", 2, 3),
    ("KZ", 1, 2),
    ("LU", 1, 2),
];

/// The ten scan dates: every 10 days from 2019-02-01 to 2019-05-01 (§3.1).
pub const SCAN_EPOCHS: usize = 10;

/// World-construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Scale factor for *client* populations and corpus/junk sizes
    /// (resolver deployment is always full size — it's small). 1.0 is
    /// paper scale; tests use ~0.02.
    pub scale: f64,
    /// ProxyRack-like pool size at scale 1.0 (Table 3).
    pub proxyrack_total: u32,
    /// Zhima-like pool size at scale 1.0 (Table 3).
    pub zhima_total: u32,
    /// Fraction of ProxyRack clients included in the performance subset
    /// (8,257 / 29,622, Table 3).
    pub perf_subset: f64,
    /// TLS-intercepted clients in the global pool at scale 1.0
    /// (Finding 2.3 found 17 of 29,622).
    pub interceptor_clients: u32,
    /// Hosts with port 853 open that are not DoT resolvers, at scale 1.0.
    /// The paper saw 2-3 million across the whole IPv4 space (§3.2,
    /// Table 3); the full population is simulated — the hosts live in
    /// shared [`netsim::HostBand`]s, so the count costs bytes per band,
    /// not per host.
    pub junk_853_hosts: u32,
    /// Noise URLs in the discovery corpus at scale 1.0 (plus decoys and
    /// the 61 genuine DoH URLs).
    pub corpus_noise_urls: u32,
    /// RIPE-Atlas-like probes at scale 1.0 (§3.1 used 6,655).
    pub atlas_probes: u32,
    /// Fraction of ISP local resolvers with DoT enabled (24/6,655).
    pub isp_dot_rate: f64,
    /// Fraction of the CN pool behind 1.1.1.1 port-53/853 filtering
    /// (Table 4, Zhima rows: ~15%).
    pub cn_cloudflare_filter_rate: f64,
    /// Fraction of the CN pool whose path to 8.8.8.8:53 fails (Table 4:
    /// ~1%).
    pub cn_google_dns_filter_rate: f64,
    /// First scan date.
    pub first_scan: DateStamp,
    /// Days between scans.
    pub scan_interval_days: i64,
    /// Network event-trace capacity (0 = tracing off). Campaigns leave
    /// this at 0; `repro --trace` turns it on.
    pub trace_capacity: usize,
    /// Whether the network collects telemetry (`repro --metrics`). On by
    /// default; the overhead benchmark turns it off.
    pub metrics: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 2019,
            scale: 1.0,
            proxyrack_total: 29_622,
            zhima_total: 85_112,
            perf_subset: 8_257.0 / 29_622.0,
            interceptor_clients: 17,
            junk_853_hosts: 2_500_000,
            corpus_noise_urls: 120_000,
            atlas_probes: 6_655,
            isp_dot_rate: 24.0 / 6_655.0,
            cn_cloudflare_filter_rate: 0.151,
            cn_google_dns_filter_rate: 0.0105,
            first_scan: DateStamp::from_ymd(2019, 2, 1),
            scan_interval_days: 10,
            trace_capacity: 0,
            metrics: true,
        }
    }
}

impl WorldConfig {
    /// A configuration scaled down for fast tests.
    pub fn test_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 0.02,
            ..WorldConfig::default()
        }
    }

    /// Scale a count, keeping at least `min` when the base is non-zero.
    pub fn scaled(&self, base: u32, min: u32) -> u32 {
        if base == 0 {
            return 0;
        }
        (((base as f64) * self.scale).round() as u32).max(min)
    }

    /// The date of scan epoch `i` (0-based).
    pub fn scan_date(&self, epoch: usize) -> DateStamp {
        self.first_scan + (epoch as i64) * self.scan_interval_days
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_table_totals_are_near_paper_scale() {
        let listed: u32 = COUNTRY_TABLE.iter().map(|c| c.proxyrack_clients).sum();
        // Tail countries each get a small share in clients.rs; listed
        // countries should carry the bulk.
        assert!(listed > 24_000 && listed < 29_622, "listed={listed}");
        // 50 listed + 128 tail ≥ 166 countries.
        assert!(COUNTRY_TABLE.len() + TAIL_COUNTRIES.len() >= 166);
    }

    #[test]
    fn no_duplicate_country_codes() {
        let mut seen = std::collections::HashSet::new();
        for spec in COUNTRY_TABLE {
            assert!(seen.insert(spec.cc), "duplicate {}", spec.cc);
        }
        for cc in TAIL_COUNTRIES {
            assert!(seen.insert(*cc), "duplicate tail {cc}");
        }
    }

    #[test]
    fn table2_counts_verbatim() {
        let ie = DOT_COUNTRY_COUNTS.iter().find(|e| e.0 == "IE").unwrap();
        assert_eq!((ie.1, ie.2), (456, 951));
        let cn = DOT_COUNTRY_COUNTS.iter().find(|e| e.0 == "CN").unwrap();
        assert_eq!((cn.1, cn.2), (257, 40));
        let us = DOT_COUNTRY_COUNTS.iter().find(|e| e.0 == "US").unwrap();
        assert_eq!((us.1, us.2), (100, 531));
    }

    #[test]
    fn scan_dates_span_feb_to_may() {
        let cfg = WorldConfig::default();
        assert_eq!(cfg.scan_date(0).to_string(), "2019-02-01");
        assert_eq!(cfg.scan_date(9).to_string(), "2019-05-02");
        // The paper's "May 1" final scan: epoch 9 at a 10-day cadence
        // lands on May 2; close enough that we label it May 1 in reports.
    }

    #[test]
    fn scaled_counts_respect_minimum() {
        let cfg = WorldConfig::test_scale(1);
        assert_eq!(
            cfg.scaled(29_622, 50),
            ((29_622f64 * 0.02).round() as u32).max(50)
        );
        assert_eq!(cfg.scaled(0, 5), 0);
        assert_eq!(cfg.scaled(10, 5), 5);
    }

    #[test]
    fn filter_rates_put_most_failures_in_id_vn_in() {
        // Expected affected clients: sum(count * rate).
        let affected: f64 = COUNTRY_TABLE
            .iter()
            .map(|c| c.proxyrack_clients as f64 * c.filter53_rate)
            .sum();
        let idvnin: f64 = COUNTRY_TABLE
            .iter()
            .filter(|c| ["ID", "VN", "IN"].contains(&c.cc))
            .map(|c| c.proxyrack_clients as f64 * c.filter53_rate)
            .sum();
        assert!(
            idvnin / affected > 0.55,
            "ID+VN+IN carry {:.0}% of expected failures",
            100.0 * idvnin / affected
        );
        // Global failure rate in the right ballpark (~16%).
        let total: f64 = COUNTRY_TABLE
            .iter()
            .map(|c| c.proxyrack_clients as f64)
            .sum();
        let rate = affected / total;
        assert!((0.12..=0.22).contains(&rate), "global rate {rate}");
    }
}
