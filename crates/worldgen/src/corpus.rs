//! The URL corpus a DoH-discovery pass greps (§3.1).
//!
//! The paper's industrial partner supplied billions of crawler/sandbox/
//! VirusTotal URLs; we synthesise a corpus with the same decision
//! structure: an ocean of ordinary web URLs, a band of *decoys* whose
//! paths contain DoH-looking segments but whose hosts serve no DoH, and
//! the 61 candidate URLs that grep to a common DoH path — of which the
//! working subset collapses onto the 17 genuine services.

use crate::providers::DohServiceSpec;
use rand::rngs::SmallRng;
use rand::Rng;

const HOST_WORDS: &[&str] = &[
    "news", "shop", "blog", "mail", "cdn", "img", "static", "api", "forum", "wiki", "video",
    "cloud", "game", "portal", "travel", "bank", "social", "photo", "music", "stream",
];
const TLDS: &[&str] = &["com", "net", "org", "io", "co", "info", "biz"];
const PATH_WORDS: &[&str] = &[
    "index.html",
    "about",
    "products/list",
    "article/2019/01",
    "img/logo.png",
    "search",
    "login",
    "static/app.js",
    "category/tech",
    "post/12345",
    "feed.xml",
    "tag/dns",
];

fn noise_url(rng: &mut SmallRng) -> String {
    let scheme = if rng.gen_bool(0.8) { "https" } else { "http" };
    let host = format!(
        "{}{}.{}",
        HOST_WORDS[rng.gen_range(0..HOST_WORDS.len())],
        rng.gen_range(0..10_000),
        TLDS[rng.gen_range(0..TLDS.len())]
    );
    let path = PATH_WORDS[rng.gen_range(0..PATH_WORDS.len())];
    format!("{scheme}://{host}/{path}")
}

/// A decoy: contains a DoH-ish path but is not a DoH service. Some merely
/// *mention* DoH (blog posts); some sit on hosts that do not exist; a few
/// sit on real web servers that 404.
fn decoy_url(rng: &mut SmallRng, i: usize) -> String {
    match i % 4 {
        0 => format!(
            "https://blog{}.example-web.com/dns-query",
            rng.gen_range(0..999)
        ),
        1 => format!(
            "https://ghost{}.nodomain.example/dns-query",
            rng.gen_range(0..999)
        ),
        2 => format!("https://files{}.mirror.net/resolve", rng.gen_range(0..999)),
        _ => format!("https://www{}.park-page.org/doh", rng.gen_range(0..999)),
    }
}

/// Output of corpus generation.
pub struct Corpus {
    /// Every URL string, shuffled.
    pub urls: Vec<String>,
    /// Ground truth: how many URLs carry a common DoH path (candidates).
    pub candidate_count: usize,
    /// Ground truth: candidate URLs that actually serve DoH.
    pub working_urls: Vec<String>,
}

/// Build the corpus around the genuine services.
pub fn generate(noise: u32, services: &[DohServiceSpec], rng: &mut SmallRng) -> Corpus {
    let mut urls = Vec::with_capacity(noise as usize + 80);
    for _ in 0..noise {
        urls.push(noise_url(rng));
    }

    // Genuine URLs: each service's canonical locator, plus crawler-found
    // aliases for the big ones (the paper found 61 candidates for 17
    // services — roughly 20 working URL strings and 41 dead ends).
    let mut working = Vec::new();
    for (i, svc) in services.iter().enumerate() {
        let canonical = format!("https://{}{}", svc.hostname, svc.template.path());
        working.push(canonical.clone());
        urls.push(canonical);
        if i < 3 {
            // The most popular services also appear via their front IPs.
            let alias = format!("https://{}{}", svc.front, svc.template.path());
            urls.push(alias.clone());
            working.push(alias);
        }
    }
    let genuine = working.len();

    // Decoys so that candidates total 61.
    let decoys = 61usize.saturating_sub(genuine);
    for i in 0..decoys {
        urls.push(decoy_url(rng, i));
    }

    // Deterministic shuffle.
    for i in (1..urls.len()).rev() {
        let j = rng.gen_range(0..=i);
        urls.swap(i, j);
    }

    Corpus {
        urls,
        candidate_count: genuine + decoys,
        working_urls: working,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let cfg = WorldConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let (dep, _) = crate::providers::generate(&cfg, &mut rng);
        generate(1_000, &dep.doh_services, &mut rng)
    }

    #[test]
    fn sixty_one_candidates() {
        let c = corpus();
        assert_eq!(c.candidate_count, 61);
        let greppable = c
            .urls
            .iter()
            .filter(|u| httpsim::uri::COMMON_DOH_PATHS.iter().any(|p| u.contains(p)))
            .count();
        // Every candidate greps; noise may rarely collide, so allow a
        // small overshoot.
        assert!((61..75).contains(&greppable), "greppable {greppable}");
    }

    #[test]
    fn working_urls_cover_all_services() {
        let c = corpus();
        assert!(c.working_urls.len() >= 17);
        assert!(c
            .working_urls
            .iter()
            .any(|u| u.contains("cloudflare-dns.com")));
        assert!(c.working_urls.iter().any(|u| u.contains("dns.233py.com")));
    }

    #[test]
    fn noise_dominates() {
        let c = corpus();
        assert!(c.urls.len() > 1_000);
    }

    #[test]
    fn deterministic() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.urls, b.urls);
    }
}
