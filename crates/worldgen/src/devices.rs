//! Installs middleboxes into the network: 1.1.1.1 squatters, TLS
//! interceptors, port filters and censorship rules.
//!
//! Rule order matters (first match wins): interception diverts come first
//! (they must catch 443/853 before any coarser rule), then conflict
//! diverts, then the reset/blackhole filters.

use crate::clients::MiddleboxPlan;
use crate::providers::anchors;
use crate::types::DeviceKind;
use doe_protocols::responder::FixedAnswerResponder;
use doe_protocols::{Do53TcpService, Do53UdpService};
use httpsim::StaticSite;
use netsim::policy::ProtoMatch;
use netsim::service::FnStreamService;
use netsim::{
    DstMatch, HostMeta, Netblock, Network, PathDecision, PolicyRule, PolicySet, PortMatch, SrcMatch,
};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlssim::{CaHandle, DateStamp, InterceptLog, KeyId, TlsInterceptService};

/// What got installed, for ground-truth inspection.
pub struct InstalledDevices {
    /// Interceptor logs, keyed by device CA common name.
    pub intercept_logs: Vec<(String, InterceptLog)>,
    /// Conflict devices: (client block, device address, kind).
    pub conflict_devices: Vec<(Netblock, Ipv4Addr, DeviceKind)>,
}

/// Addresses whose port-53 path the filtering appliances target — "the
/// most prominent service addresses" (§4.2).
pub fn prominent_addresses() -> Vec<Ipv4Addr> {
    vec![
        anchors::CLOUDFLARE_PRIMARY,
        anchors::CLOUDFLARE_SECONDARY,
        anchors::GOOGLE_PRIMARY,
        Ipv4Addr::new(8, 8, 4, 4),
    ]
}

fn device_host(net: &mut Network, ip: Ipv4Addr, label: &str) {
    net.add_host(HostMeta::new(ip).label(label));
}

fn mining_page() -> String {
    "<html><head><title>RouterOS router configuration page</title>\
     <script src=\"https://coinhive.com/lib/coinhive.min.js\"></script>\
     <script>new CoinHive.Anonymous('SiteKey').start();</script></head>\
     <body>RouterOS</body></html>"
        .to_string()
}

fn plain_page(title: &str) -> String {
    format!("<html><head><title>{title}</title></head><body>{title}</body></html>")
}

/// Bind a squatting device's services per its kind.
fn install_conflict_device(net: &mut Network, ip: Ipv4Addr, kind: DeviceKind) {
    let label = match kind {
        DeviceKind::MikroTikRouter { .. } => "MikroTik Router",
        DeviceKind::PowerboxModem => "Powerbox Gvt Modem",
        DeviceKind::BgpRouter => "Carrier BGP Router",
        DeviceKind::NtpSnmpAppliance => "NTP/SNMP Appliance",
        DeviceKind::DhcpRelay => "DHCP Relay",
        DeviceKind::SmbBox => "SMB Box",
        DeviceKind::AuthPortal => "Web Authentication System",
        DeviceKind::Blackhole => "blackhole",
    };
    device_host(net, ip, label);
    for &port in kind.open_ports() {
        match port {
            80 | 443 => {
                let html = match kind {
                    DeviceKind::MikroTikRouter {
                        crypto_hijacked: true,
                    } => mining_page(),
                    _ => plain_page(kind.page_title().unwrap_or(label)),
                };
                net.bind_tcp(ip, port, Arc::new(StaticSite::single_page(&html)));
            }
            53 => {
                // The router answers DNS itself — with its own idea of the
                // world (what makes a sliver of "Incorrect" rows in
                // Table 4).
                let responder = Arc::new(FixedAnswerResponder::new(Ipv4Addr::new(192, 168, 88, 1)));
                net.bind_udp(ip, 53, Arc::new(Do53UdpService::new(responder.clone())));
                net.bind_tcp(ip, 53, Arc::new(Do53TcpService::new(responder)));
            }
            other => {
                let banner: &'static str = match other {
                    22 => "SSH-2.0-ROSSSH\r\n",
                    23 => "MikroTik v6.42 Login:",
                    179 => "", // BGP speaks first only after OPEN
                    _ => "",
                };
                net.bind_tcp(
                    ip,
                    other,
                    Arc::new(FnStreamService::new(
                        move |_ctx, _peer, _data: &[u8]| banner.as_bytes().to_vec(),
                        "banner",
                    )),
                );
            }
        }
    }
}

/// Install everything the plan calls for. `device_space` hands out device
/// addresses (10.0.0.0/8).
pub fn install(
    net: &mut Network,
    plan: &MiddleboxPlan,
    google_doh_fronts: &[Ipv4Addr],
    now: DateStamp,
    key_base: u64,
) -> InstalledDevices {
    let mut rules = PolicySet::new();
    let mut intercept_logs = Vec::new();
    let mut conflict_devices = Vec::new();
    let mut next_device: u32 = u32::from(Ipv4Addr::new(10, 0, 0, 1));
    let mut next_key = key_base;

    // 1. TLS interceptors.
    for (block, spec) in &plan.interceptor_sites {
        let device_ip = Ipv4Addr::from(next_device);
        next_device += 1;
        device_host(net, device_ip, &format!("interceptor:{}", spec.ca_cn));
        let ca = CaHandle::new(&spec.ca_cn, KeyId(next_key), now + -365, 3650);
        next_key += 1;
        let device_key = KeyId(next_key);
        next_key += 1;
        let service = TlsInterceptService::inline_interceptor(ca, device_key, now);
        intercept_logs.push((spec.ca_cn.clone(), service.log()));
        let service = Arc::new(service);
        let ports = if spec.intercepts_853 {
            vec![443u16, 853]
        } else {
            vec![443u16]
        };
        for &port in &ports {
            net.bind_tcp(
                device_ip,
                port,
                Arc::clone(&service) as Arc<dyn netsim::Service>,
            );
        }
        rules.push(
            PolicyRule::new(
                &format!("intercept:{}", spec.ca_cn),
                PathDecision::DivertTo(device_ip),
            )
            .from_src(SrcMatch::Block(*block))
            .on_port(PortMatch::Set(ports))
            .over(ProtoMatch::Tcp),
        );
    }

    // 2. 1.1.1.1 squatters.
    let cloudflare_addrs = vec![anchors::CLOUDFLARE_PRIMARY, anchors::CLOUDFLARE_SECONDARY];
    for (block, kind) in &plan.conflict_sites {
        match kind {
            DeviceKind::Blackhole => {
                rules.push(
                    PolicyRule::new("conflict:blackhole", PathDecision::Blackhole)
                        .from_src(SrcMatch::Block(*block))
                        .to_dst(DstMatch::Ips(cloudflare_addrs.clone())),
                );
            }
            other => {
                let device_ip = Ipv4Addr::from(next_device);
                next_device += 1;
                install_conflict_device(net, device_ip, *other);
                conflict_devices.push((*block, device_ip, *other));
                rules.push(
                    PolicyRule::new("conflict:squat", PathDecision::DivertTo(device_ip))
                        .from_src(SrcMatch::Block(*block))
                        .to_dst(DstMatch::Ips(cloudflare_addrs.clone())),
                );
            }
        }
    }

    // 3. Port-53 filtering to prominent resolvers.
    if !plan.filtered_blocks.is_empty() {
        rules.push(
            PolicyRule::new("filter:port53-prominent", PathDecision::Reset)
                .from_src(SrcMatch::Blocks(plan.filtered_blocks.clone()))
                .to_dst(DstMatch::Ips(prominent_addresses()))
                .on_port(PortMatch::One(53)),
        );
    }

    // 4. CN: Cloudflare 53+853 filtering (Zhima rows of Table 4).
    if !plan.cn_cloudflare_blocks.is_empty() {
        rules.push(
            PolicyRule::new("cn:cloudflare-53-853", PathDecision::Reset)
                .from_src(SrcMatch::Blocks(plan.cn_cloudflare_blocks.clone()))
                .to_dst(DstMatch::Ips(cloudflare_addrs.clone()))
                .on_port(PortMatch::Set(vec![53, 853])),
        );
    }

    // 5. CN: broken paths to 8.8.8.8:53.
    if !plan.cn_google_dns_blocks.is_empty() {
        rules.push(
            PolicyRule::new("cn:google-dns", PathDecision::Blackhole)
                .from_src(SrcMatch::Blocks(plan.cn_google_dns_blocks.clone()))
                .to_dst(DstMatch::Ip(anchors::GOOGLE_PRIMARY))
                .on_port(PortMatch::One(53)),
        );
    }

    // 6. GFW: Google's DoH front addresses carry other Google services and
    //    are blocked country-wide (Finding 2.2).
    rules.push(
        PolicyRule::new("gfw:google-doh", PathDecision::Blackhole)
            .from_src(SrcMatch::Country(netsim::CountryCode::new("CN")))
            .to_dst(DstMatch::Ips(google_doh_fronts.to_vec())),
    );

    // Merge into the network's policy set (after any pre-existing rules).
    for rule in rules.iter() {
        net.policies_mut().push(rule.clone());
    }

    InstalledDevices {
        intercept_logs,
        conflict_devices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::InterceptorSpec;
    use netsim::{NetworkConfig, ProbeOutcome};

    fn block(a: u8, b: u8, c: u8) -> Netblock {
        Netblock::new(Ipv4Addr::new(a, b, c, 0), 24)
    }

    fn base_net() -> Network {
        let mut net = Network::new(NetworkConfig::default(), 99);
        // A genuine Cloudflare host with 53/80/443/853 open.
        net.add_host(
            HostMeta::new(anchors::CLOUDFLARE_PRIMARY)
                .anycast()
                .label("cloudflare"),
        );
        let responder = Arc::new(FixedAnswerResponder::new(Ipv4Addr::new(1, 2, 3, 4)));
        net.bind_udp(
            anchors::CLOUDFLARE_PRIMARY,
            53,
            Arc::new(Do53UdpService::new(responder.clone())),
        );
        net.bind_tcp(
            anchors::CLOUDFLARE_PRIMARY,
            53,
            Arc::new(Do53TcpService::new(responder)),
        );
        net.bind_tcp(
            anchors::CLOUDFLARE_PRIMARY,
            80,
            Arc::new(StaticSite::single_page("cloudflare")),
        );
        net
    }

    #[test]
    fn squatter_divert_changes_what_port_80_serves() {
        let mut net = base_net();
        let victim_block = block(64, 0, 0);
        let plan = MiddleboxPlan {
            conflict_sites: vec![(
                victim_block,
                DeviceKind::MikroTikRouter {
                    crypto_hijacked: true,
                },
            )],
            ..MiddleboxPlan::default()
        };
        let installed = install(
            &mut net,
            &plan,
            &[],
            DateStamp::from_ymd(2019, 2, 1),
            50_000,
        );
        assert_eq!(installed.conflict_devices.len(), 1);

        let victim = victim_block.addr(5);
        let outsider = Ipv4Addr::new(65, 0, 0, 5);
        // Outsider reaches real Cloudflare page.
        let mut conn = net
            .connect(outsider, anchors::CLOUDFLARE_PRIMARY, 80)
            .unwrap();
        let resp = conn
            .request(&mut net, &httpsim::Request::get("/").encode())
            .unwrap();
        assert!(String::from_utf8_lossy(&resp).contains("cloudflare"));
        // Victim sees the router's coin-mining page.
        let mut conn = net
            .connect(victim, anchors::CLOUDFLARE_PRIMARY, 80)
            .unwrap();
        let resp = conn
            .request(&mut net, &httpsim::Request::get("/").encode())
            .unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.contains("coinhive"), "got {text}");
        // Victim's 853 probe: router has no 853.
        let (outcome, _) = net.syn_probe(victim, anchors::CLOUDFLARE_PRIMARY, 853);
        assert_eq!(outcome, ProbeOutcome::Closed);
    }

    #[test]
    fn blackhole_conflict_times_out() {
        let mut net = base_net();
        let victim_block = block(64, 0, 1);
        let plan = MiddleboxPlan {
            conflict_sites: vec![(victim_block, DeviceKind::Blackhole)],
            ..MiddleboxPlan::default()
        };
        install(
            &mut net,
            &plan,
            &[],
            DateStamp::from_ymd(2019, 2, 1),
            50_000,
        );
        let victim = victim_block.addr(5);
        let err = net
            .connect(victim, anchors::CLOUDFLARE_PRIMARY, 53)
            .unwrap_err();
        assert_eq!(err.kind, netsim::ConnectErrorKind::Timeout);
    }

    #[test]
    fn port53_filter_resets_only_prominent() {
        let mut net = base_net();
        let other_resolver = Ipv4Addr::new(9, 9, 9, 9);
        net.add_host(HostMeta::new(other_resolver).label("quad9"));
        net.bind_tcp(
            other_resolver,
            53,
            Arc::new(Do53TcpService::new(Arc::new(FixedAnswerResponder::new(
                Ipv4Addr::new(4, 3, 2, 1),
            )))),
        );
        let fb = block(64, 1, 0);
        let plan = MiddleboxPlan {
            filtered_blocks: vec![fb],
            ..MiddleboxPlan::default()
        };
        install(
            &mut net,
            &plan,
            &[],
            DateStamp::from_ymd(2019, 2, 1),
            50_000,
        );
        let victim = fb.addr(9);
        let err = net
            .connect(victim, anchors::CLOUDFLARE_PRIMARY, 53)
            .unwrap_err();
        assert_eq!(err.kind, netsim::ConnectErrorKind::Reset);
        // Non-prominent resolver unaffected.
        assert!(net.connect(victim, other_resolver, 53).is_ok());
        // Port 80 to Cloudflare unaffected (filters target port 53 only).
        assert!(net.connect(victim, anchors::CLOUDFLARE_PRIMARY, 80).is_ok());
    }

    #[test]
    fn gfw_blocks_google_doh_for_cn_only() {
        let mut net = base_net();
        let google_front = Ipv4Addr::new(216, 58, 192, 10);
        net.add_host(HostMeta::new(google_front).label("google-front"));
        net.bind_tcp(
            google_front,
            443,
            Arc::new(StaticSite::single_page("google")),
        );
        // Attribute a CN block and a US block.
        net.geodb_mut().insert(
            Netblock::new(Ipv4Addr::new(64, 2, 0, 0), 24),
            netsim::geo::BlockInfo {
                asn: netsim::Asn(4134),
                country: netsim::CountryCode::new("CN"),
                region: netsim::Region::Asia,
            },
        );
        let plan = MiddleboxPlan::default();
        install(
            &mut net,
            &plan,
            &[google_front],
            DateStamp::from_ymd(2019, 2, 1),
            50_000,
        );
        let cn_client = Ipv4Addr::new(64, 2, 0, 9);
        let us_client = Ipv4Addr::new(65, 2, 0, 9);
        assert!(net.connect(cn_client, google_front, 443).is_err());
        assert!(net.connect(us_client, google_front, 443).is_ok());
    }

    #[test]
    fn interceptor_sees_both_ports_unless_443_only() {
        let mut net = base_net();
        let b1 = block(64, 3, 0);
        let b2 = block(64, 3, 1);
        let plan = MiddleboxPlan {
            interceptor_sites: vec![
                (
                    b1,
                    InterceptorSpec {
                        ca_cn: "Test DPI".into(),
                        country: "US",
                        as_label: "AS1",
                        intercepts_853: true,
                    },
                ),
                (
                    b2,
                    InterceptorSpec {
                        ca_cn: "443 Only".into(),
                        country: "US",
                        as_label: "AS2",
                        intercepts_853: false,
                    },
                ),
            ],
            ..MiddleboxPlan::default()
        };
        let installed = install(
            &mut net,
            &plan,
            &[],
            DateStamp::from_ymd(2019, 2, 1),
            60_000,
        );
        assert_eq!(installed.intercept_logs.len(), 2);
        // Client in b2 reaching 853 is NOT diverted (rule covers 443 only):
        // destination Cloudflare has no 853 bound in this fixture, so the
        // connection is refused by the real host rather than the device.
        let err = net
            .connect(b2.addr(5), anchors::CLOUDFLARE_PRIMARY, 853)
            .unwrap_err();
        assert_eq!(err.kind, netsim::ConnectErrorKind::Refused);
        // Client in b1 reaching 853 IS diverted: the interceptor listens.
        let conn = net
            .connect(b1.addr(5), anchors::CLOUDFLARE_PRIMARY, 853)
            .unwrap();
        assert_ne!(conn.effective_dst(), anchors::CLOUDFLARE_PRIMARY);
    }
}
