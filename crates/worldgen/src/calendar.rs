//! Mapping between the simulator's virtual clock and civil dates.

use netsim::{SimDuration, SimTime};
use tlssim::DateStamp;

/// Anchors [`SimTime::EPOCH`] to a civil date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calendar {
    epoch_date: DateStamp,
}

impl Calendar {
    /// Virtual microseconds per civil day.
    pub const MICROS_PER_DAY: u64 = 86_400_000_000;

    /// A calendar whose simulation epoch is `epoch_date`.
    pub fn anchored_at(epoch_date: DateStamp) -> Self {
        Calendar { epoch_date }
    }

    /// The civil date at a virtual instant.
    pub fn date_at(&self, t: SimTime) -> DateStamp {
        self.epoch_date + (t.as_micros() / Self::MICROS_PER_DAY) as i64
    }

    /// The virtual instant at the start of a civil date.
    ///
    /// Dates before the epoch clamp to the epoch (the simulation cannot
    /// run backwards).
    pub fn time_of(&self, date: DateStamp) -> SimTime {
        let days = (date - self.epoch_date).max(0);
        SimTime::from_micros(days as u64 * Self::MICROS_PER_DAY)
    }

    /// The duration of `days` civil days.
    pub fn days(days: u64) -> SimDuration {
        SimDuration::from_micros(days * Self::MICROS_PER_DAY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cal = Calendar::anchored_at(DateStamp::from_ymd(2019, 2, 1));
        let d = DateStamp::from_ymd(2019, 3, 13);
        assert_eq!(cal.date_at(cal.time_of(d)), d);
        assert_eq!(cal.date_at(SimTime::EPOCH).to_string(), "2019-02-01");
    }

    #[test]
    fn pre_epoch_clamps() {
        let cal = Calendar::anchored_at(DateStamp::from_ymd(2019, 2, 1));
        assert_eq!(cal.time_of(DateStamp::from_ymd(2018, 1, 1)), SimTime::EPOCH);
    }

    #[test]
    fn mid_day_instants_map_to_the_day() {
        let cal = Calendar::anchored_at(DateStamp::from_ymd(2019, 2, 1));
        let noon = SimTime::from_micros(Calendar::MICROS_PER_DAY / 2);
        assert_eq!(cal.date_at(noon).to_string(), "2019-02-01");
        let tomorrow = SimTime::from_micros(Calendar::MICROS_PER_DAY + 1);
        assert_eq!(cal.date_at(tomorrow).to_string(), "2019-02-02");
    }
}
