//! The [`Study`]: owns the world and caches the expensive measurement
//! stages so individual experiments can share them.

use doe_privacy::{privacy_study_sharded, PrivacyConfig, PrivacyReport};
use doe_scanner::campaign::{self, CampaignReport};
use doe_traffic::{build_stub_world, StubPopulationConfig, StubPopulationReport};
use doe_traffic::{
    generate_dot_traffic, stub_population_sharded, DotTrafficConfig, TrafficDataset,
};
use doe_traffic::{generate_passive_dns, PassiveDnsDb, PdnsConfig};
use doe_vantage::performance::{performance_test_sharded, standard_tunnel, PerformanceReport};
use doe_vantage::reachability::{reachability_test_sharded, ReachabilityReport};
use worldgen::{World, WorldConfig};

/// Knobs for a study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World seed.
    pub seed: u64,
    /// Client-population scale (1.0 = paper scale).
    pub scale: f64,
    /// Scan epochs to run (the paper's campaign had 10).
    pub epochs: usize,
    /// Test every Nth vantage client in the reachability study (1 = all).
    pub reach_stride: usize,
    /// Cap on performance-test clients.
    pub perf_clients: usize,
    /// Queries per protocol per client in the reused-connection test.
    pub perf_queries: u32,
    /// Iterations per vantage in the fresh-connection test (paper: 200).
    pub fresh_iterations: u32,
    /// Sweep the full advertised space (honest, slower) instead of the
    /// populated-/24 whitelist.
    pub full_sweep: bool,
    /// Worker threads for the sharded measurement stages (sweep,
    /// verification, vantage tests). Results are shard-count invariant;
    /// 0 means "use available parallelism".
    pub shards: usize,
    /// Network event-trace capacity (0 = tracing off).
    pub trace_capacity: usize,
    /// Whether the network collects telemetry (`repro --metrics`).
    pub metrics: bool,
    /// Concurrent event-driven stub clients in the population-scale leg
    /// (`repro --clients N`; paper config: 1,000,000).
    pub sim_clients: usize,
}

impl StudyConfig {
    /// Fast configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        StudyConfig {
            seed,
            scale: 0.02,
            epochs: 3,
            reach_stride: 1,
            perf_clients: 60,
            perf_queries: 20,
            fresh_iterations: 60,
            full_sweep: false,
            shards: 0,
            trace_capacity: 0,
            metrics: true,
            sim_clients: 20_000,
        }
    }

    /// The full reproduction (run in release mode).
    pub fn paper(seed: u64) -> Self {
        StudyConfig {
            seed,
            scale: 1.0,
            epochs: 10,
            reach_stride: 1,
            perf_clients: 10_000,
            perf_queries: 20,
            fresh_iterations: 200,
            full_sweep: true,
            shards: 0,
            trace_capacity: 0,
            metrics: true,
            sim_clients: 1_000_000,
        }
    }

    fn world_config(&self) -> WorldConfig {
        WorldConfig {
            seed: self.seed,
            scale: self.scale,
            trace_capacity: self.trace_capacity,
            metrics: self.metrics,
            ..WorldConfig::default()
        }
    }

    /// The effective worker count: `shards`, or the machine's available
    /// parallelism when left at 0.
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            crossbeam::available_parallelism()
        } else {
            self.shards
        }
    }
}

/// The study driver. Heavy stages run once and are cached.
pub struct Study {
    /// The simulated world under measurement.
    pub world: World,
    /// Active knobs.
    pub config: StudyConfig,
    campaign: Option<CampaignReport>,
    reach_global: Option<ReachabilityReport>,
    reach_cn: Option<ReachabilityReport>,
    performance: Option<PerformanceReport>,
    traffic: Option<TrafficDataset>,
    pdns_360: Option<PassiveDnsDb>,
    pdns_dnsdb: Option<PassiveDnsDb>,
    stub_population: Option<StubPopulationReport>,
    privacy: Option<PrivacyReport>,
}

impl Study {
    /// Build the world and wrap it.
    pub fn new(config: StudyConfig) -> Study {
        let world = World::build(config.world_config());
        Study {
            world,
            config,
            campaign: None,
            reach_global: None,
            reach_cn: None,
            performance: None,
            traffic: None,
            pdns_360: None,
            pdns_dnsdb: None,
            stub_population: None,
            privacy: None,
        }
    }

    /// The scanning campaign (runs once; advances the world clock through
    /// the scan window).
    pub fn campaign(&mut self) -> &CampaignReport {
        if self.campaign.is_none() {
            let space = if self.config.full_sweep {
                campaign::full_space(&self.world)
            } else {
                campaign::compact_space(&self.world)
            };
            // Run the first and last epochs plus evenly-spaced middles.
            let shards = self.config.effective_shards();
            let report = if self.config.epochs >= 10 {
                campaign::run_campaign_sharded(
                    &mut self.world,
                    &space,
                    10,
                    self.config.seed,
                    shards,
                )
            } else {
                // Reduced-epoch mode still measures first and last dates.
                let mut summaries = Vec::new();
                let picks: Vec<usize> = match self.config.epochs {
                    0 | 1 => vec![9],
                    2 => vec![0, 9],
                    n => {
                        let mut v: Vec<usize> = (0..n - 1).map(|i| i * 9 / (n - 1)).collect();
                        v.push(9);
                        v.dedup();
                        v
                    }
                };
                for epoch in picks {
                    let date = self.world.config.scan_date(epoch);
                    self.world.set_epoch(date);
                    summaries.push(campaign::scan_epoch_sharded(
                        &mut self.world,
                        &space,
                        epoch,
                        self.config.seed,
                        shards,
                    ));
                }
                CampaignReport { epochs: summaries }
            };
            self.campaign = Some(report);
        }
        self.campaign.as_ref().expect("just computed")
    }

    /// Global-pool reachability (Table 4's ProxyRack rows).
    pub fn reach_global(&mut self) -> &ReachabilityReport {
        if self.reach_global.is_none() {
            let clients: Vec<_> = self
                .world
                .proxyrack
                .clients
                .iter()
                .step_by(self.config.reach_stride.max(1))
                .cloned()
                .collect();
            let shards = self.config.effective_shards();
            self.reach_global = Some(reachability_test_sharded(
                &mut self.world,
                &clients,
                "Cloudflare",
                shards,
            ));
        }
        self.reach_global.as_ref().expect("just computed")
    }

    /// Censored-pool reachability (Table 4's Zhima rows).
    pub fn reach_cn(&mut self) -> &ReachabilityReport {
        if self.reach_cn.is_none() {
            let clients: Vec<_> = self
                .world
                .zhima
                .clients
                .iter()
                .step_by(self.config.reach_stride.max(1))
                .cloned()
                .collect();
            let shards = self.config.effective_shards();
            self.reach_cn = Some(reachability_test_sharded(
                &mut self.world,
                &clients,
                "Cloudflare",
                shards,
            ));
        }
        self.reach_cn.as_ref().expect("just computed")
    }

    /// The reused-connection performance study (Figures 9/10).
    pub fn performance(&mut self) -> &PerformanceReport {
        if self.performance.is_none() {
            let tunnel = standard_tunnel(&mut self.world.net);
            let clients: Vec<_> = self
                .world
                .proxyrack
                .clients
                .iter()
                .filter(|c| c.in_perf_subset)
                .take(self.config.perf_clients)
                .cloned()
                .collect();
            let shards = self.config.effective_shards();
            self.performance = Some(performance_test_sharded(
                &mut self.world,
                &clients,
                tunnel,
                self.config.perf_queries,
                shards,
            ));
        }
        self.performance.as_ref().expect("just computed")
    }

    /// The 18-month NetFlow dataset (§5.1/§5.2).
    pub fn traffic(&mut self) -> &TrafficDataset {
        if self.traffic.is_none() {
            self.traffic = Some(generate_dot_traffic(&DotTrafficConfig {
                seed: self.config.seed ^ 0x5e7f,
                ..DotTrafficConfig::default()
            }));
        }
        self.traffic.as_ref().expect("just computed")
    }

    /// The population-scale stress leg: `sim_clients` event-driven stub
    /// clients interleaved on the discrete-event scheduler. Runs in its
    /// own lightweight world; its telemetry is folded into the study
    /// world's registry so `repro --metrics` carries the scheduler-load
    /// breakdown.
    pub fn stub_population(&mut self) -> &StubPopulationReport {
        if self.stub_population.is_none() {
            let mut stub_world = build_stub_world(self.config.seed ^ 0x57ab, self.config.metrics);
            let report = stub_population_sharded(
                &mut stub_world,
                &StubPopulationConfig {
                    clients: self.config.sim_clients,
                    ..StubPopulationConfig::default()
                },
                self.config.effective_shards(),
            );
            if self.config.metrics {
                self.world.net.metrics_mut().merge(stub_world.net.metrics());
            }
            self.stub_population = Some(report);
        }
        self.stub_population.as_ref().expect("just computed")
    }

    /// The padding-leakage privacy experiment: the closed-world
    /// fingerprinting workload replayed under every padding policy.
    /// Runs in its own lean world (policy resolvers, wildcard zones) so
    /// the main world's clock and connection state stay untouched.
    pub fn privacy(&mut self) -> &PrivacyReport {
        if self.privacy.is_none() {
            let cfg = if self.config.scale >= 1.0 {
                PrivacyConfig::paper()
            } else {
                PrivacyConfig::quick()
            };
            let mut net = netsim::Network::new(
                netsim::NetworkConfig {
                    metrics: self.config.metrics,
                    ..netsim::NetworkConfig::default()
                },
                self.config.seed ^ 0x7061_6464,
            );
            let world = doe_privacy::workload::install(&mut net, cfg.domains);
            let report =
                privacy_study_sharded(&mut net, &world, &cfg, self.config.effective_shards());
            if self.config.metrics {
                self.world.net.metrics_mut().merge(net.metrics());
            }
            self.privacy = Some(report);
        }
        self.privacy.as_ref().expect("just computed")
    }

    /// The 360-PassiveDNS-like feed (§5.3).
    pub fn pdns_360(&mut self) -> &PassiveDnsDb {
        if self.pdns_360.is_none() {
            self.pdns_360 = Some(generate_passive_dns(&PdnsConfig::three_sixty()));
        }
        self.pdns_360.as_ref().expect("just computed")
    }

    /// The DNSDB-like feed (§5.3's lifetime cut).
    pub fn pdns_dnsdb(&mut self) -> &PassiveDnsDb {
        if self.pdns_dnsdb.is_none() {
            self.pdns_dnsdb = Some(generate_passive_dns(&PdnsConfig::dnsdb()));
        }
        self.pdns_dnsdb.as_ref().expect("just computed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_lazy_and_stable() {
        let mut study = Study::new(StudyConfig {
            epochs: 2,
            ..StudyConfig::quick(3)
        });
        let first = study.campaign().epochs.len();
        assert_eq!(first, 2);
        // Second call hits the cache (same allocation).
        let again = study.campaign() as *const CampaignReport;
        let again2 = study.campaign() as *const CampaignReport;
        assert_eq!(again, again2);
    }
}
