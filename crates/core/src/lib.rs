//! # doe-core — the end-to-end study
//!
//! Ties every substrate together into the paper's experiments. Each table
//! and figure of the evaluation has a runner in [`experiments`] that
//! regenerates it against the simulated world, a renderer that prints the
//! same rows/series the paper reports, and an entry in [`expectations`]
//! recording the paper's values for the EXPERIMENTS.md comparison.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release --bin repro -- all          # every experiment
//! cargo run --release --bin repro -- table4       # one experiment
//! cargo run --release --bin repro -- --scale 0.1 figure3
//! ```

pub mod compare;
pub mod expectations;
pub mod experiments;
pub mod render;
pub mod study;

pub use compare::{implementation_survey, protocol_profiles, timeline_events, Grade};
pub use expectations::{expectation, Expectation};
pub use study::{Study, StudyConfig};
