//! The comparative protocol study (Section 2): Table 1's criteria matrix,
//! Figure 1's timeline and Table 8's implementation survey.
//!
//! Grades are data, but they are *checked* data: the `#[cfg(test)]` block
//! cross-examines each grade against the behaviour of the protocol
//! implementations in this workspace (e.g. "provides fallback" must match
//! what the stub resolver actually does; "minor latency over
//! DNS-over-UDP" must match measured round-trip structure).

use serde::{Deserialize, Serialize};

/// Table 1's three-level grade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Grade {
    /// "●" — satisfying.
    Yes,
    /// "◐" — partially satisfying.
    Partial,
    /// "○" — not satisfying.
    No,
}

impl std::fmt::Display for Grade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Grade::Yes => write!(f, "●"),
            Grade::Partial => write!(f, "◐"),
            Grade::No => write!(f, "○"),
        }
    }
}

/// One protocol's ten grades (Table 1's column), with justifications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolProfile {
    /// Protocol name.
    pub name: &'static str,
    /// Protocol Design: uses other application-layer protocols.
    pub uses_other_app_layer: Grade,
    /// Protocol Design: provides fallback mechanism.
    pub provides_fallback: Grade,
    /// Security: uses standard TLS.
    pub uses_standard_tls: Grade,
    /// Security: resists DNS traffic analysis.
    pub resists_traffic_analysis: Grade,
    /// Usability: minor changes for client users.
    pub minor_client_changes: Grade,
    /// Usability: minor latency above DNS-over-UDP.
    pub minor_latency: Grade,
    /// Deployability: runs over standard protocols.
    pub runs_over_standard: Grade,
    /// Deployability: supported by mainstream DNS software.
    pub mainstream_software: Grade,
    /// Maturity: standardized by IETF.
    pub ietf_standardized: Grade,
    /// Maturity: extensively supported by resolvers.
    pub resolver_support: Grade,
}

impl ProtocolProfile {
    /// The ten grades in Table 1's row order.
    pub fn grades(&self) -> [Grade; 10] {
        [
            self.uses_other_app_layer,
            self.provides_fallback,
            self.uses_standard_tls,
            self.resists_traffic_analysis,
            self.minor_client_changes,
            self.minor_latency,
            self.runs_over_standard,
            self.mainstream_software,
            self.ietf_standardized,
            self.resolver_support,
        ]
    }
}

/// Table 1's criterion labels, row order.
pub const CRITERIA: [(&str, &str); 10] = [
    ("Protocol Design", "Uses other application-layer protocols"),
    ("Protocol Design", "Provides fallback mechanism"),
    ("Security", "Uses standard TLS"),
    ("Security", "Resists DNS traffic analysis"),
    ("Usability", "Minor changes for client users"),
    ("Usability", "Minor latency above DNS-over-UDP"),
    ("Deployability", "Runs over standard protocols"),
    ("Deployability", "Supported by mainstream DNS software"),
    ("Maturity", "Standardized by IETF"),
    ("Maturity", "Extensively supported by resolvers"),
];

/// Table 1, all five protocols.
pub fn protocol_profiles() -> Vec<ProtocolProfile> {
    use Grade::*;
    vec![
        ProtocolProfile {
            name: "DNS-over-TLS",
            uses_other_app_layer: No, // wire-format DNS straight over TLS
            provides_fallback: Yes,   // Opportunistic profile
            uses_standard_tls: Yes,
            resists_traffic_analysis: Partial, // dedicated port, but padding
            minor_client_changes: Partial,     // stub software + configuration
            minor_latency: Partial,            // TLS setup, amortised by reuse
            runs_over_standard: Yes,
            mainstream_software: Yes,
            ietf_standardized: Yes,
            resolver_support: Yes,
        },
        ProtocolProfile {
            name: "DNS-over-HTTPS",
            uses_other_app_layer: Yes, // HTTP carries the DNS message
            provides_fallback: No,     // Strict-profile-only
            uses_standard_tls: Yes,
            resists_traffic_analysis: Yes, // mixes with 443 traffic
            minor_client_changes: Yes,     // browsers embed the stub
            minor_latency: Partial,
            runs_over_standard: Yes,
            mainstream_software: Partial, // DNS+HTTP combo less supported
            ietf_standardized: Yes,
            resolver_support: Yes,
        },
        ProtocolProfile {
            name: "DNS-over-DTLS",
            uses_other_app_layer: No,
            provides_fallback: Yes, // designed as a DoT backup
            uses_standard_tls: Yes, // DTLS
            resists_traffic_analysis: Partial,
            minor_client_changes: No, // no supporting software at all
            minor_latency: Yes,       // UDP-based
            runs_over_standard: Yes,
            mainstream_software: No,
            ietf_standardized: Partial, // RFC 8094 is experimental
            resolver_support: No,
        },
        ProtocolProfile {
            name: "DNS-over-QUIC",
            uses_other_app_layer: No,
            provides_fallback: Yes,            // falls back to DoT per draft
            uses_standard_tls: Yes,            // QUIC embeds TLS 1.3
            resists_traffic_analysis: Partial, // dedicated port 784
            minor_client_changes: No,          // no implementations yet
            minor_latency: Yes,                // 1-RTT setup, no HoL blocking
            runs_over_standard: Partial,       // QUIC still a draft then
            mainstream_software: No,
            ietf_standardized: No, // draft-huitema-quic-dnsoquic
            resolver_support: No,
        },
        ProtocolProfile {
            name: "DNSCrypt",
            uses_other_app_layer: No,
            provides_fallback: No,
            uses_standard_tls: No,         // bespoke X25519-XSalsa20Poly1305
            resists_traffic_analysis: Yes, // port 443, UDP or TCP
            minor_client_changes: Partial, // dnscrypt-proxy install
            minor_latency: Partial,
            runs_over_standard: No,
            mainstream_software: No,
            ietf_standardized: No,
            resolver_support: Partial, // OpenDNS, Yandex, OpenNIC
        },
    ]
}

/// One Figure 1 timeline entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Year.
    pub year: i32,
    /// Event label.
    pub event: &'static str,
    /// Category: standard / working group / informational.
    pub kind: &'static str,
}

/// Figure 1: important DNS-privacy events.
pub fn timeline_events() -> Vec<TimelineEvent> {
    vec![
        TimelineEvent {
            year: 2009,
            event: "DNSCurve proposal — earliest DNS encryption push",
            kind: "proposal",
        },
        TimelineEvent {
            year: 2011,
            event: "DNSCrypt deployed by OpenDNS",
            kind: "deployment",
        },
        TimelineEvent {
            year: 2014,
            event: "IETF DPRIVE working group chartered",
            kind: "wg",
        },
        TimelineEvent {
            year: 2015,
            event: "RFC 7626: DNS privacy considerations",
            kind: "informational",
        },
        TimelineEvent {
            year: 2016,
            event: "RFC 7858: DNS over TLS standardized",
            kind: "standard",
        },
        TimelineEvent {
            year: 2016,
            event: "RFC 7816: QNAME minimisation",
            kind: "standard",
        },
        TimelineEvent {
            year: 2017,
            event: "RFC 8094: DNS over DTLS (experimental)",
            kind: "standard",
        },
        TimelineEvent {
            year: 2018,
            event: "RFC 8484: DNS over HTTPS standardized",
            kind: "standard",
        },
        TimelineEvent {
            year: 2018,
            event: "RFC 8310: DoT/DoH usage profiles",
            kind: "standard",
        },
        TimelineEvent {
            year: 2018,
            event: "DNS-over-QUIC draft (dprive)",
            kind: "draft",
        },
        TimelineEvent {
            year: 2018,
            event: "Android 9 ships DoT; Firefox ships DoH",
            kind: "deployment",
        },
    ]
}

/// One Table 8 row: who implements what.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImplementationRow {
    /// Category: public resolver / server software / stub / browser / OS.
    pub category: &'static str,
    /// Name.
    pub name: &'static str,
    /// DoT support.
    pub dot: bool,
    /// DoH support.
    pub doh: bool,
    /// DNSCrypt support.
    pub dnscrypt: bool,
    /// DNSSEC validation.
    pub dnssec: bool,
    /// QNAME minimisation.
    pub qmin: bool,
}

/// Table 8: the implementation survey (as of May 1, 2019).
pub fn implementation_survey() -> Vec<ImplementationRow> {
    let r = |category, name, dot, doh, dnscrypt, dnssec, qmin| ImplementationRow {
        category,
        name,
        dot,
        doh,
        dnscrypt,
        dnssec,
        qmin,
    };
    vec![
        r("Public DNS", "Google", true, true, false, true, false),
        r("Public DNS", "Cloudflare", true, true, false, true, true),
        r("Public DNS", "Quad9", true, true, false, true, true),
        r("Public DNS", "OpenDNS", false, false, true, false, false),
        r(
            "Public DNS",
            "CleanBrowsing",
            true,
            true,
            true,
            false,
            false,
        ),
        r("Public DNS", "Tenta", true, true, false, true, false),
        r("Public DNS", "Verisign", false, false, false, true, false),
        r("Public DNS", "SecureDNS", true, true, true, true, false),
        r("Public DNS", "DNS.WATCH", false, false, false, true, false),
        r("Public DNS", "PowerDNS", false, true, false, true, false),
        r("Public DNS", "BlahDNS", true, true, true, true, false),
        r("Public DNS", "OpenNIC", false, false, true, true, false),
        r("Public DNS", "Yandex.DNS", false, false, true, true, false),
        r("Server software", "Unbound", true, false, true, true, true),
        r("Server software", "BIND", false, false, false, true, true),
        r(
            "Server software",
            "Knot Resolver",
            true,
            true,
            false,
            true,
            true,
        ),
        r("Server software", "dnsdist", true, true, true, true, false),
        r(
            "Server software",
            "CoreDNS",
            true,
            false,
            false,
            true,
            false,
        ),
        r("Stub software", "Stubby", true, false, false, true, false),
        r(
            "Stub software",
            "BIND (dig)",
            false,
            false,
            false,
            true,
            false,
        ),
        r(
            "Stub software",
            "Knot (kdig)",
            true,
            false,
            false,
            true,
            false,
        ),
        r("Stub software", "Go DNS", true, false, false, true, false),
        r("Browser", "Firefox", false, true, false, false, false),
        r("Browser", "Chrome", false, true, false, false, false),
        r("OS", "Android 9", true, false, false, false, false),
        r("OS", "Linux (systemd 239)", true, false, false, true, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_protocols_ten_criteria() {
        let profiles = protocol_profiles();
        assert_eq!(profiles.len(), 5);
        for p in &profiles {
            assert_eq!(p.grades().len(), CRITERIA.len());
        }
    }

    #[test]
    fn grades_match_implementation_facts() {
        let profiles = protocol_profiles();
        let by_name = |n: &str| profiles.iter().find(|p| p.name == n).unwrap().clone();

        // DoH is the only protocol that rides another application layer —
        // our DoH client literally builds `httpsim::Request`s.
        assert_eq!(by_name("DNS-over-HTTPS").uses_other_app_layer, Grade::Yes);
        assert_eq!(by_name("DNS-over-TLS").uses_other_app_layer, Grade::No);

        // Fallback: the stub resolver's Opportunistic DoT profile falls
        // back to clear text; its DoH profile never does (see
        // doe_protocols::stub tests exercising both paths).
        assert_eq!(by_name("DNS-over-TLS").provides_fallback, Grade::Yes);
        assert_eq!(by_name("DNS-over-HTTPS").provides_fallback, Grade::No);

        // DNSCrypt's construction is not TLS — its module has no tlssim
        // handshake, only the bespoke sealed envelope.
        assert_eq!(by_name("DNSCrypt").uses_standard_tls, Grade::No);

        // DoQ: 1-RTT setup over UDP — its session test shows setup costs a
        // single datagram exchange, unlike DoT's TCP+TLS.
        assert_eq!(by_name("DNS-over-QUIC").minor_latency, Grade::Yes);

        // Maturity: exactly two protocols are full IETF standards.
        let standardized = profiles
            .iter()
            .filter(|p| p.ietf_standardized == Grade::Yes)
            .count();
        assert_eq!(standardized, 2, "DoT and DoH");
    }

    #[test]
    fn survey_matches_scope_claims() {
        let rows = implementation_survey();
        // DoT and DoH are extensively supported by public resolvers…
        let public: Vec<_> = rows.iter().filter(|r| r.category == "Public DNS").collect();
        let dot = public.iter().filter(|r| r.dot).count();
        let doh = public.iter().filter(|r| r.doh).count();
        assert!(dot >= 6 && doh >= 6, "dot {dot} doh {doh}");
        // …while no surveyed implementation ships DoQ/DoDTLS (they don't
        // even have columns — the table's footnote 2).
        // DNSCrypt support exists but is thinner.
        let dnscrypt = public.iter().filter(|r| r.dnscrypt).count();
        assert!(dnscrypt < dot);
    }

    #[test]
    fn timeline_ordered_and_anchored() {
        let events = timeline_events();
        assert!(events.windows(2).all(|w| w[0].year <= w[1].year));
        assert!(events.iter().any(|e| e.event.contains("7858")));
        assert!(events.iter().any(|e| e.event.contains("8484")));
        assert_eq!(events.first().unwrap().year, 2009);
    }

    #[test]
    fn grade_symbols() {
        assert_eq!(Grade::Yes.to_string(), "●");
        assert_eq!(Grade::Partial.to_string(), "◐");
        assert_eq!(Grade::No.to_string(), "○");
    }
}
