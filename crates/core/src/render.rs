//! Plain-text table rendering for the repro reports.

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i + 1 < cells.len() {
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as `12.34%`.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Format a signed millisecond value as `+5.2ms` / `-99.1ms`.
pub fn ms(x: f64) -> String {
    format!("{}{:.1}ms", if x >= 0.0 { "+" } else { "" }, x)
}

/// A section heading for the report stream.
pub fn heading(title: &str) -> String {
    format!(
        "\n== {title} {}\n",
        "=".repeat(66usize.saturating_sub(title.len()))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["CC", "Feb 1", "May 1", "Growth"]);
        t.row(vec!["IE", "456", "951", "+108%"]);
        t.row(vec!["CN", "257", "40", "-84%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("CC"));
        assert!(lines[2].contains("456"));
        // Columns line up: "Feb 1" column starts at the same offset.
        let pos_h = lines[0].find("Feb 1").unwrap();
        let pos_r = lines[2].find("456").unwrap();
        assert_eq!(pos_h, pos_r);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1646), "16.46%");
        assert_eq!(ms(5.25), "+5.2ms");
        assert_eq!(ms(-99.1), "-99.1ms");
        assert!(heading("Table 4").contains("== Table 4"));
    }
}
