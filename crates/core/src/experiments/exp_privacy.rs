//! The privacy experiment: does padding stop sequence fingerprinting?
//!
//! The paper's §6 recommendation is RFC 8467 padding; the FOCI '20
//! follow-up line showed message *sequences* still fingerprint
//! destinations. `padding-leakage` stages that argument end to end:
//! closed-world per-domain lookup flows, five countermeasure policies,
//! one k-NN adversary, bandwidth/latency overheads against the unpadded
//! baseline. All figures are integers (permille / bytes / µs) so the
//! JSON artifact byte-compares across runs and shard counts.

use crate::experiments::ExperimentResult;
use crate::render::{heading, TextTable};
use crate::study::Study;
use serde_json::json;

/// The `padding-leakage` experiment.
pub fn padding_leakage(study: &mut Study) -> ExperimentResult {
    let report = study.privacy().clone();

    let mut table = TextTable::new(vec![
        "Policy",
        "Accuracy",
        "Bandwidth",
        "Dummies",
        "Added latency",
        "Messages",
    ]);
    for p in &report.policies {
        table.row(vec![
            p.policy.to_string(),
            format!("{}.{}%", p.accuracy_permille / 10, p.accuracy_permille % 10),
            format!(
                "{}.{}x",
                p.bandwidth_overhead_permille / 1000,
                p.bandwidth_overhead_permille % 1000 / 10
            ),
            p.dummy_cells.to_string(),
            format!("{:.1} ms", p.latency_added_us_mean as f64 / 1000.0),
            p.messages.to_string(),
        ]);
    }

    let rendered = format!(
        "{}closed world      : {} domains x {} samples per policy\nflows simulated   : {}\nrandom guess      : {}.{}%\n\n{}",
        heading("Padding leakage — sequence fingerprinting vs countermeasures"),
        report.domains,
        report.samples_per_domain,
        report.flows,
        report.random_guess_permille / 10,
        report.random_guess_permille % 10,
        table.render(),
    );

    let policies_json: Vec<serde_json::Value> = report
        .policies
        .iter()
        .map(|p| {
            json!({
                "policy": p.policy,
                "accuracy_permille": p.accuracy_permille,
                "correct": p.correct,
                "tested": p.tested,
                "wire_bytes": p.wire_bytes,
                "bandwidth_overhead_permille": p.bandwidth_overhead_permille,
                "dummy_cells": p.dummy_cells,
                "latency_added_us_mean": p.latency_added_us_mean,
                "messages": p.messages,
            })
        })
        .collect();

    ExperimentResult {
        id: "padding-leakage",
        title: "Padding vs sequence fingerprinting",
        rendered,
        json: json!({
            "domains": report.domains,
            "samples_per_domain": report.samples_per_domain,
            "flows": report.flows,
            "random_guess_permille": report.random_guess_permille,
            "policies": policies_json,
        }),
    }
}
