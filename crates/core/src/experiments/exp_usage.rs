//! Section 5 experiments: DoT traffic (Figures 11/12), DoH bootstrap
//! trends (Figure 13) and the scan-detection check.

use crate::experiments::ExperimentResult;
use crate::render::{heading, pct, TextTable};
use crate::study::Study;
use doe_traffic::{analyze_dot_metered, detect_scanners, ScanDetectorConfig, ScanVerdict};
use serde_json::json;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use worldgen::providers::anchors;

fn resolver_labels() -> BTreeMap<Ipv4Addr, String> {
    let mut m = BTreeMap::new();
    m.insert(anchors::CLOUDFLARE_PRIMARY, "Cloudflare".to_string());
    m.insert(anchors::CLOUDFLARE_SECONDARY, "Cloudflare".to_string());
    m.insert(anchors::QUAD9_PRIMARY, "Quad9".to_string());
    m
}

/// Figure 11: monthly DoT flows to Cloudflare and Quad9.
pub fn figure11(study: &mut Study) -> ExperimentResult {
    let do53_estimate = study.traffic().do53_monthly_estimate;
    let records = study.traffic().records.clone();
    let report = analyze_dot_metered(&records, &resolver_labels(), study.world.net.metrics_mut());
    let months: Vec<String> = {
        let mut set = std::collections::BTreeSet::new();
        for series in report.monthly.values() {
            set.extend(series.keys().cloned());
        }
        set.into_iter().collect()
    };
    let mut table = TextTable::new(vec!["Month", "Cloudflare", "Quad9"]);
    for month in &months {
        let cf = report
            .monthly
            .get("Cloudflare")
            .and_then(|s| s.get(month))
            .copied()
            .unwrap_or(0);
        let q9 = report
            .monthly
            .get("Quad9")
            .and_then(|s| s.get(month))
            .copied()
            .unwrap_or(0);
        table.row(vec![month.clone(), cf.to_string(), q9.to_string()]);
    }
    let cf = report
        .monthly
        .get("Cloudflare")
        .cloned()
        .unwrap_or_default();
    let jul = cf.get("2018-07").copied().unwrap_or(0) as f64;
    let dec = cf.get("2018-12").copied().unwrap_or(0) as f64;
    let growth = if jul > 0.0 { (dec - jul) / jul } else { 0.0 };
    let rendered = format!(
        "{}{}\nCloudflare Jul→Dec 2018 growth: {} (paper: +56%)\nsingle-SYN flows excluded: {}\nDoT vs traditional DNS volume: ~{:.0}× less (paper: 2-3 orders of magnitude)\n",
        heading("Figure 11 — Monthly DoT flows to Cloudflare and Quad9 (sampled NetFlow)"),
        table.render(),
        pct(growth),
        report.excluded_single_syn,
        do53_estimate / dec.max(1.0),
    );
    ExperimentResult {
        id: "figure11",
        title: "DoT traffic trend",
        rendered,
        json: json!({
            "monthly": report.monthly,
            "growth_jul_dec_2018": growth,
            "excluded_single_syn": report.excluded_single_syn,
            "do53_ratio": do53_estimate / dec.max(1.0),
        }),
    }
}

/// Figure 12: per-/24 DoT traffic concentration and churn.
pub fn figure12(study: &mut Study) -> ExperimentResult {
    let records = study.traffic().records.clone();
    let report = analyze_dot_metered(&records, &resolver_labels(), study.world.net.metrics_mut());
    let (short_blocks, short_traffic) = report.short_lived(7);
    let mut table = TextTable::new(vec!["Top /24", "Flows", "Share", "Active days"]);
    for b in report.netblocks.iter().take(10) {
        table.row(vec![
            b.block.to_string(),
            b.flows.to_string(),
            pct(b.share),
            b.active_days.to_string(),
        ]);
    }
    let rendered = format!(
        "{}{}\nnetblocks total      : {} (paper: 5,623)\ntop-5 traffic share  : {} (paper: 44%)\ntop-20 traffic share : {} (paper: 60%)\nactive <1 week       : {} of netblocks carrying {} of traffic (paper: 96% / 25%)\n",
        heading("Figure 12 — DoT traffic per /24 client network"),
        table.render(),
        report.netblocks.len(),
        pct(report.top_share(5)),
        pct(report.top_share(20)),
        pct(short_blocks),
        pct(short_traffic),
    );
    ExperimentResult {
        id: "figure12",
        title: "Per-/24 concentration",
        rendered,
        json: json!({
            "netblocks": report.netblocks.len(),
            "top5_share": report.top_share(5),
            "top20_share": report.top_share(20),
            "short_lived_blocks": short_blocks,
            "short_lived_traffic": short_traffic,
            "points": report
                .netblocks
                .iter()
                .take(500)
                .map(|b| json!({"share": b.share, "active_days": b.active_days}))
                .collect::<Vec<_>>(),
        }),
    }
}

/// Figure 13: monthly query volume of popular DoH bootstrap domains.
pub fn figure13(study: &mut Study) -> ExperimentResult {
    let (popular, dnsdb_count) = {
        let top = study.pdns_dnsdb().domains_above(10_000);
        (
            top.iter()
                .map(|(d, _)| d.to_string())
                .collect::<Vec<String>>(),
            top.len(),
        )
    };
    let db = study.pdns_360().clone();
    let months = ["2018-07", "2018-09", "2018-11", "2019-01", "2019-03"];
    let mut header = vec!["Domain".to_string()];
    header.extend(months.iter().map(|m| m.to_string()));
    let mut table = TextTable::new(header);
    let mut payload = BTreeMap::new();
    for domain in &popular {
        let Some(stats) = db.lookup(domain) else {
            continue;
        };
        let monthly = stats.monthly();
        let mut row = vec![domain.clone()];
        for m in months {
            row.push(monthly.get(m).copied().unwrap_or(0).to_string());
        }
        table.row(row);
        payload.insert(domain.clone(), monthly);
    }
    let rendered = format!(
        "{}domains with >10K lifetime lookups (DNSDB view): {} (paper: 4)\n\n{}",
        heading("Figure 13 — Query volume of popular DoH domains (360 view)"),
        dnsdb_count,
        table.render(),
    );
    ExperimentResult {
        id: "figure13",
        title: "DoH bootstrap trends",
        rendered,
        json: json!({
            "popular": popular,
            "monthly": payload,
        }),
    }
}

/// §5.2's validation: the observed DoT client networks are not scanners.
pub fn scandet(study: &mut Study) -> ExperimentResult {
    let scanner_sources = study.traffic().scanner_sources.clone();
    let records = study.traffic().records.clone();
    let verdicts = detect_scanners(&records, 853, ScanDetectorConfig::default());
    let scanners: Vec<_> = verdicts
        .iter()
        .filter(|(_, v)| **v == ScanVerdict::Scanner)
        .map(|(s, _)| *s)
        .collect();
    let suspicious = verdicts
        .values()
        .filter(|v| **v == ScanVerdict::Suspicious)
        .count();
    let false_positives: Vec<_> = scanners
        .iter()
        .filter(|s| !scanner_sources.contains(s))
        .collect();
    let rendered = format!(
        "{}sources analysed : {}\nconfirmed scanners: {:?} (planted research scanners: {:?})\nsuspicious        : {}\nclient networks flagged: {} (paper: none)\n",
        heading("Scan detection over the DoT flow dataset (§5.2)"),
        verdicts.len(),
        scanners,
        scanner_sources,
        suspicious,
        false_positives.len(),
    );
    ExperimentResult {
        id: "scandet",
        title: "Scanner exclusion",
        rendered,
        json: json!({
            "sources": verdicts.len(),
            "scanners": scanners.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            "false_positives": false_positives.len(),
        }),
    }
}
