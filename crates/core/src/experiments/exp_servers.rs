//! Section 3 experiments: the scanning campaign (Figure 3, Table 2,
//! Figure 4) and DoH discovery.

use crate::experiments::ExperimentResult;
use crate::render::{heading, pct, TextTable};
use crate::study::Study;
use serde_json::json;

/// Figure 3: open DoT resolvers identified by each scan, split by the
/// biggest providers.
pub fn figure3(study: &mut Study) -> ExperimentResult {
    let report = study.campaign().clone();
    let mut table = TextTable::new(vec![
        "Scan date",
        "Port-853 open",
        "Open DoT resolvers",
        "Providers",
        "Top-5 provider share",
        "In public lists",
    ]);
    for epoch in &report.epochs {
        table.row(vec![
            epoch.date.to_string(),
            epoch.stats.open.to_string(),
            epoch.open_resolvers.to_string(),
            epoch.provider_count().to_string(),
            pct(epoch.top_provider_share(5)),
            epoch.in_public_list.to_string(),
        ]);
    }
    let last = report.epochs.last().expect("ran at least one epoch");
    let mut providers: Vec<(&String, &usize)> = last.by_provider.iter().collect();
    providers.sort_by(|a, b| b.1.cmp(a.1));
    let mut top = TextTable::new(vec!["Provider (final scan)", "Resolver addresses"]);
    for (name, count) in providers.iter().take(8) {
        top.row(vec![name.to_string(), count.to_string()]);
    }
    let rendered = format!(
        "{}{}\nLargest providers at the final scan:\n{}",
        heading("Figure 3 — Open DoT resolvers identified by each scan"),
        table.render(),
        top.render()
    );
    ExperimentResult {
        id: "figure3",
        title: "Open DoT resolvers per scan",
        rendered,
        json: json!({
            "epochs": report
                .epochs
                .iter()
                .map(|e| json!({
                    "date": e.date.to_string(),
                    "port_open": e.stats.open,
                    "open_resolvers": e.open_resolvers,
                    "providers": e.provider_count(),
                    "top5_share": e.top_provider_share(5),
                }))
                .collect::<Vec<_>>(),
        }),
    }
}

/// Table 2: top countries of open DoT resolvers, first vs last scan.
pub fn table2(study: &mut Study) -> ExperimentResult {
    let report = study.campaign().clone();
    let growth = report.country_growth();
    let mut table = TextTable::new(vec!["CC", "First scan", "Final scan", "Growth"]);
    for (cc, first, last, pct_growth) in growth.iter().take(10) {
        table.row(vec![
            cc.clone(),
            first.to_string(),
            last.to_string(),
            format!("{pct_growth:+.0}%"),
        ]);
    }
    let rendered = format!(
        "{}{}",
        heading("Table 2 — Top countries of open DoT resolvers"),
        table.render()
    );
    ExperimentResult {
        id: "table2",
        title: "DoT resolvers by country",
        rendered,
        json: json!(growth
            .iter()
            .take(12)
            .map(|(cc, a, b, g)| json!({"cc": cc, "first": a, "last": b, "growth_pct": g}))
            .collect::<Vec<_>>()),
    }
}

/// Figure 4: providers of open DoT resolvers and their certificate health.
pub fn figure4(study: &mut Study) -> ExperimentResult {
    let report = study.campaign().clone();
    let mut table = TextTable::new(vec![
        "Scan date",
        "Providers",
        "w/ invalid cert",
        "Invalid %",
        "Single-address %",
    ]);
    for epoch in &report.epochs {
        let providers = epoch.provider_count().max(1);
        table.row(vec![
            epoch.date.to_string(),
            epoch.provider_count().to_string(),
            epoch.providers_with_invalid.to_string(),
            pct(epoch.providers_with_invalid as f64 / providers as f64),
            pct(epoch.single_address_providers as f64 / providers as f64),
        ]);
    }
    let last = report.epochs.last().expect("ran");
    let certs = last.certs;
    let rendered = format!(
        "{}{}\nCertificates at the final scan: {} valid, {} expired, {} self-signed, {} broken chains (paper: 27/67/28)\nAnswer-validation failures (dnsfilter-style fixed answers): {} resolvers\n",
        heading("Figure 4 — Providers of open DoT resolvers"),
        table.render(),
        certs.valid,
        certs.expired,
        certs.self_signed,
        certs.broken_chain,
        last.wrong_answer_resolvers.len(),
    );
    ExperimentResult {
        id: "figure4",
        title: "Provider certificate health",
        rendered,
        json: json!({
            "final": {
                "providers": last.provider_count(),
                "providers_invalid": last.providers_with_invalid,
                "certs": {
                    "valid": certs.valid,
                    "expired": certs.expired,
                    "self_signed": certs.self_signed,
                    "broken_chain": certs.broken_chain,
                },
                "single_address_providers": last.single_address_providers,
                "wrong_answer_resolvers": last.wrong_answer_resolvers.len(),
            }
        }),
    }
}

/// §3.1's second half: DoH discovery from the URL corpus.
pub fn doh_discovery(study: &mut Study) -> ExperimentResult {
    let source = study.world.scanner_sources[0];
    let corpus = study.world.corpus.urls.clone();
    let apex = study.world.probe.apex.to_string();
    let apex = apex.trim_end_matches('.').to_string();
    let known = study.world.known_doh_list.clone();
    let store = study.world.trust_store.clone();
    let now = study.world.epoch();
    let bootstrap = study.world.bootstrap_resolver;
    let expected = study.world.probe.expected_a;
    let report = doe_scanner::discover_doh(
        &mut study.world.net,
        source,
        &corpus,
        bootstrap,
        &apex,
        expected,
        &known,
        &store,
        now,
    );
    let mut table = TextTable::new(vec!["Discovered DoH service", "In public list"]);
    let known_hosts: Vec<String> = known.iter().map(|t| t.host().to_string()).collect();
    for t in &report.services {
        table.row(vec![
            t.to_string(),
            if known_hosts.contains(&t.host().to_string()) {
                "yes".to_string()
            } else {
                "NEW".to_string()
            },
        ]);
    }
    let rendered = format!(
        "{}corpus URLs      : {}\ncandidates (grep): {}   (paper: 61)\nvalidated URLs   : {}\nservices         : {}   (paper: 17)\nbeyond known list: {}   (paper: 2)\n\n{}",
        heading("DoH discovery from the URL corpus (§3.1)"),
        report.corpus_size,
        report.candidates,
        report.valid_urls,
        report.services.len(),
        report.beyond_known_list.len(),
        table.render()
    );
    ExperimentResult {
        id: "doh-discovery",
        title: "DoH service discovery",
        rendered,
        json: json!({
            "corpus": report.corpus_size,
            "candidates": report.candidates,
            "valid_urls": report.valid_urls,
            "services": report.services.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
            "beyond_known": report
                .beyond_known_list
                .iter()
                .map(|t| t.host().to_string())
                .collect::<Vec<_>>(),
        }),
    }
}
