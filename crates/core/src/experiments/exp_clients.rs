//! Section 4 experiments: the client-side usability study
//! (Tables 3-7, Figures 9-10).

use crate::experiments::ExperimentResult;
use crate::render::{heading, ms, pct, TextTable};
use crate::study::Study;
use doe_vantage::performance::fresh_connection_test;
use doe_vantage::reachability::TransportKind;
use netsim::sched::SchedEvent;
use serde_json::json;

/// Table 3: the vantage-point datasets.
pub fn table3(study: &mut Study) -> ExperimentResult {
    let pr = &study.world.proxyrack;
    let zh = &study.world.zhima;
    let perf_clients: Vec<_> = pr.perf_subset().collect();
    let perf_countries: std::collections::BTreeSet<_> =
        perf_clients.iter().map(|c| c.country).collect();
    let perf_ases: std::collections::BTreeSet<_> = perf_clients.iter().map(|c| c.asn).collect();

    let mut table = TextTable::new(vec![
        "Test",
        "Platform",
        "# Distinct IP",
        "# Country",
        "# AS",
    ]);
    table.row(vec![
        "Reachability".to_string(),
        "ProxyRack (Global)".to_string(),
        pr.clients.len().to_string(),
        pr.country_count().to_string(),
        pr.as_count().to_string(),
    ]);
    table.row(vec![
        "Reachability".to_string(),
        "Zhima (Censored)".to_string(),
        zh.clients.len().to_string(),
        zh.country_count().to_string(),
        zh.as_count().to_string(),
    ]);
    table.row(vec![
        "Performance".to_string(),
        "ProxyRack (Global)".to_string(),
        perf_clients.len().to_string(),
        perf_countries.len().to_string(),
        perf_ases.len().to_string(),
    ]);
    let rendered = format!(
        "{}{}\n(paper: 29,622 / 166 / 2,597; 85,112 / 1 / 5; 8,257 / 132 / 1,098 — counts scale with --scale={})\n",
        heading("Table 3 — Evaluation of the client-side dataset"),
        table.render(),
        study.config.scale,
    );
    ExperimentResult {
        id: "table3",
        title: "Vantage datasets",
        rendered,
        json: json!({
            "proxyrack": {"ips": pr.clients.len(), "countries": pr.country_count(), "ases": pr.as_count()},
            "zhima": {"ips": zh.clients.len(), "countries": zh.country_count(), "ases": zh.as_count()},
            "performance": {"ips": perf_clients.len(), "countries": perf_countries.len(), "ases": perf_ases.len()},
        }),
    }
}

/// Table 4: reachability results per resolver × transport × platform.
pub fn table4(study: &mut Study) -> ExperimentResult {
    let global = study.reach_global().clone();
    let censored = study.reach_cn().clone();
    let mut table = TextTable::new(vec![
        "Platform",
        "Resolver",
        "Transport",
        "Correct",
        "Incorrect",
        "Failed",
    ]);
    let mut payload = Vec::new();
    for (platform, report) in [
        ("ProxyRack (Global)", &global),
        ("Zhima (Censored, CN)", &censored),
    ] {
        for (resolver, row) in &report.matrix {
            for transport in [TransportKind::Dns, TransportKind::Dot, TransportKind::Doh] {
                let Some(counts) = row.get(&transport) else {
                    if transport == TransportKind::Dot && resolver == "Google" {
                        table.row(vec![
                            platform.to_string(),
                            resolver.clone(),
                            "DoT".to_string(),
                            "n/a".to_string(),
                            "n/a".to_string(),
                            "n/a (not announced)".to_string(),
                        ]);
                    }
                    continue;
                };
                let (c, i, f) = counts.rates();
                table.row(vec![
                    platform.to_string(),
                    resolver.clone(),
                    transport.to_string(),
                    pct(c),
                    pct(i),
                    pct(f),
                ]);
                payload.push(json!({
                    "platform": platform,
                    "resolver": resolver,
                    "transport": transport.to_string(),
                    "correct": c, "incorrect": i, "failed": f,
                    "n": counts.total(),
                }));
            }
        }
    }
    let rendered = format!(
        "{}{}",
        heading("Table 4 — Reachability test results of public resolvers"),
        table.render()
    );
    ExperimentResult {
        id: "table4",
        title: "Reachability",
        rendered,
        json: json!(payload),
    }
}

/// Table 5: ports open on 1.1.1.1 as probed from failing clients.
pub fn table5(study: &mut Study) -> ExperimentResult {
    let report = study.reach_global().clone();
    let (hist, none) = report.port_histogram();
    let mut table = TextTable::new(vec!["Port", "# Clients", "Notes"]);
    table.row(vec![
        "None".to_string(),
        none.to_string(),
        "internal routing / blackholing".to_string(),
    ]);
    for (port, count) in &hist {
        let note = match port {
            22 => "SSH (routers)",
            23 => "Telnet (routers)",
            53 => "DNS (router resolvers — answer 'Incorrectly')",
            67 => "DHCP relays",
            80 => "HTTP (management pages; see titles below)",
            123 => "NTP appliances",
            139 => "SMB boxes",
            161 => "SNMP appliances",
            179 => "BGP routers",
            443 => "HTTPS (modems / portals)",
            _ => "",
        };
        table.row(vec![port.to_string(), count.to_string(), note.to_string()]);
    }
    let mut titles: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut miners = 0usize;
    for f in &report.forensics {
        if let Some(t) = &f.page_title {
            *titles.entry(t.clone()).or_default() += 1;
        }
        if f.coinminer {
            miners += 1;
        }
    }
    let mut pages = TextTable::new(vec!["Webpage title on 1.1.1.1", "# Clients"]);
    for (t, n) in &titles {
        pages.row(vec![t.clone(), n.to_string()]);
    }
    let rendered = format!(
        "{}failing Cloudflare-DoT clients probed: {}\n\n{}\n{}\ncrypto-hijacked (coin-mining) pages: {} clients (paper: 12)\n",
        heading("Table 5 — Ports open on 1.1.1.1, probed from failing clients"),
        report.forensics.len(),
        table.render(),
        pages.render(),
        miners,
    );
    ExperimentResult {
        id: "table5",
        title: "1.1.1.1 conflict forensics",
        rendered,
        json: json!({
            "probed_clients": report.forensics.len(),
            "none": none,
            "ports": hist,
            "page_titles": titles,
            "coinminers": miners,
        }),
    }
}

/// Table 6: clients affected by TLS interception.
pub fn table6(study: &mut Study) -> ExperimentResult {
    let report = study.reach_global().clone();
    let mut table = TextTable::new(vec![
        "Client (/24)",
        "Country",
        "AS",
        "CA common name",
        "443",
        "853",
    ]);
    for i in &report.interceptions {
        let block = netsim::Netblock::slash24(i.client);
        table.row(vec![
            format!("{}.*", block.network().to_string().trim_end_matches(".0")),
            i.country.clone(),
            format!("AS{}", i.asn),
            i.ca_cn.clone(),
            if i.port_443 { "✓" } else { "" }.to_string(),
            if i.port_853 { "✓" } else { "" }.to_string(),
        ]);
    }
    let only_443 = report
        .interceptions
        .iter()
        .filter(|i| i.port_443 && !i.port_853)
        .count();
    let rendered = format!(
        "{}{}\nintercepted clients: {} (paper: 17); 443-only devices: {} (paper: 3)\nOpportunistic DoT proceeded on every intercepted path — queries were visible to the devices.\n",
        heading("Table 6 — Example clients affected by TLS interception"),
        table.render(),
        report.interceptions.len(),
        only_443,
    );
    ExperimentResult {
        id: "table6",
        title: "TLS interception",
        rendered,
        json: json!(report
            .interceptions
            .iter()
            .map(|i| json!({
                "country": i.country,
                "asn": i.asn,
                "ca": i.ca_cn,
                "port_443": i.port_443,
                "port_853": i.port_853,
            }))
            .collect::<Vec<_>>()),
    }
}

/// Figure 9: per-country latency overhead with reused connections.
pub fn figure9(study: &mut Study) -> ExperimentResult {
    let report = study.performance().clone();
    let mut table = TextTable::new(vec![
        "Country",
        "Clients",
        "DoT mean",
        "DoT median",
        "DoH mean",
        "DoH median",
    ]);
    for c in report.per_country.iter().take(20) {
        table.row(vec![
            c.country.clone(),
            c.clients.to_string(),
            ms(c.dot_mean_ms),
            ms(c.dot_median_ms),
            ms(c.doh_mean_ms),
            ms(c.doh_median_ms),
        ]);
    }
    let rendered = format!(
        "{}{}\nglobal: DoT {} mean / {} median; DoH {} mean / {} median (paper: +5/+9ms DoT, +8/+6ms DoH)\nclients skipped (rotation/broken paths): {}\n",
        heading("Figure 9 — Query performance per country (reused connections)"),
        table.render(),
        ms(report.global_dot.0),
        ms(report.global_dot.1),
        ms(report.global_doh.0),
        ms(report.global_doh.1),
        report.skipped,
    );
    ExperimentResult {
        id: "figure9",
        title: "Per-country overhead",
        rendered,
        json: json!({
            "global_dot_mean_ms": report.global_dot.0,
            "global_dot_median_ms": report.global_dot.1,
            "global_doh_mean_ms": report.global_doh.0,
            "global_doh_median_ms": report.global_doh.1,
            "per_country": report
                .per_country
                .iter()
                .map(|c| json!({
                    "cc": c.country, "clients": c.clients,
                    "dot_mean_ms": c.dot_mean_ms, "dot_median_ms": c.dot_median_ms,
                    "doh_mean_ms": c.doh_mean_ms, "doh_median_ms": c.doh_median_ms,
                }))
                .collect::<Vec<_>>(),
        }),
    }
}

/// Figure 10: the per-client scatter of Do53 vs encrypted latency.
pub fn figure10(study: &mut Study) -> ExperimentResult {
    let report = study.performance().clone();
    let n = report.observations.len().max(1);
    let near = |delta: f64| {
        let dot = report
            .observations
            .iter()
            .filter(|o| o.dot_overhead().abs() <= delta)
            .count() as f64
            / n as f64;
        let doh = report
            .observations
            .iter()
            .filter(|o| o.doh_overhead().abs() <= delta)
            .count() as f64
            / n as f64;
        (dot, doh)
    };
    let (dot25, doh25) = near(25.0);
    let (dot50, doh50) = near(50.0);
    let rendered = format!(
        "{}clients plotted        : {}\nwithin ±25ms of y=x    : DoT {}, DoH {}\nwithin ±50ms of y=x    : DoT {}, DoH {}\n(the full point set is in the JSON artifact; the paper's Figure 10 shows the same near-diagonal mass)\n",
        heading("Figure 10 — Query time of DNS vs DoT/DoH per client"),
        n,
        pct(dot25),
        pct(doh25),
        pct(dot50),
        pct(doh50),
    );
    ExperimentResult {
        id: "figure10",
        title: "Latency scatter",
        rendered,
        json: json!({
            "points": report
                .observations
                .iter()
                .map(|o| json!({
                    "cc": o.country,
                    "dns_ms": o.dns_ms,
                    "dot_ms": o.dot_ms,
                    "doh_ms": o.doh_ms,
                }))
                .collect::<Vec<_>>(),
            "near25": {"dot": dot25, "doh": doh25},
            "near50": {"dot": dot50, "doh": doh50},
        }),
    }
}

/// Population-scale stress leg: the event-driven stub-client fleet.
///
/// Not a paper figure — an engineering experiment demonstrating that the
/// discrete-event scheduler interleaves `--clients N` (paper config: 1M)
/// concurrent stub resolvers in one run, with connection reuse, timeouts
/// and retransmits all delivered as scheduled events.
pub fn stub_scale(study: &mut Study) -> ExperimentResult {
    let report = study.stub_population().clone();
    let t = &report.totals;

    let mut profiles = TextTable::new(vec![
        "Profile",
        "Clients",
        "Queries",
        "Answered",
        "Failed",
        "Reused",
        "Mean latency",
    ]);
    for p in &report.profiles {
        let mean_ms = if p.stats.answered > 0 {
            p.stats.latency_sum_us as f64 / p.stats.answered as f64 / 1_000.0
        } else {
            0.0
        };
        profiles.row(vec![
            p.profile.to_string(),
            p.clients.to_string(),
            p.stats.queries.to_string(),
            p.stats.answered.to_string(),
            p.stats.failed.to_string(),
            p.stats.reused.to_string(),
            ms(mean_ms),
        ]);
    }

    let mut sched = TextTable::new(vec!["Event kind", "Scheduled", "Fired"]);
    for (i, name) in SchedEvent::KIND_NAMES.iter().enumerate() {
        sched.row(vec![
            name.to_string(),
            report.sched.scheduled[i].to_string(),
            report.sched.fired[i].to_string(),
        ]);
    }

    let rendered = format!(
        "{}clients               : {}\nqueries               : {} ({} answered, {} failed)\ntimeouts / retransmits : {} / {}\nidle closes / reuses   : {} / {}\npeak outstanding/client: {}\n\n{}\n{}",
        heading("Stub scale — 1M-class event-driven client population"),
        report.clients,
        t.queries,
        t.answered,
        t.failed,
        t.timeouts,
        t.retransmits,
        t.idle_closes,
        t.reused,
        report.sched.peak_outstanding,
        profiles.render(),
        sched.render(),
    );
    ExperimentResult {
        id: "stub-scale",
        title: "Event-driven client fleet",
        rendered,
        json: json!({
            "clients": report.clients,
            "totals": {
                "queries": t.queries,
                "answered": t.answered,
                "failed": t.failed,
                "timeouts": t.timeouts,
                "retransmits": t.retransmits,
                "idle_closes": t.idle_closes,
                "reused": t.reused,
                "latency_sum_us": t.latency_sum_us,
            },
            "profiles": report
                .profiles
                .iter()
                .map(|p| json!({
                    "profile": p.profile,
                    "clients": p.clients,
                    "queries": p.stats.queries,
                    "answered": p.stats.answered,
                    "failed": p.stats.failed,
                    "reused": p.stats.reused,
                }))
                .collect::<Vec<_>>(),
            "sched": {
                "kinds": SchedEvent::KIND_NAMES,
                "scheduled": report.sched.scheduled,
                "fired": report.sched.fired,
                "peak_outstanding": report.sched.peak_outstanding,
            },
        }),
    }
}

/// Table 7: fresh-connection latency from four controlled vantages.
pub fn table7(study: &mut Study) -> ExperimentResult {
    let iterations = study.config.fresh_iterations;
    let rows = fresh_connection_test(&mut study.world, iterations);
    let mut table = TextTable::new(vec![
        "Vantage",
        "DNS/TCP (s)",
        "DoT (s)",
        "DoT overhead",
        "DoH (s)",
        "DoH overhead",
    ]);
    for r in &rows {
        table.row(vec![
            r.vantage.clone(),
            format!("{:.3}", r.dns_s),
            format!("{:.3}", r.dot_s),
            ms(r.dot_overhead_ms()),
            format!("{:.3}", r.doh_s),
            ms(r.doh_overhead_ms()),
        ]);
    }
    let rendered = format!(
        "{}{}\n({} fresh connections per protocol per vantage; paper's medians of 200: DoT overheads 77ms US → 470ms HK)\n",
        heading("Table 7 — Performance without connection reuse"),
        table.render(),
        iterations,
    );
    ExperimentResult {
        id: "table7",
        title: "Fresh-connection cost",
        rendered,
        json: json!(rows
            .iter()
            .map(|r| json!({
                "vantage": r.vantage,
                "dns_s": r.dns_s,
                "dot_s": r.dot_s,
                "doh_s": r.doh_s,
                "dot_overhead_ms": r.dot_overhead_ms(),
                "doh_overhead_ms": r.doh_overhead_ms(),
            }))
            .collect::<Vec<_>>()),
    }
}
