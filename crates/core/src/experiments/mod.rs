//! One runner per table/figure. Each returns an [`ExperimentResult`] with
//! a rendered text block (the same rows/series the paper prints) and a
//! machine-readable JSON payload for EXPERIMENTS.md.

pub mod exp_clients;
pub mod exp_privacy;
pub mod exp_protocols;
pub mod exp_servers;
pub mod exp_usage;

use crate::expectations::expectation;
use crate::study::Study;
use serde_json::Value;

/// A completed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (`table4`, `figure3`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered report block.
    pub rendered: String,
    /// Machine-readable results.
    pub json: Value,
}

impl ExperimentResult {
    /// Render with the paper expectation appended.
    pub fn with_expectation(&self) -> String {
        let mut out = self.rendered.clone();
        if let Some(exp) = expectation(self.id) {
            out.push_str(&format!("\npaper reported : {}\n", exp.paper));
            out.push_str(&format!("shape criterion: {}\n", exp.shape));
        }
        out
    }
}

/// Every experiment id, in report order.
pub const ALL_EXPERIMENTS: [&str; 22] = [
    "table1",
    "figure1",
    "figure2",
    "table8",
    "figure3",
    "table2",
    "figure4",
    "doh-discovery",
    "local-probe",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure9",
    "figure10",
    "table7",
    "figure11",
    "figure12",
    "figure13",
    "scandet",
    "stub-scale",
    "padding-leakage",
];

/// Run one experiment by id.
pub fn run(study: &mut Study, id: &str) -> Option<ExperimentResult> {
    match id {
        "table1" => Some(exp_protocols::table1()),
        "figure1" => Some(exp_protocols::figure1()),
        "figure2" => Some(exp_protocols::figure2()),
        "table8" => Some(exp_protocols::table8()),
        "local-probe" => Some(exp_protocols::local_probe(study)),
        "figure3" => Some(exp_servers::figure3(study)),
        "table2" => Some(exp_servers::table2(study)),
        "figure4" => Some(exp_servers::figure4(study)),
        "doh-discovery" => Some(exp_servers::doh_discovery(study)),
        "table3" => Some(exp_clients::table3(study)),
        "table4" => Some(exp_clients::table4(study)),
        "table5" => Some(exp_clients::table5(study)),
        "table6" => Some(exp_clients::table6(study)),
        "figure9" => Some(exp_clients::figure9(study)),
        "figure10" => Some(exp_clients::figure10(study)),
        "table7" => Some(exp_clients::table7(study)),
        "figure11" => Some(exp_usage::figure11(study)),
        "figure12" => Some(exp_usage::figure12(study)),
        "figure13" => Some(exp_usage::figure13(study)),
        "scandet" => Some(exp_usage::scandet(study)),
        "stub-scale" => Some(exp_clients::stub_scale(study)),
        "padding-leakage" => Some(exp_privacy::padding_leakage(study)),
        _ => None,
    }
}
