//! Section 2 artefacts: Table 1, Figure 1, Figure 2, Table 8, and the
//! §3.1 local-resolver probe.

use crate::compare::{implementation_survey, protocol_profiles, timeline_events, CRITERIA};
use crate::experiments::ExperimentResult;
use crate::render::{heading, pct, TextTable};
use crate::study::Study;
use dnswire::{builder, Message, RecordType};
use httpsim::{base64url_encode, Request, UriTemplate};
use serde_json::json;

/// Table 1: the protocol comparison matrix.
pub fn table1() -> ExperimentResult {
    let profiles = protocol_profiles();
    let mut header = vec!["Category".to_string(), "Criterion".to_string()];
    header.extend(profiles.iter().map(|p| p.name.to_string()));
    let mut table = TextTable::new(header);
    for (i, (category, criterion)) in CRITERIA.iter().enumerate() {
        let mut row = vec![category.to_string(), criterion.to_string()];
        for p in &profiles {
            row.push(p.grades()[i].to_string());
        }
        table.row(row);
    }
    let rendered = format!(
        "{}{}",
        heading("Table 1 — Comparison of DNS-over-Encryption protocols"),
        table.render()
    );
    let json = json!({
        "protocols": profiles.iter().map(|p| p.name).collect::<Vec<_>>(),
        "criteria": CRITERIA.iter().map(|(c, k)| format!("{c}: {k}")).collect::<Vec<_>>(),
        "grades": profiles
            .iter()
            .map(|p| p.grades().iter().map(|g| g.to_string()).collect::<Vec<_>>())
            .collect::<Vec<_>>(),
    });
    ExperimentResult {
        id: "table1",
        title: "Protocol comparison",
        rendered,
        json,
    }
}

/// Figure 1: the DNS-privacy timeline.
pub fn figure1() -> ExperimentResult {
    let events = timeline_events();
    let mut table = TextTable::new(vec!["Year", "Kind", "Event"]);
    for e in &events {
        table.row(vec![
            e.year.to_string(),
            e.kind.to_string(),
            e.event.to_string(),
        ]);
    }
    ExperimentResult {
        id: "figure1",
        title: "DNS privacy timeline",
        rendered: format!(
            "{}{}",
            heading("Figure 1 — Timeline of important DNS privacy events"),
            table.render()
        ),
        json: json!(events
            .iter()
            .map(|e| json!({"year": e.year, "kind": e.kind, "event": e.event}))
            .collect::<Vec<_>>()),
    }
}

/// Figure 2: the two DoH request forms, as real bytes.
pub fn figure2() -> ExperimentResult {
    let query = builder::query(0, "example.com", RecordType::A).expect("static query");
    let wire = query.encode().expect("encodes");
    let template =
        UriTemplate::parse("https://dns.example.com/dns-query{?dns}").expect("static template");

    let get = Request::get(&template.expand_get(&base64url_encode(&wire)))
        .with_header("Host", "dns.example.com")
        .with_header("Accept", "application/dns-message");
    let post = Request::post(
        &template.post_target(),
        "application/dns-message",
        wire.clone(),
    )
    .with_header("Host", "dns.example.com")
    .with_header("Accept", "application/dns-message");

    // Round-trip proof: both forms carry the same query.
    let get_bytes = get.encode();
    let parsed_get = Request::decode(&get_bytes).expect("get parses");
    let recovered = httpsim::base64url_decode(parsed_get.query_param("dns").expect("dns param"))
        .expect("decodes");
    let get_msg = Message::decode(&recovered).expect("query");
    assert_eq!(get_msg.questions, query.questions);
    assert_eq!(get_msg.id(), query.id());
    let parsed_post = Request::decode(&post.encode()).expect("post parses");
    let post_msg = Message::decode(&parsed_post.body).expect("query");
    assert_eq!(post_msg.questions, query.questions);

    let get_text = String::from_utf8_lossy(&get_bytes).to_string();
    let rendered = format!(
        "{}Using GET:\n{}\nUsing POST (wire-format body of {} bytes):\n{}\n\nboth forms decode back to the A-type query for example.com\n",
        heading("Figure 2 — The two DoH request forms"),
        get_text.trim_end(),
        wire.len(),
        String::from_utf8_lossy(&post.encode()[..post.encode().len() - wire.len()]).trim_end(),
    );
    ExperimentResult {
        id: "figure2",
        title: "DoH request forms",
        rendered,
        json: json!({
            "get_target": parsed_get.target,
            "post_body_len": wire.len(),
            "round_trip_ok": true,
        }),
    }
}

/// Table 8: the implementation survey.
pub fn table8() -> ExperimentResult {
    let rows = implementation_survey();
    let mut table = TextTable::new(vec![
        "Category", "Name", "DoT", "DoH", "DNSCrypt", "DNSSEC", "QMin",
    ]);
    let mark = |b: bool| if b { "✓" } else { "" };
    for r in &rows {
        table.row(vec![
            r.category.to_string(),
            r.name.to_string(),
            mark(r.dot).to_string(),
            mark(r.doh).to_string(),
            mark(r.dnscrypt).to_string(),
            mark(r.dnssec).to_string(),
            mark(r.qmin).to_string(),
        ]);
    }
    let dot_count = rows.iter().filter(|r| r.dot).count();
    let doh_count = rows.iter().filter(|r| r.doh).count();
    ExperimentResult {
        id: "table8",
        title: "Implementation survey",
        rendered: format!(
            "{}{}\nDoT implementations: {dot_count}; DoH: {doh_count}; DoQ/DoDTLS: 0 (none exist)\n",
            heading("Table 8 — Current implementations of DoE (May 1, 2019)"),
            table.render()
        ),
        json: json!({
            "rows": rows.len(),
            "dot": dot_count,
            "doh": doh_count,
            "doq": 0,
            "dodtls": 0,
        }),
    }
}

/// §3.1: the RIPE-Atlas-style ISP local-resolver DoT probe.
pub fn local_probe(study: &mut Study) -> ExperimentResult {
    let probes = study.world.atlas.clone();
    let apex = study.world.probe.apex.to_string();
    let apex = apex.trim_end_matches('.').to_string();
    let store = study.world.trust_store.clone();
    let now = study.world.epoch();
    let report =
        doe_scanner::atlas::local_resolver_probe(&mut study.world.net, &probes, &apex, &store, now);
    let rendered = format!(
        "{}probes           : {}\nexcluded (public): {}\nDoT-capable      : {}\nsuccess rate     : {}   (paper: 24/6,655 = 0.3%)\n",
        heading("Local-resolver DoT probe (RIPE-Atlas style, §3.1)"),
        report.total_probes,
        report.excluded_public,
        report.dot_capable,
        pct(report.success_rate()),
    );
    ExperimentResult {
        id: "local-probe",
        title: "ISP local-resolver DoT support",
        rendered,
        json: json!({
            "total": report.total_probes,
            "excluded_public": report.excluded_public,
            "dot_capable": report.dot_capable,
            "rate": report.success_rate(),
        }),
    }
}
