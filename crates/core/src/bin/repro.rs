//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                       # everything, quick scale
//! repro --paper all               # full paper scale (use --release!)
//! repro --scale 0.1 table4        # one experiment at a custom scale
//! repro --seed 7 figure3 table2   # several experiments, custom seed
//! repro --json results/ all      # also write one JSON artifact per experiment
//! repro --metrics results/metrics.json table1   # export the telemetry snapshot
//! repro list                      # available experiment ids
//! ```

use doe_core::experiments::{self, ALL_EXPERIMENTS};
use doe_core::{Study, StudyConfig};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--paper] [--scale X] [--seed N] [--epochs N] [--shards N] [--clients N] [--trace] [--json DIR] [--metrics PATH] <experiment...|all|list>"
    );
    eprintln!("  --shards N   worker threads for sharded stages (default: available cores; results identical for any N)");
    eprintln!("  --clients N  concurrent event-driven stub clients in the stub-scale leg (default: 20000, --paper: 1000000)");
    eprintln!("  --trace      record network events and print per-shard probe counters");
    eprintln!(
        "  --metrics PATH  write the telemetry snapshot as JSON and print a per-stage breakdown"
    );
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut config = StudyConfig::quick(2019);
    let mut json_dir: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => config = StudyConfig::paper(config.seed),
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                config.scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                config.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--epochs" => {
                let v = it.next().unwrap_or_else(|| usage());
                config.epochs = v.parse().unwrap_or_else(|_| usage());
            }
            "--shards" => {
                let v = it.next().unwrap_or_else(|| usage());
                config.shards = v.parse().unwrap_or_else(|_| usage());
            }
            "--clients" => {
                let v = it.next().unwrap_or_else(|| usage());
                config.sim_clients = v.parse().unwrap_or_else(|_| usage());
            }
            "--trace" => config.trace_capacity = 4096,
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                metrics_path = Some(it.next().unwrap_or_else(|| usage()));
            }
            other if other.starts_with('-') => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.iter().any(|t| t == "list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if targets.iter().any(|t| t == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        targets.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(id) {
            eprintln!("unknown experiment: {id}");
            usage();
        }
    }

    eprintln!(
        "building world: seed={} scale={} epochs={} shards={} (full sweep: {})",
        config.seed,
        config.scale,
        config.epochs,
        config.effective_shards(),
        config.full_sweep
    );
    let trace_on = config.trace_capacity > 0;
    let started = std::time::Instant::now();
    let mut study = Study::new(config);
    eprintln!("world ready in {:.1}s", started.elapsed().as_secs_f64());

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    for id in ids {
        let t0 = std::time::Instant::now();
        let result = experiments::run(&mut study, id).expect("id validated above");
        println!("{}", result.with_expectation());
        eprintln!("[{id} took {:.1}s]", t0.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create artifact");
            let body = serde_json::to_string_pretty(&result.json).expect("serialise artifact");
            f.write_all(body.as_bytes()).expect("write artifact");
            eprintln!("[wrote {path}]");
        }
    }

    if let Some(path) = &metrics_path {
        let snapshot = study.world.net.metrics().snapshot();
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create metrics dir");
            }
        }
        let mut body = serde_json::to_string_pretty(&snapshot).expect("serialise metrics");
        body.push('\n');
        std::fs::write(path, body).expect("write metrics");
        eprintln!("[wrote {path}]");
        print!("{}", netsim::telemetry::render_breakdown(&snapshot));
    }

    if trace_on {
        let net = &study.world.net;
        let total = net.shard_stats();
        eprintln!(
            "trace: {} probes total ({} open, {} closed, {} filtered)",
            total.probes, total.open, total.closed, total.filtered
        );
        for (shard, stats) in net.shard_breakdown() {
            eprintln!(
                "trace: shard {shard}: {} probes ({} open, {} closed, {} filtered)",
                stats.probes, stats.open, stats.closed, stats.filtered
            );
        }
        let log = net.log();
        eprintln!(
            "trace: {} events retained (cap 4096), newest last",
            log.len()
        );
        for event in log.events().rev().take(10).rev() {
            eprintln!(
                "trace: {} -> {}:{} {:?} ({}us)",
                event.src,
                event.dst,
                event.port,
                event.kind,
                event.elapsed.as_micros()
            );
        }
    }
}
