//! The paper's reported values, one record per experiment, for the
//! paper-vs-measured comparison in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// One expectation entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Expectation {
    /// Experiment id (`table4`, `figure3`, ...).
    pub id: &'static str,
    /// What the paper reports (the headline values).
    pub paper: &'static str,
    /// What "shape holds" means for this experiment.
    pub shape: &'static str,
}

/// The full registry.
pub fn all_expectations() -> Vec<Expectation> {
    vec![
        Expectation {
            id: "table1",
            paper: "5 protocols × 10 criteria; DoT/DoH lead on maturity, DoQ/DoDTLS unimplemented, DNSCrypt non-standard",
            shape: "grade matrix matches the published table cell-for-cell",
        },
        Expectation {
            id: "figure1",
            paper: "timeline 2009 (DNSCurve) → 2018 (RFC 8484, DoQ draft)",
            shape: "chronological ordering with both standards present",
        },
        Expectation {
            id: "figure2",
            paper: "DoH GET carries base64url dns=, POST carries the wire message",
            shape: "byte-level request forms decode back to the same query",
        },
        Expectation {
            id: "figure3",
            paper: ">1.5K open DoT resolvers per scan, rising across Feb-May 2019; most addresses owned by a few providers",
            shape: "per-epoch totals ≥1.4K, monotone-ish growth, top-5 provider share > 60%",
        },
        Expectation {
            id: "table2",
            paper: "IE 456→951 (+108%), CN 257→40 (-84%), US 100→531 (+431%), BR +122%, RU +135%",
            shape: "same winners/losers and growth signs; magnitudes within a few %",
        },
        Expectation {
            id: "figure4",
            paper: "~25% of providers hold ≥1 invalid cert; May 1: 122 invalid resolvers of 62 providers (27 expired / 67 self-signed / 28 chains); 70% single-address providers",
            shape: "invalid-provider fraction 15-40%, bucket ordering self-signed > chains ≈ expired",
        },
        Expectation {
            id: "doh-discovery",
            paper: "61 candidate URLs from the corpus → 17 public DoH services, 2 beyond the known list",
            shape: "exactly 61 candidates, ≥17 services, the 2 unlisted hosts found",
        },
        Expectation {
            id: "table3",
            paper: "ProxyRack 29,622 IPs / 166 countries / 2,597 ASes; Zhima 85,112 / 1 / 5; perf subset 8,257 / 132 / 1,098",
            shape: "same structure; counts scale with --scale",
        },
        Expectation {
            id: "table4",
            paper: "Cloudflare: DNS 16.46% failed vs DoT 1.14% vs DoH 0.05%; Google DoH blocked in CN (99.99%); Quad9 DoH 13.09% incorrect; self-built ≥99.9% everywhere",
            shape: "ordering and ratios of failure/incorrect rates per cell",
        },
        Expectation {
            id: "table5",
            paper: "ports open on 1.1.1.1 from failing clients: none 155, 80:131, 443:93, 53:79, 23:40, 22:28, 179:23 …",
            shape: "port histogram dominated by none/80/443/53; router/modem pages identified; ≥1 coinminer",
        },
        Expectation {
            id: "table6",
            paper: "17 intercepted clients; CAs incl. SonicWall Firewall DPI-SSL; 3 devices 443-only; queries visible to interceptors",
            shape: "all planted interceptors recovered with CA names; 443-only split correct",
        },
        Expectation {
            id: "figure9",
            paper: "reused connections: DoT +5/+9ms (mean/median), DoH +8/+6ms; Indonesia above average; India DoH ~-99ms",
            shape: "global overheads single-digit-to-low-tens ms; ID positive outlier; IN negative for DoH",
        },
        Expectation {
            id: "figure10",
            paper: "per-client scatter hugs the y=x line for both DoT and DoH",
            shape: "≥80% of points within ±25ms of y=x",
        },
        Expectation {
            id: "table7",
            paper: "no reuse: DoT overhead 77ms (US) → 470ms (HK); DoH slightly above DoT",
            shape: "overhead grows with vantage distance; DoH ≥ DoT - jitter",
        },
        Expectation {
            id: "figure11",
            paper: "Cloudflare DoT flows 4,674 (Jul 2018) → 7,318 (Dec 2018), +56%; Quad9 fluctuates; DoT ≈ 3 orders below Do53",
            shape: "growth 40-75%; Quad9 non-monotone; ratio ≥ 100×",
        },
        Expectation {
            id: "figure12",
            paper: "top-5 /24s carry 44% of DoT traffic, top-20 60%; 96% of 5,623 netblocks active <1 week carrying 25%",
            shape: "concentration and churn fractions within ±10 points",
        },
        Expectation {
            id: "figure13",
            paper: "Google ≫ all; CleanBrowsing ×10 Sep 2018→Mar 2019 (200→1,915); mozilla.cloudflare rises with Firefox experiments; only 4 domains >10K lifetime",
            shape: "same dominance ordering and growth ratios",
        },
        Expectation {
            id: "table8",
            paper: "DoT/DoH quickly adopted by large resolvers & software; DoQ/DoDTLS zero implementations",
            shape: "survey matrix matches the appendix",
        },
        Expectation {
            id: "local-probe",
            paper: "24 of 6,655 RIPE Atlas probes (0.3%) reach a DoT-capable local resolver, after excluding public-resolver users",
            shape: "success rate < 5% and equal to deployment ground truth",
        },
        Expectation {
            id: "scandet",
            paper: "NetworkScan Mon raises no port-853 alerts for the DoT client networks",
            shape: "planted scanner flagged; zero false positives among clients",
        },
        Expectation {
            id: "stub-scale",
            paper: "n/a — engineering leg: the event-driven scheduler interleaves 1M concurrent stub clients in one run",
            shape: "≥1M clients at paper scale; exactly 1/64 of the fleet times out and retransmits; all four event kinds fire; report bit-identical for any --shards",
        },
        Expectation {
            id: "padding-leakage",
            paper: "n/a — §6 recommends RFC 8467 padding; FOCI '20 ('Padding Ain't Enough') shows message sequences still fingerprint destinations",
            shape: "k-NN ≫ random on unpadded flows; RFC 8467 blocks reduce but do not eliminate accuracy; shaping reduces further at measured bandwidth cost; JSON bit-identical for any --shards",
        },
    ]
}

/// Look up one expectation.
pub fn expectation(id: &str) -> Option<Expectation> {
    all_expectations().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_experiment() {
        let ids: Vec<&str> = all_expectations().iter().map(|e| e.id).collect();
        for required in [
            "table1",
            "figure1",
            "figure2",
            "figure3",
            "table2",
            "figure4",
            "doh-discovery",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure9",
            "figure10",
            "table7",
            "figure11",
            "figure12",
            "figure13",
            "table8",
            "local-probe",
            "scandet",
            "stub-scale",
            "padding-leakage",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
        assert_eq!(ids.len(), 22);
    }

    #[test]
    fn lookup_works() {
        assert!(expectation("table4").is_some());
        assert!(expectation("nope").is_none());
    }
}
