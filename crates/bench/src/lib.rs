//! # doe-bench — benchmark fixtures
//!
//! Shared fixture builders for the Criterion benches. Two bench binaries
//! live under `benches/`:
//!
//! * `substrates` — microbenchmarks of the building blocks (DNS codec,
//!   TLS handshake, NetFlow sampling, scan permutation, policy
//!   evaluation),
//! * `experiments` — one group per paper table/figure, timing the
//!   regeneration harness itself (cheap artefacts end-to-end; measured
//!   artefacts per unit of work on a pre-built world).

use worldgen::{World, WorldConfig};

/// A small world for measured benches (2% client scale, first scan date).
pub fn bench_world(seed: u64) -> World {
    World::build(WorldConfig::test_scale(seed))
}

/// A clean (unafflicted) client from the pool.
pub fn clean_client(world: &World) -> worldgen::ClientInfo {
    world
        .proxyrack
        .clients
        .iter()
        .find(|c| c.affliction == worldgen::Affliction::None)
        .expect("clean client")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let world = bench_world(1);
        assert!(world.proxyrack.clients.len() > 100);
        let c = clean_client(&world);
        assert_eq!(c.affliction, worldgen::Affliction::None);
    }
}
