//! Wall-clock scaling of the sharded SYN sweep: the same /17 target
//! space swept with 1, 2, 4 and 8 worker shards. Results are
//! bit-identical for every shard count (see `tests/shard_invariance.rs`);
//! this bench records what the parallelism buys in wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion};
use doe_scanner::sweep::AddressSpace;
use doe_scanner::syn_sweep_sharded;
use netsim::service::FnStreamService;
use netsim::{HostMeta, Netblock, Network, NetworkConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A /17 target space (32,768 addresses) with open DoT listeners on
/// every 256th host, plus the three scanner sources.
fn sweep_fixture() -> (Network, Vec<Ipv4Addr>, AddressSpace) {
    let mut net = Network::new(NetworkConfig::default(), 29);
    let sources: Vec<Ipv4Addr> = ["198.51.100.1", "198.51.100.2", "198.51.100.3"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    for &s in &sources {
        net.add_host(HostMeta::new(s));
    }
    let space = AddressSpace::new(vec![Netblock::new("10.128.0.0".parse().unwrap(), 17)]);
    for i in (0..space.len()).step_by(256) {
        let addr = space.addr(i);
        net.add_host(HostMeta::new(addr));
        net.bind_tcp(
            addr,
            853,
            Arc::new(FnStreamService::new(|_c, _p, d: &[u8]| d.to_vec(), "echo")),
        );
    }
    (net, sources, space)
}

fn bench_sweep_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let (mut net, sources, space) = sweep_fixture();
        group.bench_function(&format!("slash17_{shards}_shards"), |b| {
            b.iter(|| syn_sweep_sharded(&mut net, &sources, &space, 853, 2019, shards))
        });
    }
    group.finish();
}

/// The paper-scale datapoint: the full simulated address space — the
/// 2.5M-host junk bands plus every provider block, ~6.1M addresses —
/// swept end to end. One epoch of the real reproduction, not a scaled
/// fixture.
fn bench_full_scale_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_full_scale");
    group.sample_size(2);
    for shards in [1usize, 8] {
        let mut world = worldgen::World::build(worldgen::WorldConfig::default());
        let sources = world.scanner_sources.clone();
        let space = doe_scanner::campaign::full_space(&world);
        group.bench_function(&format!("full_space_{shards}_shards"), |b| {
            b.iter(|| syn_sweep_sharded(&mut world.net, &sources, &space, 853, 2019, shards))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_shards, bench_full_scale_sweep);
criterion_main!(benches);
