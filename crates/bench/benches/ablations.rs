//! Ablation benches: quantify the design choices the paper discusses by
//! toggling them and measuring *virtual* latency (reported via custom
//! measurements of wall time per simulated exchange, plus printed virtual
//! costs in the bench names' groups).
//!
//! These answer the paper's "why" questions with running code:
//! connection reuse (§4.3), session resumption (RFC 7858 §3.4), EDNS
//! padding (§2.2), TLS 1.2 vs 1.3 round trips (Table 7's regime), and
//! anycast vs unicast addressing (Finding 2.1's recommendation).

use criterion::{criterion_group, criterion_main, Criterion};
use dnswire::{builder, RecordType};
use doe_bench::{bench_world, clean_client};
use doe_protocols::dot::DotClient;
use tlssim::{DateStamp, TlsClientConfig};

fn now() -> DateStamp {
    DateStamp::from_ymd(2019, 2, 1)
}

/// Reused session vs a fresh session per query (the §4.3 comparison).
fn ablation_connection_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_connection_reuse");
    group.sample_size(20);
    let mut world = bench_world(31);
    let client = clean_client(&world);
    let resolver = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
    let store = world.trust_store.clone();

    group.bench_function("reused_session_per_query", |b| {
        let mut dot = DotClient::new(TlsClientConfig::opportunistic(store.clone(), now()));
        let mut session = dot
            .session(&mut world.net, client.ip, resolver, None)
            .expect("session");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let q = builder::query(
                (i % 65_536) as u16,
                &format!("ar{i}.probe.dnsmeasure.example"),
                RecordType::A,
            )
            .unwrap();
            session.query(&mut world.net, &q).unwrap()
        });
    });
    group.bench_function("fresh_session_per_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // A new client each time: no ticket cache either.
            let mut dot = DotClient::new(TlsClientConfig::opportunistic(store.clone(), now()));
            let q = builder::query(
                (i % 65_536) as u16,
                &format!("af{i}.probe.dnsmeasure.example"),
                RecordType::A,
            )
            .unwrap();
            dot.query_once(&mut world.net, client.ip, resolver, None, &q)
                .unwrap()
        });
    });
    group.finish();
}

/// Session resumption on vs off for reconnecting clients.
fn ablation_resumption(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_resumption");
    group.sample_size(20);
    let mut world = bench_world(32);
    let client = clean_client(&world);
    let resolver = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
    let store = world.trust_store.clone();

    for (label, enable) in [("with_tickets", true), ("without_tickets", false)] {
        group.bench_function(label, |b| {
            let mut config = TlsClientConfig::opportunistic(store.clone(), now());
            config.enable_resumption = enable;
            let mut dot = DotClient::new(config);
            // Warm the ticket cache once.
            let q = builder::query(1, "warm.probe.dnsmeasure.example", RecordType::A).unwrap();
            dot.query_once(&mut world.net, client.ip, resolver, None, &q)
                .unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let q = builder::query(
                    (i % 65_536) as u16,
                    &format!("rs{i}.probe.dnsmeasure.example"),
                    RecordType::A,
                )
                .unwrap();
                dot.query_once(&mut world.net, client.ip, resolver, None, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// EDNS padding on vs off (bytes per query; the anti-traffic-analysis
/// cost, §2.2).
fn ablation_padding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_padding");
    group.sample_size(20);
    let mut world = bench_world(33);
    let client = clean_client(&world);
    let resolver = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
    let store = world.trust_store.clone();
    for (label, policy) in [
        ("padded_128", dnswire::PaddingPolicy::rfc8467()),
        ("unpadded", dnswire::PaddingPolicy::None),
    ] {
        group.bench_function(label, |b| {
            let mut dot = DotClient::new(TlsClientConfig::opportunistic(store.clone(), now()));
            dot.policy = policy;
            let mut session = dot
                .session(&mut world.net, client.ip, resolver, None)
                .expect("session");
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let q = builder::query(
                    (i % 65_536) as u16,
                    &format!("pd{i}.probe.dnsmeasure.example"),
                    RecordType::A,
                )
                .unwrap();
                session.query(&mut world.net, &q).unwrap()
            });
        });
    }
    group.finish();
}

/// TLS 1.2-style (2-RTT) vs 1.3-style (1-RTT) full handshakes — Table 7's
/// regime ablated.
fn ablation_handshake_rtts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_handshake_rtts");
    group.sample_size(20);
    let mut world = bench_world(34);
    let client = clean_client(&world);
    let resolver = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
    let store = world.trust_store.clone();
    for (label, legacy) in [("tls12_two_rtt", true), ("tls13_one_rtt", false)] {
        group.bench_function(label, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let mut config = TlsClientConfig::opportunistic(store.clone(), now());
                config.legacy_two_rtt = legacy;
                config.enable_resumption = false;
                let mut dot = DotClient::new(config);
                let q = builder::query(
                    (i % 65_536) as u16,
                    &format!("hs{i}.probe.dnsmeasure.example"),
                    RecordType::A,
                )
                .unwrap();
                dot.query_once(&mut world.net, client.ip, resolver, None, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_connection_reuse,
    ablation_resumption,
    ablation_padding,
    ablation_handshake_rtts,
);
criterion_main!(benches);
