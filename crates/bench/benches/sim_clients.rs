//! Wall-clock scaling of the event-driven stub-client population: the
//! same fleet simulated at 100K, 500K and 1M clients across 1, 4 and 8
//! worker shards. Results are bit-identical for every shard count (see
//! `tests/shard_invariance.rs`); this bench records what the scheduler
//! refactor buys in wall-clock headroom over the old per-client loops.
//!
//! Run with `cargo bench -p doe-bench --bench sim_clients` (the 1M rows
//! take ~30s per sample; criterion's sample size is reduced to keep the
//! sweep under a few minutes).

use criterion::{criterion_group, criterion_main, Criterion};
use doe_traffic::{build_stub_world, stub_population_sharded, StubPopulationConfig};

fn bench_sim_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_clients");
    // Each 1M-client sample costs tens of seconds; two samples (the
    // harness minimum) keep the full sweep within a few minutes.
    group.sample_size(2);
    for clients in [100_000usize, 500_000, 1_000_000] {
        for shards in [1usize, 4, 8] {
            let label = format!("{}k_{shards}_shards", clients / 1_000);
            group.bench_function(&label, |b| {
                b.iter(|| {
                    let mut world = build_stub_world(2019, false);
                    let report = stub_population_sharded(
                        &mut world,
                        &StubPopulationConfig {
                            clients,
                            queries_per_client: 2,
                        },
                        shards,
                    );
                    assert_eq!(report.clients, clients as u64);
                    report
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sim_clients);
criterion_main!(benches);
