//! Padding-policy benches: the per-flow cost of each countermeasure in
//! the `padding-leakage` experiment, split into its two halves — the
//! traffic shapers (deterministic `netsim::sched` event machines run to
//! quiescence per flow) and the adversary (Damerau edit distance plus
//! the k-NN vote).
//!
//! These put numbers behind EXPERIMENTS.md's overhead table: shaping is
//! microseconds per flow, so the experiment's cost is dominated by the
//! O(train × test) distance matrix, not the countermeasures.

use criterion::{criterion_group, criterion_main, Criterion};
use dnswire::PaddingPolicy;
use doe_privacy::{knn_classify, sequence_distance, shape_sequence, LabeledTrace};
use doe_privacy::{MessageSequence, SeqMessage};
use doe_protocols::tap::TapDirection;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic but realistically shaped flow: `n` alternating
/// query/response messages with DoT-like sizes and think-time gaps.
fn sample_sequence(n: usize, seed: u64) -> MessageSequence {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seq = MessageSequence::new();
    for i in 0..n {
        let up = i % 2 == 0;
        seq.messages.push(SeqMessage {
            gap_us: if up {
                rng.gen_range(2_000..30_000)
            } else {
                rng.gen_range(5..40)
            },
            dir: if up {
                TapDirection::Up
            } else {
                TapDirection::Down
            },
            size: if up {
                rng.gen_range(30..80)
            } else {
                rng.gen_range(80..500)
            },
        });
    }
    seq
}

/// One shaper pass per policy over a 12-message flow (6 queries + 6
/// responses — the experiment's mean flow length).
fn bench_shape_sequence(c: &mut Criterion) {
    let mut group = c.benchmark_group("padding_policies_shape");
    group.sample_size(50);
    let input = sample_sequence(12, 0xBEEF);
    for (label, policy) in [
        ("none", PaddingPolicy::None),
        ("block_rfc8467", PaddingPolicy::rfc8467()),
        (
            "adaptive_padding",
            PaddingPolicy::AdaptivePadding {
                burst_gap_us: 4_000,
                cell: 128,
            },
        ),
        (
            "constant_rate",
            PaddingPolicy::ConstantRate {
                interval_us: 2_000,
                cell: 128,
            },
        ),
    ] {
        group.bench_function(label, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                shape_sequence(policy, &input, 0x5348_4150 ^ i)
            });
        });
    }
    group.finish();
}

/// The adversary's inner loop: one Damerau distance between two
/// size-direction symbol strings, and one full k-NN vote against a
/// 160-trace training set (the quick config's closed world).
fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("padding_policies_classifier");
    group.sample_size(50);
    let symbols = |seed: u64, n: usize| -> Vec<u16> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..64u16)).collect()
    };

    let a = symbols(1, 12);
    let b_sym = symbols(2, 12);
    group.bench_function("sequence_distance_12x12", |b| {
        b.iter(|| sequence_distance(&a, &b_sym))
    });

    let train: Vec<LabeledTrace> = (0..160)
        .map(|i| LabeledTrace {
            domain: i % 20,
            symbols: symbols(100 + i as u64, 12),
        })
        .collect();
    let sample = symbols(999, 12);
    group.bench_function("knn_vote_160_train", |b| {
        b.iter(|| knn_classify(&train, &sample, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_shape_sequence, bench_classifier);
criterion_main!(benches);
