//! Cost of the determinism analyzer over the live workspace, split into
//! its stages: the per-file token pass (`lint_workspace`'s dominant
//! cost before the call-graph work existed), the call-graph analysis
//! (parse → graph build → D006–D008 reachability), the full pass with
//! the intraprocedural dataflow rules (D009–D012) rooted, and — since
//! v4 — the bottom-up effect-summary fixpoint (SCC condensation +
//! worklist) measured both in isolation over a prebuilt graph and as
//! part of the full D006–D015 pass. The deltas are what each proof
//! layer costs on top of the previous one, and the absolute numbers are
//! what `scripts/verify.sh` pays per gate run.

use criterion::{criterion_group, criterion_main, Criterion};
use doe_lint::policy::Policy;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load_policy(root: &std::path::Path) -> Policy {
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    Policy::parse(&text).expect("lint.toml parses")
}

fn bench_token_pass(c: &mut Criterion) {
    let root = workspace_root();
    let mut policy = load_policy(&root);
    // Unroot the graph and dataflow rules: this measures the
    // pre-existing per-file scan alone. (The live D006–D012 pragmas
    // read as stale without their rules, so cleanliness is asserted
    // only in the full pass.)
    policy.graph = Default::default();
    policy.dataflow = Default::default();
    policy.summary = Default::default();
    c.bench_function("lint/token_pass", |b| {
        b.iter(|| {
            let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
            assert!(analysis.report.files_scanned > 50);
            analysis.report.files_scanned
        })
    });
}

fn bench_callgraph_pass(c: &mut Criterion) {
    let root = workspace_root();
    let mut policy = load_policy(&root);
    // Graph rules rooted, dataflow rules unrooted: the taint pass still
    // runs per function (it is part of parsing now), but the D009–D012
    // entry scans and flow reporting are off. The delta against
    // lint/dataflow_pass is the reporting layer's cost.
    policy.dataflow = Default::default();
    policy.summary = Default::default();
    c.bench_function("lint/callgraph_pass", |b| {
        b.iter(|| {
            let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
            analysis.graph.nodes.len() + analysis.graph.edges.len()
        })
    });
}

fn bench_full_dataflow(c: &mut Criterion) {
    let root = workspace_root();
    let policy = load_policy(&root);
    c.bench_function("lint/dataflow_pass", |b| {
        b.iter(|| {
            let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
            assert!(analysis.report.clean());
            analysis.graph.nodes.len() + analysis.graph.edges.len()
        })
    });
}

fn bench_summary_fixpoint(c: &mut Criterion) {
    let root = workspace_root();
    let policy = load_policy(&root);
    let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
    // The fixpoint alone over the prebuilt workspace graph: two Tarjan
    // passes plus the per-SCC worklist to convergence. This is the
    // marginal cost v4 added to every gate run.
    c.bench_function("lint/summary_fixpoint", |b| {
        b.iter(|| {
            let summaries = doe_lint::summary::compute(&analysis.graph);
            assert_eq!(summaries.per_fn.len(), analysis.graph.nodes.len());
            summaries.exact_sccs.len()
        })
    });
}

fn bench_graph_export(c: &mut Criterion) {
    let root = workspace_root();
    let policy = load_policy(&root);
    let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
    c.bench_function("lint/graph_export", |b| {
        b.iter(|| doe_lint::graph::to_json(&analysis.graph).len())
    });
}

criterion_group!(
    benches,
    bench_token_pass,
    bench_callgraph_pass,
    bench_full_dataflow,
    bench_summary_fixpoint,
    bench_graph_export
);
criterion_main!(benches);
