//! Cost of the determinism analyzer over the live workspace, split into
//! its two stages: the per-file token pass (`lint_workspace`'s dominant
//! cost before the call-graph work existed) and the full interprocedural
//! analysis (parse → graph build → reachability). The delta is what the
//! D006/D007/D008 proof layer costs on top of the token rules, and the
//! absolute numbers are what `scripts/verify.sh` pays per gate run.

use criterion::{criterion_group, criterion_main, Criterion};
use doe_lint::policy::Policy;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load_policy(root: &std::path::Path) -> Policy {
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    Policy::parse(&text).expect("lint.toml parses")
}

fn bench_token_pass(c: &mut Criterion) {
    let root = workspace_root();
    let mut policy = load_policy(&root);
    // Unroot the graph rules: this measures the pre-existing per-file
    // scan alone. (The live D006–D008 pragmas read as stale without
    // their rules, so cleanliness is asserted only in the full pass.)
    policy.graph = Default::default();
    c.bench_function("lint/token_pass", |b| {
        b.iter(|| {
            let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
            assert!(analysis.report.files_scanned > 50);
            analysis.report.files_scanned
        })
    });
}

fn bench_full_interprocedural(c: &mut Criterion) {
    let root = workspace_root();
    let policy = load_policy(&root);
    c.bench_function("lint/interprocedural", |b| {
        b.iter(|| {
            let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
            assert!(analysis.report.clean());
            analysis.graph.nodes.len() + analysis.graph.edges.len()
        })
    });
}

fn bench_graph_export(c: &mut Criterion) {
    let root = workspace_root();
    let policy = load_policy(&root);
    let analysis = doe_lint::analyze_workspace(&root, &policy).expect("analysis runs");
    c.bench_function("lint/graph_export", |b| {
        b.iter(|| doe_lint::graph::to_json(&analysis.graph).len())
    });
}

criterion_group!(
    benches,
    bench_token_pass,
    bench_full_interprocedural,
    bench_graph_export
);
criterion_main!(benches);
