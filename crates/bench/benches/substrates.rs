//! Microbenchmarks of the substrates: the per-operation costs every
//! experiment is built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dnswire::{builder, Message, RecordType};
use doe_bench::{bench_world, clean_client};
use doe_scanner::RandomPermutation;
use doe_traffic::{NetFlowCollector, RealFlow};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlssim::record::{open, seal, SessionKey};
use tlssim::DateStamp;

fn bench_dnswire(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnswire");
    let query = builder::query(7, "a1b2c3.probe.dnsmeasure.example", RecordType::A).unwrap();
    let bytes = query.encode().unwrap();
    group.bench_function("encode_query", |b| {
        b.iter(|| black_box(&query).encode().unwrap())
    });
    group.bench_function("decode_query", |b| {
        b.iter(|| Message::decode(black_box(&bytes)).unwrap())
    });
    let mut padded = query.clone();
    padded.pad_to_block(128).unwrap();
    let padded_bytes = padded.encode().unwrap();
    group.bench_function("decode_padded_query", |b| {
        b.iter(|| Message::decode(black_box(&padded_bytes)).unwrap())
    });
    group.finish();
}

fn bench_tls(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlssim");
    let key = SessionKey::derive(1, 2, 3);
    let payload = vec![0xabu8; 160];
    group.bench_function("seal_160B", |b| b.iter(|| seal(key, black_box(&payload))));
    let sealed = seal(key, &payload);
    group.bench_function("open_160B", |b| {
        b.iter(|| open(key, black_box(&sealed)).unwrap())
    });

    // Full handshake + one exchange over the simulated network.
    let now = DateStamp::from_ymd(2019, 2, 1);
    let mut world = bench_world(11);
    let client = clean_client(&world);
    let resolver = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
    group.bench_function("dot_full_session_one_query", |b| {
        b.iter(|| {
            let mut dot = doe_protocols::dot::DotClient::new(
                tlssim::TlsClientConfig::opportunistic(world.trust_store.clone(), now),
            );
            let q = builder::query(1, "bench.probe.dnsmeasure.example", RecordType::A).unwrap();
            dot.query_once(&mut world.net, client.ip, resolver, None, &q)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_netflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("netflow");
    let collector = NetFlowCollector::default();
    let flow = RealFlow {
        src: "64.1.2.3".parse().unwrap(),
        dst: "1.1.1.1".parse().unwrap(),
        dst_port: 853,
        packets: 24,
        bytes: 2_900,
        date: DateStamp::from_ymd(2018, 7, 1),
        syn_only: false,
    };
    let mut rng = SmallRng::seed_from_u64(3);
    group.bench_function("observe_flow", |b| {
        b.iter(|| collector.observe(black_box(&flow), &mut rng))
    });
    group.finish();
}

fn bench_scanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("scanner");
    group.bench_function("permutation_64k", |b| {
        b.iter(|| {
            RandomPermutation::new(black_box(65_536), black_box(42))
                .fold(0u64, |acc, i| acc.wrapping_add(i))
        })
    });
    let mut world = bench_world(13);
    let src = world.scanner_sources[0];
    let target = worldgen::providers::anchors::CLOUDFLARE_PRIMARY;
    group.bench_function("syn_probe", |b| {
        b.iter(|| world.net.syn_probe(src, target, 853))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dnswire,
    bench_tls,
    bench_netflow,
    bench_scanner
);
criterion_main!(benches);
