//! Cost of the telemetry subsystem on the hot path: the same /17 SYN
//! sweep with metrics collection disabled (`NetworkConfig.metrics =
//! false`, every registry call a no-op on a `None` registry) and enabled
//! (the default). The delta is what every probe pays for its counter
//! bumps and histogram observations.

use criterion::{criterion_group, criterion_main, Criterion};
use doe_scanner::sweep::AddressSpace;
use doe_scanner::syn_sweep_sharded;
use netsim::service::FnStreamService;
use netsim::{HostMeta, Netblock, Network, NetworkConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The sweep_shards fixture: a /17 target space (32,768 addresses) with
/// open DoT listeners on every 256th host.
fn sweep_fixture(metrics: bool) -> (Network, Vec<Ipv4Addr>, AddressSpace) {
    let mut net = Network::new(
        NetworkConfig {
            metrics,
            ..NetworkConfig::default()
        },
        29,
    );
    let sources: Vec<Ipv4Addr> = ["198.51.100.1", "198.51.100.2", "198.51.100.3"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    for &s in &sources {
        net.add_host(HostMeta::new(s));
    }
    let space = AddressSpace::new(vec![Netblock::new("10.128.0.0".parse().unwrap(), 17)]);
    for i in (0..space.len()).step_by(256) {
        let addr = space.addr(i);
        net.add_host(HostMeta::new(addr));
        net.bind_tcp(
            addr,
            853,
            Arc::new(FnStreamService::new(|_c, _p, d: &[u8]| d.to_vec(), "echo")),
        );
    }
    (net, sources, space)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    for (label, metrics) in [("disabled", false), ("enabled", true)] {
        let (mut net, sources, space) = sweep_fixture(metrics);
        group.bench_function(&format!("slash17_sweep_metrics_{label}"), |b| {
            b.iter(|| syn_sweep_sharded(&mut net, &sources, &space, 853, 2019, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
