//! One Criterion group per paper table/figure: times the regeneration
//! harness for each artefact.
//!
//! Cheap artefacts (data-model tables, traffic analytics) are timed end to
//! end. Measured artefacts (scans, reachability, latency tests) are timed
//! per unit of measurement work against a pre-built world — building the
//! world itself is a fixture cost, not part of the harness being measured.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use doe_bench::bench_world;
use doe_core::experiments;
use doe_core::{Study, StudyConfig};
use doe_scanner::campaign::{compact_space, scan_epoch};
use doe_traffic::{
    analyze_dot, detect_scanners, generate_dot_traffic, generate_passive_dns, DotTrafficConfig,
    PdnsConfig, ScanDetectorConfig,
};
use doe_vantage::performance::{fresh_connection_test, performance_test, standard_tunnel};
use doe_vantage::reachability::reachability_test;
use std::collections::BTreeMap;

/// Tables 1/8 and Figures 1/2: pure data-model artefacts, timed end to end.
fn bench_protocol_artefacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_artefacts");
    group.bench_function("table1", |b| b.iter(experiments::exp_protocols::table1));
    group.bench_function("figure1", |b| b.iter(experiments::exp_protocols::figure1));
    group.bench_function("figure2", |b| b.iter(experiments::exp_protocols::figure2));
    group.bench_function("table8", |b| b.iter(experiments::exp_protocols::table8));
    group.finish();
}

/// Figure 3 / Table 2 / Figure 4: one scan epoch (sweep + verify +
/// classify) on a pre-built world.
fn bench_scan_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_campaign");
    group.sample_size(10);
    let mut world = bench_world(21);
    let space = compact_space(&world);
    world.set_epoch(world.config.scan_date(0));
    group.bench_function("figure3_table2_figure4_one_epoch", |b| {
        b.iter(|| scan_epoch(&mut world, &space, 0, 42))
    });
    group.finish();
}

/// Table 4: reachability per 25 vantage clients (all four resolvers, all
/// three transports).
fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.sample_size(10);
    let mut world = bench_world(22);
    let clients: Vec<_> = world.proxyrack.clients.iter().take(25).cloned().collect();
    group.bench_function("table4_25_clients", |b| {
        b.iter(|| reachability_test(&mut world, &clients, "Cloudflare"))
    });
    group.finish();
}

/// Figures 9/10 and Table 7: the latency methodology.
fn bench_performance(c: &mut Criterion) {
    let mut group = c.benchmark_group("performance");
    group.sample_size(10);
    let mut world = bench_world(23);
    let tunnel = standard_tunnel(&mut world.net);
    let clients: Vec<_> = world
        .proxyrack
        .clients
        .iter()
        .filter(|c| c.affliction == worldgen::Affliction::None)
        .take(5)
        .cloned()
        .collect();
    group.bench_function("figure9_figure10_5_clients_20q", |b| {
        b.iter(|| performance_test(&mut world, &clients, tunnel, 20))
    });
    group.bench_function("table7_10_iterations", |b| {
        b.iter(|| fresh_connection_test(&mut world, 10))
    });
    group.finish();
}

/// Figures 11/12/13 + scan detection: generation and analytics end to end.
fn bench_usage(c: &mut Criterion) {
    let mut group = c.benchmark_group("usage");
    group.sample_size(10);
    let dataset = generate_dot_traffic(&DotTrafficConfig::default());
    let labels: BTreeMap<_, _> = [
        (
            worldgen::providers::anchors::CLOUDFLARE_PRIMARY,
            "Cloudflare".to_string(),
        ),
        (
            worldgen::providers::anchors::QUAD9_PRIMARY,
            "Quad9".to_string(),
        ),
    ]
    .into_iter()
    .collect();
    group.bench_function("figure11_figure12_generate_18_months", |b| {
        b.iter(|| generate_dot_traffic(black_box(&DotTrafficConfig::default())))
    });
    group.bench_function("figure11_figure12_analyze", |b| {
        b.iter(|| analyze_dot(black_box(&dataset.records), &labels))
    });
    group.bench_function("figure13_passive_dns", |b| {
        b.iter(|| generate_passive_dns(black_box(&PdnsConfig::three_sixty())))
    });
    group.bench_function("scandet", |b| {
        b.iter(|| {
            detect_scanners(
                black_box(&dataset.records),
                853,
                ScanDetectorConfig::default(),
            )
        })
    });
    group.finish();
}

/// DoH discovery and the Atlas probe, per run on a pre-built world.
fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    let mut world = bench_world(24);
    let source = world.scanner_sources[0];
    let corpus = world.corpus.urls.clone();
    let known = world.known_doh_list.clone();
    let store = world.trust_store.clone();
    let now = world.epoch();
    let bootstrap = world.bootstrap_resolver;
    let expected = world.probe.expected_a;
    group.bench_function("doh_discovery", |b| {
        b.iter(|| {
            doe_scanner::discover_doh(
                &mut world.net,
                source,
                &corpus,
                bootstrap,
                "probe.dnsmeasure.example",
                expected,
                &known,
                &store,
                now,
            )
        })
    });
    let probes = world.atlas.clone();
    group.bench_function("local_probe", |b| {
        b.iter(|| {
            doe_scanner::local_resolver_probe(
                &mut world.net,
                &probes,
                "probe.dnsmeasure.example",
                &store,
                now,
            )
        })
    });
    group.finish();
}

/// Table 3 via the study driver (world inventory summarisation).
fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory");
    group.sample_size(10);
    let mut study = Study::new(StudyConfig {
        epochs: 1,
        ..StudyConfig::quick(25)
    });
    group.bench_function("table3", |b| {
        b.iter(|| experiments::run(&mut study, "table3").unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_protocol_artefacts,
    bench_scan_epoch,
    bench_reachability,
    bench_performance,
    bench_usage,
    bench_discovery,
    bench_table3,
);
criterion_main!(benches);
