//! Owned decode vs zero-copy view on the sweep's reply packets.
//!
//! The 2–3M-host verification stage parses one DoT reply per open host
//! per epoch; the owned `Message::decode` allocates a `Name` per record
//! plus the section vectors, while `MessageView::parse` validates in
//! place and lends borrows. This bench measures both decoders on the
//! same packets — a padded resolver answer (what `verify_one` sees) and
//! a compression-heavy multi-answer response — and counts heap
//! allocations per packet with a tallying global allocator. The view
//! path must hold a ≥2× throughput edge and zero allocations.

use criterion::{criterion_group, criterion_main, Criterion};
use dnswire::view::MessageView;
use dnswire::{builder, Message, Name, RData, RecordType, ResourceRecord};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with an allocation counter, so the bench can prove
/// "alloc-free" rather than assert it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

/// The packet `verify_one` classifies: a padded-to-128 A answer to the
/// sweep's stamped probe query.
fn sweep_reply() -> Vec<u8> {
    let query = builder::query(
        0x3d4e,
        "se0x01234567.probe.dnsmeasure.example",
        RecordType::A,
    )
    .expect("query encodes");
    let mut reply = builder::answer(
        &query,
        vec![ResourceRecord::new(
            Name::parse("se0x01234567.probe.dnsmeasure.example").expect("name parses"),
            300,
            RData::A(Ipv4Addr::new(198, 51, 100, 53)),
        )],
    );
    reply.pad_to_block(128).expect("padding fits");
    reply.encode().expect("reply encodes")
}

/// A compression-heavy response: eight A records sharing the query
/// name, the shape of a large public-resolver answer.
fn fat_reply() -> Vec<u8> {
    let query = builder::query(0x1111, "big.cdn.example", RecordType::A).expect("query encodes");
    let answers = (0..8u8)
        .map(|i| {
            ResourceRecord::new(
                Name::parse("big.cdn.example").expect("name parses"),
                60,
                RData::A(Ipv4Addr::new(203, 0, 113, i)),
            )
        })
        .collect();
    builder::answer(&query, answers).encode().expect("encodes")
}

fn bench_decoders(c: &mut Criterion) {
    let packets = [
        ("sweep_reply_padded", sweep_reply()),
        ("fat_answer", fat_reply()),
    ];
    let expected = Ipv4Addr::new(198, 51, 100, 53);

    let mut group = c.benchmark_group("dnswire_codec");
    for (label, wire) in &packets {
        // Report allocations per packet once, outside the timing loop.
        let (_, owned_allocs) = allocs_during(|| {
            let msg = Message::decode(wire).expect("owned decode");
            drop(msg);
        });
        let (_, view_allocs) = allocs_during(|| {
            let view = MessageView::parse(wire).expect("view parse");
            let _ = view.first_a_answer();
        });
        eprintln!(
            "dnswire_codec/{label}: {owned_allocs} allocs/packet owned, \
             {view_allocs} allocs/packet view ({} bytes)",
            wire.len()
        );
        assert_eq!(view_allocs, 0, "view decode must be alloc-free");

        group.bench_function(&format!("owned_decode_{label}"), |b| {
            b.iter(|| {
                let msg = Message::decode(std::hint::black_box(wire)).expect("owned decode");
                let hit = msg.header.rcode == dnswire::Rcode::NoError
                    && msg.answers.iter().any(|rr| match rr.rdata {
                        RData::A(a) => a == expected,
                        _ => false,
                    });
                std::hint::black_box(hit)
            })
        });
        group.bench_function(&format!("view_decode_{label}"), |b| {
            b.iter(|| {
                let view = MessageView::parse(std::hint::black_box(wire)).expect("view parse");
                let hit = view.rcode() == dnswire::Rcode::NoError
                    && view.first_a_answer() == Some(expected);
                std::hint::black_box(hit)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decoders);
criterion_main!(benches);
