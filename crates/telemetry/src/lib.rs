//! # doe-telemetry — deterministic metrics for the measurement pipeline
//!
//! Counters, gauges and log-bucketed histograms addressed by a static
//! metric name plus an ordered label set, collected per shard and merged
//! associatively/commutatively at absorb time — so a snapshot is
//! bit-identical for any shard count, the same guarantee the sharded
//! engine gives measurement reports (`tests/shard_invariance.rs`).
//!
//! Design rules (DESIGN.md §6):
//!
//! * **Virtual time only.** [`Span`] timers are driven by the simulator's
//!   charged-time accumulator, never the host wall clock; durations are
//!   integers (microseconds) end to end.
//! * **No floats in exported state.** [`Snapshot`] is all integers and
//!   `BTreeMap`s, so its JSON serialisation is byte-stable.
//! * **Zero-cost when disabled.** A [`Registry::disabled`] registry is an
//!   `Option::None` behind one pointer: every operation is a single
//!   branch, no allocation, no atomics.
//! * **Hot paths use handles.** Register a [`CounterId`]/[`HistogramId`]
//!   once per shard, then update by vector index; the one-shot
//!   [`Registry::count`]/[`Registry::record`] forms are for cold paths
//!   where allocating a label set per call does not matter.
//!
//! ```
//! use doe_telemetry::{Labels, Registry};
//!
//! let mut reg = Registry::enabled();
//! let probes = reg.counter("net.probe.sent", Labels::empty());
//! reg.add(probes, 3);
//! let latency = reg.histogram("stage.sweep.probe_us", Labels::empty());
//! reg.observe(latency, 1_500);
//! assert_eq!(reg.counter_value("net.probe.sent", &Labels::empty()), 3);
//!
//! // Per-shard registries merge order-independently.
//! let mut other = Registry::enabled();
//! other.count("net.probe.sent", Labels::empty(), 2);
//! reg.merge(&other);
//! assert_eq!(reg.snapshot().counters["net.probe.sent"], 5);
//! ```

pub mod histogram;

pub use histogram::{bucket_floor, bucket_index, Histogram, HistogramSnapshot};

use serde::Serialize;
use std::collections::BTreeMap;

/// An ordered label set (`BTreeMap`-backed, per the D002 contract):
/// `(key, value)` pairs that qualify a metric name, compared and rendered
/// in key order so labelled metrics have one canonical identity.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels(BTreeMap<String, String>);

impl Labels {
    /// No labels.
    pub fn empty() -> Labels {
        Labels(BTreeMap::new())
    }

    /// A single `key=value` pair.
    pub fn one(key: &str, value: &str) -> Labels {
        Labels::empty().with(key, value)
    }

    /// Builder-style insert (replaces an existing key).
    pub fn with(mut self, key: &str, value: &str) -> Labels {
        self.0.insert(key.to_string(), value.to_string());
        self
    }

    /// True when no pairs are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl std::fmt::Display for Labels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// Canonical identity of one metric series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Labels,
}

impl Key {
    /// `name` or `name{k=v,...}` — the form snapshots key series by.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, self.labels)
        }
    }
}

/// One registered series.
#[derive(Debug, Clone)]
enum Slot {
    Counter(u64),
    Gauge(u64),
    Histogram(Histogram),
}

#[derive(Debug, Clone, Default)]
struct Inner {
    index: BTreeMap<Key, usize>,
    slots: Vec<Slot>,
}

impl Inner {
    /// Find-or-create the slot for `key`; `None` when the key exists with
    /// a different kind (a naming bug — the op becomes a no-op rather
    /// than a panic).
    fn slot_for(&mut self, key: Key, make: fn() -> Slot) -> Option<usize> {
        if let Some(&i) = self.index.get(&key) {
            let matches = matches!(
                (&self.slots[i], make()),
                (Slot::Counter(_), Slot::Counter(_))
                    | (Slot::Gauge(_), Slot::Gauge(_))
                    | (Slot::Histogram(_), Slot::Histogram(_))
            );
            return if matches { Some(i) } else { None };
        }
        let i = self.slots.len();
        self.slots.push(make());
        self.index.insert(key, i);
        Some(i)
    }
}

/// Handle to a registered counter — a vector index, valid only for the
/// registry (and shard) that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Sentinel index issued by disabled registries (and on kind conflicts);
/// updates through it are no-ops.
const DEAD: usize = usize::MAX;

/// A per-shard metric registry.
///
/// Forked empty for each shard worker and folded back with
/// [`Registry::merge`]: counters and histogram buckets add, gauges take
/// the max — all associative and commutative, so the merged result is
/// independent of shard count and absorb order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Box<Inner>>,
}

impl Registry {
    /// A collecting registry.
    pub fn enabled() -> Registry {
        Registry {
            inner: Some(Box::default()),
        }
    }

    /// A no-op registry: one `None` check per operation, nothing stored.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a counter, returning its update handle.
    pub fn counter(&mut self, name: &'static str, labels: Labels) -> CounterId {
        CounterId(self.register(name, labels, || Slot::Counter(0)))
    }

    /// Register (or look up) a histogram, returning its update handle.
    pub fn histogram(&mut self, name: &'static str, labels: Labels) -> HistogramId {
        HistogramId(self.register(name, labels, || Slot::Histogram(Histogram::new())))
    }

    fn register(&mut self, name: &'static str, labels: Labels, make: fn() -> Slot) -> usize {
        let Some(inner) = self.inner.as_deref_mut() else {
            return DEAD;
        };
        let key = Key {
            name: name.to_string(),
            labels,
        };
        inner.slot_for(key, make).unwrap_or(DEAD)
    }

    /// Add `n` to a registered counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            if let Some(Slot::Counter(c)) = inner.slots.get_mut(id.0) {
                *c += n;
            }
        }
    }

    /// Add 1 to a registered counter.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Record a sample into a registered histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            if let Some(Slot::Histogram(h)) = inner.slots.get_mut(id.0) {
                h.observe(value);
            }
        }
    }

    /// One-shot counter bump (cold paths: allocates the label set).
    pub fn count(&mut self, name: &'static str, labels: Labels, n: u64) {
        let id = self.counter(name, labels);
        self.add(id, n);
    }

    /// One-shot histogram sample (cold paths).
    pub fn record(&mut self, name: &'static str, labels: Labels, value: u64) {
        let id = self.histogram(name, labels);
        self.observe(id, value);
    }

    /// Raise a gauge to `value` if it is higher (max is the only gauge
    /// semantic that merges commutatively; last-write-wins would depend
    /// on absorb order).
    pub fn gauge_max(&mut self, name: &'static str, labels: Labels, value: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let key = Key {
            name: name.to_string(),
            labels,
        };
        if let Some(i) = inner.slot_for(key, || Slot::Gauge(0)) {
            if let Some(Slot::Gauge(g)) = inner.slots.get_mut(i) {
                if value > *g {
                    *g = value;
                }
            }
        }
    }

    /// Current value of a counter series (0 if absent or disabled).
    pub fn counter_value(&self, name: &str, labels: &Labels) -> u64 {
        let Some(inner) = self.inner.as_deref() else {
            return 0;
        };
        let key = Key {
            name: name.to_string(),
            labels: labels.clone(),
        };
        match inner.index.get(&key).map(|&i| &inner.slots[i]) {
            Some(Slot::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// A clone of a histogram series, if present.
    pub fn histogram_value(&self, name: &str, labels: &Labels) -> Option<Histogram> {
        let inner = self.inner.as_deref()?;
        let key = Key {
            name: name.to_string(),
            labels: labels.clone(),
        };
        match inner.index.get(&key).map(|&i| &inner.slots[i]) {
            Some(Slot::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Fold another registry into this one: counters and histogram
    /// buckets add, gauges take the max. Associative and commutative, so
    /// absorbing shards in any order (or any grouping) yields the same
    /// registry. A disabled registry absorbs nothing and contributes
    /// nothing.
    pub fn merge(&mut self, other: &Registry) {
        let (Some(inner), Some(theirs)) = (self.inner.as_deref_mut(), other.inner.as_deref())
        else {
            return;
        };
        for (key, &j) in &theirs.index {
            let make: fn() -> Slot = match &theirs.slots[j] {
                Slot::Counter(_) => || Slot::Counter(0),
                Slot::Gauge(_) => || Slot::Gauge(0),
                Slot::Histogram(_) => || Slot::Histogram(Histogram::new()),
            };
            let Some(i) = inner.slot_for(key.clone(), make) else {
                continue;
            };
            match (&mut inner.slots[i], &theirs.slots[j]) {
                (Slot::Counter(a), Slot::Counter(b)) => *a += b,
                (Slot::Gauge(a), Slot::Gauge(b)) => *a = (*a).max(*b),
                (Slot::Histogram(a), Slot::Histogram(b)) => a.merge(b),
                _ => {}
            }
        }
    }

    /// Export every series. Keys are `name` or `name{k=v,...}` in
    /// lexicographic order; values are integers only — the JSON form is
    /// byte-identical across runs, platforms and shard counts.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(inner) = self.inner.as_deref() else {
            return snap;
        };
        for (key, &i) in &inner.index {
            match &inner.slots[i] {
                Slot::Counter(c) => {
                    snap.counters.insert(key.render(), *c);
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(key.render(), *g);
                }
                Slot::Histogram(h) => {
                    snap.histograms
                        .insert(key.render(), HistogramSnapshot::of(h));
                }
            }
        }
        snap
    }
}

/// A virtual-clock span timer. `Span` does not read any clock itself —
/// the caller feeds it the simulator's charged-time microsecond counter
/// at both ends, which keeps the crate dependency-light and the duration
/// bit-reproducible.
///
/// ```
/// use doe_telemetry::Span;
/// let span = Span::begin(1_000); // net.charged().as_micros()
/// assert_eq!(span.elapsed_us(4_500), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start_us: u64,
}

impl Span {
    /// Start a span at the given virtual-microsecond reading.
    pub fn begin(now_us: u64) -> Span {
        Span { start_us: now_us }
    }

    /// Microseconds between the start reading and `now_us`.
    pub fn elapsed_us(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(self.start_us)
    }
}

/// A machine-readable export of one registry: all integers, all ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Snapshot {
    /// Counter series by rendered key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series by rendered key.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram series by rendered key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when nothing was recorded (the gate `scripts/verify.sh`
    /// fails on).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Render the human per-phase breakdown: one row per histogram with
/// count, total/median/p99, and (for `stage.*` virtual-time series) a
/// share bar of where simulated time went — a text flamegraph — followed
/// by the counter table.
pub fn render_breakdown(snap: &Snapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== telemetry breakdown ==");

    let stage_total: u64 = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("stage.") && k.contains("_us"))
        .map(|(_, h)| h.sum)
        .sum();
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>12} {:>10} {:>10}  share",
        "histogram", "count", "total", "p50", "p99"
    );
    for (key, h) in &snap.histograms {
        let time_like = key.contains("_us");
        let fmt_v = |v: u64| {
            if time_like {
                format!("{:.1}ms", v as f64 / 1_000.0)
            } else {
                format!("{v}")
            }
        };
        let total = if time_like {
            format!("{:.2}s", h.sum as f64 / 1_000_000.0)
        } else {
            format!("{}", h.sum)
        };
        let share = if key.starts_with("stage.") && time_like && stage_total > 0 {
            let permille = h.sum.saturating_mul(1000) / stage_total;
            let bar_len = (permille / 50) as usize; // 20 chars = 100%
            format!("{:<20} {:>3}%", "#".repeat(bar_len), permille / 10)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>12} {:>10} {:>10}  {}",
            key,
            h.count,
            total,
            fmt_v(h.p50),
            fmt_v(h.p99),
            share
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "{:<60} {:>12}", "counter", "value");
    for (key, v) in &snap.counters {
        let _ = writeln!(out, "{key:<60} {v:>12}");
    }
    for (key, v) in &snap.gauges {
        let _ = writeln!(out, "{key:<60} {v:>12} (gauge)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_no_op() {
        let mut reg = Registry::disabled();
        let c = reg.counter("x", Labels::empty());
        let h = reg.histogram("y", Labels::empty());
        reg.add(c, 5);
        reg.observe(h, 9);
        reg.count("z", Labels::empty(), 1);
        reg.gauge_max("g", Labels::empty(), 7);
        assert!(!reg.is_enabled());
        assert_eq!(reg.counter_value("x", &Labels::empty()), 0);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn labels_make_distinct_series() {
        let mut reg = Registry::enabled();
        reg.count("net.path.reset", Labels::one("rule", "censor"), 2);
        reg.count("net.path.reset", Labels::one("rule", "filter-853"), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["net.path.reset{rule=censor}"], 2);
        assert_eq!(snap.counters["net.path.reset{rule=filter-853}"], 1);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = Registry::enabled();
        let mut b = Registry::enabled();
        a.count("c", Labels::empty(), 3);
        b.count("c", Labels::empty(), 4);
        a.gauge_max("g", Labels::empty(), 10);
        b.gauge_max("g", Labels::empty(), 7);
        a.record("h", Labels::empty(), 100);
        b.record("h", Labels::empty(), 200);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counters["c"], 7);
        assert_eq!(snap.gauges["g"], 10);
        assert_eq!(snap.histograms["h"].count, 2);
    }

    #[test]
    fn kind_conflict_is_a_silent_no_op() {
        let mut reg = Registry::enabled();
        reg.count("dual", Labels::empty(), 1);
        let h = reg.histogram("dual", Labels::empty());
        reg.observe(h, 99);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["dual"], 1);
        assert!(!snap.histograms.contains_key("dual"));
    }

    #[test]
    fn handles_survive_many_registrations() {
        let mut reg = Registry::enabled();
        let first = reg.counter("a", Labels::empty());
        let again = reg.counter("a", Labels::empty());
        assert_eq!(first, again);
        reg.inc(first);
        reg.add(again, 2);
        assert_eq!(reg.counter_value("a", &Labels::empty()), 3);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut reg = Registry::enabled();
            reg.count("b", Labels::one("k", "v"), 2);
            reg.count("a", Labels::empty(), 1);
            reg.record("lat_us", Labels::empty(), 1234);
            reg.record("lat_us", Labels::empty(), 88);
            serde_json::to_string(&reg.snapshot()).unwrap()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"a\""));
    }

    #[test]
    fn render_breakdown_mentions_every_series() {
        let mut reg = Registry::enabled();
        reg.count("net.probe.sent", Labels::empty(), 9);
        reg.record("stage.sweep.probe_us", Labels::empty(), 2_000);
        let text = render_breakdown(&reg.snapshot());
        assert!(text.contains("net.probe.sent"));
        assert!(text.contains("stage.sweep.probe_us"));
        assert!(text.contains("100%"));
    }
}
