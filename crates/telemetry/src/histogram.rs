//! Log-bucketed (HDR-style) histograms over `u64` samples.
//!
//! Values below [`SUB_BUCKETS`] land in exact unit buckets; above that,
//! each power-of-two octave is split into [`SUB_BUCKETS`] sub-buckets, so
//! the relative quantization error is bounded by `1 / SUB_BUCKETS`
//! (~3.1%). Buckets are stored sparsely in a `BTreeMap`, which makes the
//! merge a plain per-bucket addition — associative and commutative, the
//! property the sharded engine's absorb step relies on.

use serde::Serialize;
use std::collections::BTreeMap;

/// Sub-bucket precision: `log2` of the bucket count per octave.
pub const SUB_BITS: u32 = 5;

/// Buckets per octave (and the exact-bucket threshold).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// The bucket index a value falls into.
pub fn bucket_index(value: u64) -> u64 {
    if value < SUB_BUCKETS {
        return value;
    }
    let msb = 63 - u64::from(value.leading_zeros());
    let shift = msb - u64::from(SUB_BITS);
    let sub = (value >> shift) & (SUB_BUCKETS - 1);
    (shift + 1) * SUB_BUCKETS + sub
}

/// The smallest value mapping to bucket `index` — the representative the
/// histogram reports for every sample in the bucket (quantiles are
/// therefore lower bounds, never interpolated floats).
pub fn bucket_floor(index: u64) -> u64 {
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = index / SUB_BUCKETS - 1;
    let sub = index % SUB_BUCKETS;
    // Max shift is 58 (msb 63), so `(SUB_BUCKETS + sub) << octave` cannot
    // exceed 2^64 - 2^58: no overflow for any reachable index.
    (SUB_BUCKETS + sub) << octave
}

/// A mergeable distribution of `u64` samples (virtual-time microseconds,
/// byte counts, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u64, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one. Bucket-count addition:
    /// associative, commutative, and lossless with respect to the bucket
    /// resolution, so any absorb order yields the same result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
    }

    /// The quantile at `permille` (500 = median, 990 = p99), reported as
    /// the floor of the bucket holding the rank-`⌊q·(n-1)⌋` sample.
    /// Integer arithmetic only, so the estimate is bit-stable across
    /// platforms; it is within one bucket (≤ ~3.1% relative) of exact.
    pub fn quantile(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = permille.min(1000).saturating_mul(self.count - 1) / 1000;
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                return bucket_floor(index);
            }
        }
        bucket_floor(self.buckets.keys().next_back().copied().unwrap_or(0))
    }

    /// Sparse `(bucket floor, count)` pairs in ascending value order.
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .map(|(&index, &n)| (bucket_floor(index), n))
            .collect()
    }
}

/// The integer-only exported form of one histogram — everything a report
/// needs, nothing that could differ across platforms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (bucket floor).
    pub p50: u64,
    /// 90th percentile (bucket floor).
    pub p90: u64,
    /// 99th percentile (bucket floor).
    pub p99: u64,
    /// Sparse `(bucket floor, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Snapshot a live histogram.
    pub fn of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(500),
            p90: h.quantile(900),
            p99: h.quantile(990),
            buckets: h.bucket_counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v);
            assert_eq!(bucket_floor(v), v);
        }
    }

    #[test]
    fn floor_is_a_fixed_point_of_index() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor({i}) = {floor} > {v}");
            assert_eq!(bucket_index(floor), i, "v={v}");
        }
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(500);
        // Within one bucket (~3.1%) of the exact median.
        assert!((480..=500).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(990) > h.quantile(500));
        assert_eq!(h.quantile(0), bucket_floor(bucket_index(1)));
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 700, 41, 0, 9_999_999] {
            a.observe(v);
            all.observe(v);
        }
        for v in [5u64, 5, 123_456] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
