//! Property-based tests for the metrics subsystem: the algebra the
//! sharded engine leans on (merge associativity/commutativity and
//! order-independence) plus the histogram's accuracy contract.

use doe_telemetry::{bucket_index, Histogram, Labels, Registry};
use proptest::prelude::*;

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// Build a registry holding one counter, one gauge and one histogram per
/// (name index, value) pair, so merges exercise every slot kind.
fn registry_of(series: &[(u8, u64)]) -> Registry {
    let mut reg = Registry::enabled();
    for &(which, value) in series {
        let labels = Labels::one("s", &(which % 4).to_string());
        match which % 3 {
            0 => reg.count("prop.counter", labels, value),
            1 => reg.gauge_max("prop.gauge", labels, value),
            _ => reg.record("prop.histogram", labels, value),
        }
    }
    reg
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..30),
        b in proptest::collection::vec(any::<u64>(), 0..30),
        c in proptest::collection::vec(any::<u64>(), 0..30),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
    }

    #[test]
    fn merging_shards_equals_observing_in_one(
        a in proptest::collection::vec(0u64..1_000_000, 1..40),
        b in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let mut all: Vec<u64> = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(&merged, &histogram_of(&all));
    }

    #[test]
    fn quantile_lands_in_the_exact_sample_bucket(
        samples in proptest::collection::vec(0u64..10_000_000, 1..80),
        permille in 0u64..=1000,
    ) {
        let h = histogram_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        // The estimator uses the same nearest-rank rule as this oracle;
        // log-bucketing means it can only be off by the bucket rounding.
        let rank = (permille * (sorted.len() as u64 - 1) / 1000) as usize;
        let exact = sorted[rank];
        let estimate = h.quantile(permille);
        prop_assert_eq!(
            bucket_index(estimate),
            bucket_index(exact),
            "p{} estimate {} not in exact value {}'s bucket",
            permille,
            estimate,
            exact
        );
        prop_assert!(estimate <= exact, "bucket floor exceeds the exact sample");
    }

    #[test]
    fn registry_merge_is_order_independent(
        a in proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..30),
        b in proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..30),
        c in proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..30),
    ) {
        let (ra, rb, rc) = (registry_of(&a), registry_of(&b), registry_of(&c));
        // Absorb order (a, b, c) into an empty parent...
        let mut forward = Registry::enabled();
        forward.merge(&ra);
        forward.merge(&rb);
        forward.merge(&rc);
        // ...must match absorb order (c, a, b).
        let mut shuffled = Registry::enabled();
        shuffled.merge(&rc);
        shuffled.merge(&ra);
        shuffled.merge(&rb);
        prop_assert_eq!(forward.snapshot(), shuffled.snapshot());
    }

    #[test]
    fn registry_merge_totals_match_single_registry(
        a in proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 0..40),
        split in 0usize..40,
    ) {
        let cut = split.min(a.len());
        let mut sharded = registry_of(&a[..cut]);
        sharded.merge(&registry_of(&a[cut..]));
        prop_assert_eq!(sharded.snapshot(), registry_of(&a).snapshot());
    }
}
